"""Indoor-floorplan crowd sensing simulator (paper Section 5.2 substitute).

The paper evaluates on a real deployment: 247 smartphone users walked 129
hallway segments; an Android app recorded step counts, and each user's
travelled distance per segment was ``step_size * step_count``.  Distances
differ across users "due to different walking patterns and in-phone
sensor quality".  That dataset is not public, so we build a simulator
with the same generative structure (see DESIGN.md, substitutions):

* a building of hallway segments with true lengths (ground truth is the
  manually measured length, as in the paper);
* per-user walking profiles: a *systematic* step-length bias (users
  mis-estimate their own stride), per-step stride jitter, and a step
  *miscount* rate (sensor quality);
* the claim of user ``s`` on segment ``n`` is
  ``estimated_step_length_s * counted_steps_{s,n}``.

The resulting per-user error distributions are heterogeneous and roughly
Gaussian around a user-specific accuracy level — exactly the regime the
paper's mechanism and CRH operate in, so every downstream code path
(perturbation, weighting, aggregation, weight comparison for Fig. 7) is
exercised as on the real data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np

from repro.datasets.synthetic import SyntheticDataset
from repro.truthdiscovery.claims import ClaimMatrix
from repro.utils.rng import RandomState, spawn_generators
from repro.utils.validation import (
    ensure_in_range,
    ensure_int,
    ensure_positive,
)

#: Deployment shape reported in the paper (Section 5.2).
PAPER_NUM_USERS = 247
PAPER_NUM_SEGMENTS = 129

#: Average human stride length in metres; per-user strides vary around it.
_MEAN_STRIDE_M = 0.72


@dataclass(frozen=True)
class WalkerProfile:
    """How one user's phone turns walking into distance estimates.

    Attributes
    ----------
    true_stride:
        The user's actual average stride length (m).
    estimated_stride:
        The stride length configured in the app — systematically biased
        away from ``true_stride`` ("different walking patterns").
    stride_jitter:
        Std-dev of per-segment variation of the realised stride (gait
        variability).
    miscount_rate:
        Std-dev of the *relative* step-count error ("in-phone sensor
        quality"): counted = true_steps * (1 + N(0, miscount_rate^2)).
    """

    true_stride: float
    estimated_stride: float
    stride_jitter: float
    miscount_rate: float

    def __post_init__(self) -> None:
        ensure_positive(self.true_stride, "true_stride")
        ensure_positive(self.estimated_stride, "estimated_stride")
        ensure_positive(self.stride_jitter, "stride_jitter", strict=False)
        ensure_positive(self.miscount_rate, "miscount_rate", strict=False)


@dataclass(frozen=True)
class FloorplanDataset:
    """A simulated indoor floorplan campaign.

    ``claims`` holds per-user distance estimates (metres) for each
    hallway segment; ``segment_lengths`` is the manually measured ground
    truth the paper uses for Fig. 7's "true weight" computation.
    """

    claims: ClaimMatrix
    segment_lengths: np.ndarray
    profiles: tuple[WalkerProfile, ...] = field(repr=False)

    def __post_init__(self) -> None:
        lengths = np.asarray(self.segment_lengths, dtype=float)
        if lengths.shape != (self.claims.num_objects,):
            raise ValueError(
                f"segment_lengths shape {lengths.shape} does not match "
                f"{self.claims.num_objects} segments"
            )
        if len(self.profiles) != self.claims.num_users:
            raise ValueError(
                f"{len(self.profiles)} profiles for {self.claims.num_users} users"
            )
        object.__setattr__(self, "segment_lengths", lengths)

    @property
    def num_users(self) -> int:
        return self.claims.num_users

    @property
    def num_segments(self) -> int:
        return self.claims.num_objects

    def as_synthetic(self) -> SyntheticDataset:
        """View as a :class:`SyntheticDataset` (shared experiment code).

        The "error variance" of each user is estimated empirically from
        their residuals against ground truth.
        """
        residuals = np.where(
            self.claims.mask,
            self.claims.values - self.segment_lengths[None, :],
            0.0,
        )
        counts = np.maximum(self.claims.observation_counts, 1)
        variances = (residuals**2).sum(axis=1) / counts
        return SyntheticDataset(
            claims=self.claims,
            ground_truth=self.segment_lengths,
            error_variances=variances,
            lambda1=None,
        )


def generate_segment_lengths(
    num_segments: int = PAPER_NUM_SEGMENTS,
    *,
    min_length: float = 4.0,
    max_length: float = 40.0,
    random_state: RandomState = None,
) -> np.ndarray:
    """True hallway-segment lengths (metres).

    Buildings mix short connector hallways with long main corridors; a
    log-uniform draw between ``min_length`` and ``max_length`` gives the
    long-tailed mix typical of office floorplans.
    """
    ensure_int(num_segments, "num_segments", minimum=1)
    ensure_positive(min_length, "min_length")
    if max_length <= min_length:
        raise ValueError("max_length must exceed min_length")
    (rng,) = spawn_generators(random_state, 1)
    log_lengths = rng.uniform(
        np.log(min_length), np.log(max_length), size=num_segments
    )
    return np.exp(log_lengths)


def sample_walker_profiles(
    num_users: int = PAPER_NUM_USERS,
    *,
    stride_bias_std: float = 0.06,
    stride_jitter_scale: float = 0.03,
    miscount_scale: float = 0.05,
    random_state: RandomState = None,
) -> tuple[WalkerProfile, ...]:
    """Draw heterogeneous walking/sensing profiles.

    Quality varies across users on three axes, each drawn independently:
    stride misestimation (lognormal bias factor around 1), gait jitter,
    and step-miscount scale (half-normal, so some users have near-perfect
    counters and a minority are quite bad — the long tail that makes
    weighting worthwhile).
    """
    ensure_int(num_users, "num_users", minimum=1)
    ensure_positive(stride_bias_std, "stride_bias_std", strict=False)
    ensure_positive(stride_jitter_scale, "stride_jitter_scale", strict=False)
    ensure_positive(miscount_scale, "miscount_scale", strict=False)
    (rng,) = spawn_generators(random_state, 1)
    profiles = []
    for _ in range(num_users):
        true_stride = float(rng.normal(_MEAN_STRIDE_M, 0.05))
        true_stride = max(0.4, min(1.1, true_stride))
        bias_factor = float(np.exp(rng.normal(0.0, stride_bias_std)))
        estimated = true_stride * bias_factor
        jitter = abs(float(rng.normal(0.0, stride_jitter_scale)))
        miscount = abs(float(rng.normal(0.0, miscount_scale)))
        profiles.append(
            WalkerProfile(
                true_stride=true_stride,
                estimated_stride=estimated,
                stride_jitter=jitter,
                miscount_rate=miscount,
            )
        )
    return tuple(profiles)


def generate_floorplan_dataset(
    num_users: int = PAPER_NUM_USERS,
    num_segments: int = PAPER_NUM_SEGMENTS,
    *,
    coverage: float = 1.0,
    stride_bias_std: float = 0.06,
    miscount_scale: float = 0.05,
    random_state: RandomState = None,
) -> FloorplanDataset:
    """Simulate the full campaign: every user walks (a subset of) segments.

    Parameters
    ----------
    coverage:
        Probability a given user walked a given segment.  1.0 reproduces
        a complete matrix; lower values model partial participation
        (every segment keeps at least one walker).
    """
    ensure_in_range(coverage, "coverage", 0.0, 1.0, low_inclusive=False)
    rng_len, rng_prof, rng_walk, rng_cov = spawn_generators(random_state, 4)
    lengths = generate_segment_lengths(num_segments, random_state=rng_len)
    profiles = sample_walker_profiles(
        num_users,
        stride_bias_std=stride_bias_std,
        miscount_scale=miscount_scale,
        random_state=rng_prof,
    )

    values = np.zeros((num_users, num_segments))
    for s, profile in enumerate(profiles):
        # Realised stride on each segment: user's true stride + gait jitter.
        strides = profile.true_stride + rng_walk.normal(
            0.0, profile.stride_jitter + 1e-9, size=num_segments
        )
        strides = np.maximum(strides, 0.3)
        true_steps = lengths / strides
        counted = true_steps * (
            1.0 + rng_walk.normal(0.0, profile.miscount_rate + 1e-9, size=num_segments)
        )
        counted = np.maximum(np.round(counted), 1.0)
        values[s] = profile.estimated_stride * counted

    if coverage >= 1.0:
        mask = np.ones((num_users, num_segments), dtype=bool)
    else:
        mask = rng_cov.random((num_users, num_segments)) < coverage
        for n in range(num_segments):
            if not mask[:, n].any():
                mask[rng_cov.integers(num_users), n] = True
        for s in range(num_users):
            if not mask[s].any():
                mask[s, rng_cov.integers(num_segments)] = True
        values = np.where(mask, values, 0.0)

    claims = ClaimMatrix(values=values, mask=mask)
    return FloorplanDataset(
        claims=claims, segment_lengths=lengths, profiles=profiles
    )
