"""Dataset generators and persistence.

* :mod:`repro.datasets.synthetic` — the paper's Section 5.1 simulation
  (users with Exp(lambda1) error variances).
* :mod:`repro.datasets.floorplan` — simulator standing in for the paper's
  real indoor-floorplan deployment (Section 5.2); see DESIGN.md for the
  substitution rationale.
* :mod:`repro.datasets.io` — .npz / .csv round-trips.
"""

from repro.datasets.floorplan import (
    FloorplanDataset,
    WalkerProfile,
    generate_floorplan_dataset,
    generate_segment_lengths,
    sample_walker_profiles,
)
from repro.datasets.io import (
    load_claims_csv,
    load_claims_npz,
    load_dataset_npz,
    save_claims_csv,
    save_claims_npz,
    save_dataset_npz,
)
from repro.datasets.synthetic import (
    PAPER_NUM_OBJECTS,
    PAPER_NUM_USERS,
    SyntheticDataset,
    generate_synthetic,
    generate_with_adversaries,
    generate_with_variances,
    sample_error_variances,
)

__all__ = [
    "FloorplanDataset",
    "PAPER_NUM_OBJECTS",
    "PAPER_NUM_USERS",
    "SyntheticDataset",
    "WalkerProfile",
    "generate_floorplan_dataset",
    "generate_segment_lengths",
    "generate_synthetic",
    "generate_with_adversaries",
    "generate_with_variances",
    "load_claims_csv",
    "load_claims_npz",
    "load_dataset_npz",
    "sample_error_variances",
    "sample_walker_profiles",
    "save_claims_csv",
    "save_claims_npz",
    "save_dataset_npz",
]
