"""Synthetic crowd sensing data (paper Section 5.1).

The paper simulates 150 users with qualities drawn per Assumption 4.1 —
error variance ``sigma_s^2 ~ Exp(lambda1)`` — providing claims on 30
objects: ``x^s_n = truth_n + N(0, sigma_s^2)``.  This module generates
exactly that, plus controlled variations used by ablations (explicit
variance vectors, unreliable minorities, missing observations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.truthdiscovery.claims import ClaimMatrix
from repro.utils.rng import RandomState, as_generator, spawn_generators
from repro.utils.validation import (
    ensure_in_range,
    ensure_int,
    ensure_positive,
)

#: Paper defaults (Section 5.1): "we simulate 150 users ... for 30 objects".
PAPER_NUM_USERS = 150
PAPER_NUM_OBJECTS = 30


@dataclass(frozen=True)
class SyntheticDataset:
    """A generated campaign: claims, ground truth, and generation metadata.

    Attributes
    ----------
    claims:
        The original (pre-perturbation) claim matrix ``{x^s_n}``.
    ground_truth:
        ``(N,)`` true values ``x^truth_n``.
    error_variances:
        ``(S,)`` per-user error variances ``sigma_s^2`` actually used.
    lambda1:
        Exponential rate the variances were drawn from (None when the
        variances were supplied explicitly).
    """

    claims: ClaimMatrix
    ground_truth: np.ndarray
    error_variances: np.ndarray = field(repr=False)
    lambda1: Optional[float] = None

    def __post_init__(self) -> None:
        truth = np.asarray(self.ground_truth, dtype=float)
        if truth.shape != (self.claims.num_objects,):
            raise ValueError(
                f"ground_truth shape {truth.shape} does not match "
                f"{self.claims.num_objects} objects"
            )
        variances = np.asarray(self.error_variances, dtype=float)
        if variances.shape != (self.claims.num_users,):
            raise ValueError(
                f"error_variances shape {variances.shape} does not match "
                f"{self.claims.num_users} users"
            )
        object.__setattr__(self, "ground_truth", truth)
        object.__setattr__(self, "error_variances", variances)

    @property
    def num_users(self) -> int:
        return self.claims.num_users

    @property
    def num_objects(self) -> int:
        return self.claims.num_objects

    def user_errors(self) -> np.ndarray:
        """``(S, N)`` signed errors ``x^s_n - truth_n`` (0 where unobserved)."""
        return np.where(
            self.claims.mask,
            self.claims.values - self.ground_truth[None, :],
            0.0,
        )


def sample_error_variances(
    lambda1: float, num_users: int, random_state: RandomState = None
) -> np.ndarray:
    """Draw ``sigma_s^2 ~ Exp(lambda1)`` (Assumption 4.1's data-side twin)."""
    ensure_positive(lambda1, "lambda1")
    ensure_int(num_users, "num_users", minimum=1)
    rng = as_generator(random_state)
    return rng.exponential(scale=1.0 / lambda1, size=num_users)


def generate_synthetic(
    num_users: int = PAPER_NUM_USERS,
    num_objects: int = PAPER_NUM_OBJECTS,
    *,
    lambda1: float = 4.0,
    truth_sampler: Optional[Callable[[np.random.Generator, int], np.ndarray]] = None,
    missing_rate: float = 0.0,
    random_state: RandomState = None,
) -> SyntheticDataset:
    """Generate a Section 5.1 style dataset.

    Parameters
    ----------
    num_users, num_objects:
        Campaign shape; defaults are the paper's 150 x 30.
    lambda1:
        Rate of the exponential distribution of user error variances.
        Larger lambda1 = better average data quality (mean variance
        1/lambda1).  The paper sweeps this in Figure 3.
    truth_sampler:
        Callable ``(rng, n) -> (n,) truths``; defaults to Uniform(0, 10).
        The absolute truth scale does not affect original-vs-perturbed
        MAE, but a non-degenerate spread keeps per-object normalisation
        realistic.
    missing_rate:
        Probability each (user, object) observation is dropped.  Kept at
        0 for paper experiments (the paper's matrix is complete); exposed
        for sparsity ablations.  Guaranteed: every object keeps >= 1
        observation, every user keeps >= 1 claim.
    random_state:
        Seed / generator. The dataset is a pure function of it.
    """
    ensure_int(num_users, "num_users", minimum=1)
    ensure_int(num_objects, "num_objects", minimum=1)
    ensure_positive(lambda1, "lambda1")
    ensure_in_range(missing_rate, "missing_rate", 0.0, 1.0, high_inclusive=False)
    rng_truth, rng_var, rng_err, rng_mask = spawn_generators(random_state, 4)

    if truth_sampler is None:
        truths = rng_truth.uniform(0.0, 10.0, size=num_objects)
    else:
        truths = np.asarray(truth_sampler(rng_truth, num_objects), dtype=float)
        if truths.shape != (num_objects,):
            raise ValueError(
                f"truth_sampler must return shape ({num_objects},), got "
                f"{truths.shape}"
            )

    variances = sample_error_variances(lambda1, num_users, rng_var)
    errors = rng_err.standard_normal((num_users, num_objects)) * np.sqrt(
        variances
    )[:, None]
    values = truths[None, :] + errors

    mask = _sample_mask(num_users, num_objects, missing_rate, rng_mask)
    values = np.where(mask, values, 0.0)
    claims = ClaimMatrix(values=values, mask=mask)
    return SyntheticDataset(
        claims=claims,
        ground_truth=truths,
        error_variances=variances,
        lambda1=lambda1,
    )


def generate_with_variances(
    error_variances: Sequence[float],
    num_objects: int = PAPER_NUM_OBJECTS,
    *,
    truths: Optional[Sequence[float]] = None,
    random_state: RandomState = None,
) -> SyntheticDataset:
    """Generate claims for explicitly-specified user variances.

    Used by tests and the weight-comparison experiment, where controlled
    quality levels are needed ("simulate 150 users with various qualities
    by setting different sigma_s^2").
    """
    variances = np.asarray(error_variances, dtype=float)
    if variances.ndim != 1 or variances.size == 0:
        raise ValueError("error_variances must be a non-empty 1-D sequence")
    if np.any(variances < 0):
        raise ValueError("error_variances must be non-negative")
    ensure_int(num_objects, "num_objects", minimum=1)
    rng_truth, rng_err = spawn_generators(random_state, 2)
    if truths is None:
        truth_arr = rng_truth.uniform(0.0, 10.0, size=num_objects)
    else:
        truth_arr = np.asarray(truths, dtype=float)
        if truth_arr.shape != (num_objects,):
            raise ValueError(
                f"truths must have shape ({num_objects},), got {truth_arr.shape}"
            )
    errors = rng_err.standard_normal((variances.size, num_objects)) * np.sqrt(
        variances
    )[:, None]
    claims = ClaimMatrix(values=truth_arr[None, :] + errors)
    return SyntheticDataset(
        claims=claims,
        ground_truth=truth_arr,
        error_variances=variances,
        lambda1=None,
    )


def generate_with_adversaries(
    num_users: int = PAPER_NUM_USERS,
    num_objects: int = PAPER_NUM_OBJECTS,
    *,
    lambda1: float = 4.0,
    adversary_fraction: float = 0.1,
    adversary_bias: float = 5.0,
    random_state: RandomState = None,
) -> SyntheticDataset:
    """Reliable majority plus a biased ("intent to deceive") minority.

    Section 1 motivates truth discovery with users who "submit noisy or
    fake information ... or even the intent to deceive"; this generator
    gives the ablation benches such a population: the first
    ``floor(adversary_fraction * S)`` users add a constant bias to every
    claim on top of their Gaussian error.
    """
    ensure_in_range(adversary_fraction, "adversary_fraction", 0.0, 1.0)
    base = generate_synthetic(
        num_users,
        num_objects,
        lambda1=lambda1,
        random_state=random_state,
    )
    num_adversaries = int(num_users * adversary_fraction)
    if num_adversaries == 0:
        return base
    values = base.claims.values.copy()
    values[:num_adversaries] += adversary_bias
    # Adversaries' effective error variance is shifted; record the bias^2
    # as an additive proxy so weight-recovery tests have a reference.
    variances = base.error_variances.copy()
    variances[:num_adversaries] += adversary_bias**2
    return SyntheticDataset(
        claims=base.claims.with_values(values),
        ground_truth=base.ground_truth,
        error_variances=variances,
        lambda1=None,
    )


def _sample_mask(
    num_users: int,
    num_objects: int,
    missing_rate: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Observation mask with per-object and per-user coverage guarantees."""
    if missing_rate <= 0.0:
        return np.ones((num_users, num_objects), dtype=bool)
    mask = rng.random((num_users, num_objects)) >= missing_rate
    # Guarantee every object has an observer and every user a claim —
    # re-enable a uniformly chosen entry where coverage collapsed.
    for n in range(num_objects):
        if not mask[:, n].any():
            mask[rng.integers(num_users), n] = True
    for s in range(num_users):
        if not mask[s].any():
            mask[s, rng.integers(num_objects)] = True
    return mask
