"""Parent-side proxies for shard workers.

Two objects hide the process boundary from the service layer:

* :class:`WorkerHandle` — one worker process: its pipe, liveness
  checking, typed frame senders, and blocking RPCs.  Every pipe
  operation is crash-wrapped: if the worker died, the handle drains any
  pending ``ERROR`` frame (so the remote traceback survives) and raises
  :class:`WorkerCrashedError` with the exit code instead of a bare
  ``BrokenPipeError``.
* :class:`RemoteAggregator` — implements the
  :class:`~repro.service.aggregator.IncrementalAggregator` surface for
  one campaign whose real aggregator lives in a worker.  ``ingest``
  ships the batch as a :class:`~repro.durable.records.WorkItem` frame;
  ``truths``/``weights``/``seen_objects`` answer from one cached
  snapshot RPC; ``state_dict``/``load_state`` round-trip the worker
  aggregator's full state, which is how durable checkpoints capture
  remote campaigns.

Because the proxy satisfies the same surface, the existing
:class:`~repro.service.shard.Shard` pump/flush machinery — including
its durability logging, which must happen in the parent where the WAL
lives — runs unchanged; only the aggregation work moves out of
process.

The proxy mirrors the streaming backend's staged-claim bookkeeping
(``refresh_changes_state``) locally.  The mirror is exact because every
event that changes the worker-side staging — batch ingest, explicit
refresh, and the fold a snapshot read forces — flows through this
proxy, and both sides apply the same ``refine_every`` auto-fold rule.
"""

from __future__ import annotations

import json
import time
from collections import deque

import numpy as np

from repro.durable import records as rec
from repro.service.aggregator import IncrementalAggregator
from repro.truthdiscovery.streaming import ClaimBatch
from repro.workers import protocol as proto


class WorkerError(RuntimeError):
    """A shard worker reported a failure (carries the remote traceback)."""


class WorkerCrashedError(WorkerError):
    """A shard worker process died unexpectedly."""


class WorkerHandle:
    """The parent's view of one shard-worker process."""

    #: Default seconds to wait for an RPC response before declaring the
    #: worker hung (generous: a worker may be draining a deep backlog).
    RPC_TIMEOUT = 120.0

    def __init__(
        self,
        worker_id: int,
        shard_range: tuple,
        process,
        conn,
        *,
        rpc_timeout: float = RPC_TIMEOUT,
    ) -> None:
        self.worker_id = worker_id
        self.shard_range = tuple(shard_range)
        self.process = process
        self._conn = conn
        self._rpc_timeout = rpc_timeout
        self._closed = False
        self._crashing = False
        #: RPC observability: round-trip count, accumulated seconds,
        #: and a bounded window of recent latencies (the telemetry
        #: layer folds the window into ``repro_fabric_rpc_seconds``).
        self.rpc_count = 0
        self.rpc_seconds = 0.0
        self.rpc_latencies: deque[float] = deque(maxlen=1024)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        lo, hi = self.shard_range
        return (
            f"WorkerHandle(worker {self.worker_id}, shards {lo}..{hi - 1}, "
            f"pid {self.process.pid})"
        )

    @property
    def alive(self) -> bool:
        return not self._closed and self.process.is_alive()

    def check(self) -> None:
        """Cheap liveness probe between pumps.

        Outside an RPC the worker only ever sends ``ERROR`` frames, so
        any pending frame here is a failure report; a dead process with
        a silent pipe raises :class:`WorkerCrashedError` directly.
        """
        if self._closed:
            raise WorkerCrashedError(f"{self!r} is already shut down")
        if self._conn.poll(0):
            self._drain_error()
        if not self.process.is_alive():
            self._raise_crashed("worker process died")

    # ------------------------------------------------------------------
    def send(self, rtype: int, payload: bytes = b"") -> None:
        """Ship one frame, converting pipe failures into crash errors."""
        if self._closed:
            raise WorkerCrashedError(f"{self!r} is already shut down")
        try:
            proto.send_frame(self._conn, rtype, payload)
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            self._raise_crashed(f"pipe write failed ({exc})")

    def request(self, rtype: int, payload: bytes, expect: int) -> bytes:
        """Blocking RPC: send one frame, wait for its typed response."""
        start = time.perf_counter()
        self.send(rtype, payload)
        body = self.expect(expect)
        elapsed = time.perf_counter() - start
        self.rpc_count += 1
        self.rpc_seconds += elapsed
        self.rpc_latencies.append(elapsed)
        return body

    def expect(self, expect: int, timeout: float | None = None) -> bytes:
        """Wait for one frame of type ``expect`` (ERROR frames raise)."""
        timeout = self._rpc_timeout if timeout is None else timeout
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._raise_crashed(
                    f"no frame of type {expect} within {timeout:.0f}s"
                )
            if not self._conn.poll(min(remaining, 0.2)):
                if not self.process.is_alive():
                    self._raise_crashed("worker process died mid-RPC")
                continue
            try:
                got, body = proto.recv_frame(self._conn)
            except (EOFError, ConnectionResetError, OSError):
                self._raise_crashed("pipe closed mid-RPC")
            if got == proto.ERROR:
                raise WorkerError(self._format_error(body))
            if got != expect:
                raise WorkerError(
                    f"{self!r} answered frame type {got}, expected "
                    f"{expect}"
                )
            return body

    # ------------------------------------------------------------------
    # Typed senders (data plane).
    def register(self, spec: dict) -> None:
        self.send(rec.REGISTER, rec.encode_json_payload(spec))

    def unregister(self, campaign_id: str) -> None:
        self.send(
            rec.UNREGISTER,
            rec.encode_json_payload({"campaign_id": campaign_id}),
        )

    def send_batch(self, item: rec.WorkItem) -> None:
        self.send(rec.BATCH, item.to_bytes())

    def send_refresh(self, campaign_id: str) -> None:
        self.send(
            rec.REFRESH,
            rec.encode_json_payload({"campaign_id": campaign_id}),
        )

    # Typed RPCs.
    def snapshot(self, campaign_id: str) -> dict:
        body = self.request(
            proto.SNAPSHOT_REQ,
            rec.encode_json_payload({"campaign_id": campaign_id}),
            proto.SNAPSHOT_RESP,
        )
        return proto.unpack_state(body)

    def state_dict(self, campaign_id: str) -> dict:
        body = self.request(
            proto.STATE_REQ,
            rec.encode_json_payload({"campaign_id": campaign_id}),
            proto.STATE_RESP,
        )
        return proto.unpack_state(body)["state"]

    def load_state(self, campaign_id: str, state: dict) -> None:
        self.send(
            proto.LOAD_STATE,
            proto.pack_state({"campaign_id": campaign_id, "state": state}),
        )

    def sync(self) -> None:
        """Barrier: returns once every frame sent so far is processed."""
        self.request(proto.SYNC_REQ, b"", proto.SYNC_RESP)

    def metrics(self):
        """Fetch the worker's metric-registry snapshot (STATS RPC).

        Ordered like every other frame, so the snapshot reflects all
        batches shipped before the call.  Must only run on the thread
        that owns the data plane (the service's pump thread).
        """
        from repro.obs.registry import RegistrySnapshot

        body = self.request(proto.STATS_REQ, b"", proto.STATS_RESP)
        return RegistrySnapshot.from_dict(
            json.loads(body.decode("utf-8"))
        )

    # ------------------------------------------------------------------
    def shutdown(self, timeout: float = 10.0) -> None:
        """Ask the worker to exit; escalate to terminate/kill if it won't."""
        if self._closed:
            return
        try:
            proto.send_frame(self._conn, proto.SHUTDOWN, b"")
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # already dead; just reap it below
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - hung worker
            self.process.terminate()
            self.process.join(timeout)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - double close
            pass
        self._closed = True

    # ------------------------------------------------------------------
    def _drain_error(self) -> None:
        try:
            got, body = proto.recv_frame(self._conn)
        except (EOFError, ConnectionResetError, OSError):
            self._raise_crashed("pipe closed")
        if got == proto.ERROR:
            raise WorkerError(self._format_error(body))
        raise WorkerError(
            f"{self!r} sent an unsolicited frame of type {got}"
        )

    def _format_error(self, body: bytes) -> str:
        try:
            remote = json.loads(body.decode("utf-8")).get("traceback", "")
        except (UnicodeDecodeError, ValueError):
            remote = body.decode("utf-8", "replace")
        return f"{self!r} failed; remote traceback:\n{remote}"

    def _raise_crashed(self, why: str) -> None:
        exitcode = self.process.exitcode
        # A failing worker tries to report its traceback before dying;
        # surface it if one is queued behind the broken pipe.  The
        # drain itself can hit the dead pipe (EOF polls as readable
        # forever) — the guard stops that from recursing back here.
        if not self._closed and not self._crashing:
            self._crashing = True
            try:
                if self._conn.poll(0):
                    self._drain_error()
            except (WorkerCrashedError, OSError, EOFError):
                pass
            finally:
                self._crashing = False
        raise WorkerCrashedError(
            f"{self!r}: {why}"
            + (f" (exit code {exitcode})" if exitcode is not None else "")
            + "; its shards cannot make progress — restart the service "
            "(with durability attached, recover from the WAL)"
        )


class RemoteAggregator(IncrementalAggregator):
    """IncrementalAggregator proxy for a campaign living in a worker.

    Parameters
    ----------
    handle:
        The :class:`WorkerHandle` owning the campaign's shard.
    campaign_id:
        Campaign this proxy speaks for.
    backend:
        The resolved backend kind in the worker (``"streaming"`` /
        ``"full"``), from
        :func:`~repro.service.aggregator.resolve_backend` — needed to
        mirror ``refresh_changes_state`` without an RPC.
    refine_every:
        The streaming backend's auto-fold threshold (mirrored locally).
    """

    def __init__(
        self,
        handle: WorkerHandle,
        campaign_id: str,
        num_users: int,
        num_objects: int,
        *,
        backend: str,
        refine_every: int,
    ) -> None:
        super().__init__(num_users, num_objects)
        self._handle = handle
        self._campaign_id = campaign_id
        self._backend = backend
        self._refine_every = refine_every
        self._staged = 0
        self._cache: dict | None = None

    # ------------------------------------------------------------------
    @property
    def handle(self) -> WorkerHandle:
        return self._handle

    @property
    def backend(self) -> str:
        return self._backend

    def rehome(self, handle: WorkerHandle) -> None:
        """Point the proxy at a new owning handle (online rebalancing).

        The campaign's aggregator state has already moved (register +
        ``load_state`` on the new worker, ordered after every shipped
        frame), staged-claim bookkeeping included — so the local mirror
        carries over unchanged; only the cached snapshot must go.
        """
        self._handle = handle
        self._cache = None

    def ingest(self, batch: ClaimBatch) -> None:
        self._handle.send_batch(
            rec.WorkItem(
                campaign_id=self._campaign_id,
                user_slots=batch.users,
                object_slots=batch.objects,
                values=batch.values,
            )
        )
        self.claims_ingested += batch.size
        self.batches_ingested += 1
        self._cache = None
        if self._backend == "streaming":
            # Mirror StreamingAggregator.ingest: once refine_every
            # claims accumulate the worker folds them on its own.
            self._staged += batch.size
            if self._staged >= self._refine_every:
                self._staged = 0

    @property
    def refresh_changes_state(self) -> bool:
        return self._backend == "streaming" and self._staged > 0

    def refresh(self) -> None:
        if self.refresh_changes_state:
            self._handle.send_refresh(self._campaign_id)
            self._staged = 0
            self._cache = None

    # ------------------------------------------------------------------
    def truths(self) -> np.ndarray:
        return self._fetch()["truths"]

    def weights(self) -> np.ndarray:
        return self._fetch()["weights"]

    def seen_objects(self) -> np.ndarray:
        return np.asarray(self._fetch()["seen_objects"], dtype=bool)

    def _fetch(self) -> dict:
        if self._cache is None:
            self._cache = self._handle.snapshot(self._campaign_id)
            # Answering the snapshot folded any staged claims remotely
            # (truths() refreshes); keep the mirror in step.
            self._staged = 0
        return self._cache

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        # state_dict captures staged work without folding it, so the
        # local mirror is untouched — checkpointing cannot perturb the
        # stream, exactly like the in-process backends.
        return self._handle.state_dict(self._campaign_id)

    def load_state(self, state: dict) -> None:
        kind = state.get("kind")
        if kind != self._backend:
            raise ValueError(
                f"state is for a {kind!r} backend, but campaign "
                f"{self._campaign_id!r} runs {self._backend!r} remotely"
            )
        self._handle.load_state(self._campaign_id, state)
        self.claims_ingested = int(state["claims_ingested"])
        self.batches_ingested = int(state["batches_ingested"])
        if self._backend == "streaming":
            self._staged = int(
                np.asarray(state["staged_users"]).size
            )
        else:
            self._staged = 0
        self._cache = None
