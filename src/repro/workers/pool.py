"""The worker pool: process lifecycle and shard-to-worker placement.

A :class:`WorkerPool` spawns N worker processes and assigns each a
contiguous range of the service's shards via the same mutable
:class:`~repro.net.placement.PlacementMap` the socket fabric
(:class:`~repro.net.fabric.FabricPool`) uses — so routing and online
rebalancing work identically over pipes and sockets.  Startup is a handshake: each worker receives a
``CONFIG`` frame (the service configuration, as the same JSON record
the write-ahead log stores) and must answer ``READY`` — a worker that
dies importing NumPy or decoding the config is reported with its
traceback instead of hanging the parent.

The pool defaults to the ``spawn`` start method: it is the only method
available everywhere Python 3.10–3.13 runs, it cannot inherit locks or
buffered state from a threaded parent, and it forces the frame protocol
to carry everything a worker needs (which is exactly what a future
socket transport requires).  Tests that need fast startup on POSIX can
pass ``start_method="fork"``.
"""

from __future__ import annotations

import multiprocessing

from repro.durable import records as rec
from repro.net.placement import PlacementMap, shard_ranges
from repro.utils.logging import get_logger
from repro.workers import protocol as proto
from repro.workers.handles import WorkerHandle
from repro.workers.worker import worker_main

_LOGGER = get_logger("workers.pool")

#: Start methods the pool accepts (``forkserver`` adds nothing here).
START_METHODS = ("spawn", "fork", "forkserver")


__all__ = ["START_METHODS", "WorkerPool", "shard_ranges"]


class WorkerPool:
    """N shard-worker processes behind one ingestion service.

    Parameters
    ----------
    num_shards:
        The service's shard count (placement domain).
    num_workers:
        Worker processes to spawn (``1 <= num_workers <= num_shards``).
    config_payload:
        JSON-serialisable service configuration, sent to every worker
        as its first (``CONFIG``) frame.
    start_method:
        ``multiprocessing`` start method; ``"spawn"`` by default (see
        the module docstring).
    ready_timeout:
        Seconds to wait for each worker's READY handshake (spawning
        interpreters and importing NumPy on a cold CI runner is slow).
    """

    def __init__(
        self,
        num_shards: int,
        num_workers: int,
        config_payload: dict,
        *,
        start_method: str = "spawn",
        ready_timeout: float = 120.0,
    ) -> None:
        if start_method not in START_METHODS:
            raise ValueError(
                f"start_method must be one of {START_METHODS}, "
                f"got {start_method!r}"
            )
        self._closed = False
        self.handles: list[WorkerHandle] = []
        #: Explicit, mutable shard->worker table: the same placement
        #: object the socket fabric uses, so rebalancing works
        #: identically over pipes and sockets.
        self.placement = PlacementMap(num_shards, num_workers)
        ctx = multiprocessing.get_context(start_method)
        ranges = shard_ranges(num_shards, num_workers)
        config_frame = rec.encode_json_payload(config_payload)
        try:
            for worker_id, (lo, hi) in enumerate(ranges):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                process = ctx.Process(
                    target=worker_main,
                    args=(child_conn, worker_id, (lo, hi)),
                    name=f"repro-shard-worker-{worker_id}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                handle = WorkerHandle(
                    worker_id, (lo, hi), process, parent_conn
                )
                self.handles.append(handle)
                handle.send(rec.CONFIG, config_frame)
            # Handshake after every process is launched, so slow spawns
            # overlap instead of serialising.
            for handle in self.handles:
                handle.expect(proto.READY, timeout=ready_timeout)
        except BaseException:
            self.close()
            raise
        _LOGGER.debug(
            "worker pool up: %d worker(s) over %d shard(s) via %s",
            num_workers,
            num_shards,
            start_method,
        )

    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return len(self.handles)

    def handle_for(self, shard_index: int) -> WorkerHandle:
        """The handle owning ``shard_index`` (placement lookup)."""
        return self.handles[self.placement.owner_of(shard_index)]

    def move_shard(self, shard_index: int, target_worker: int) -> int:
        """Reassign one shard in the placement; returns the old owner.

        Pure routing — the caller
        (:meth:`~repro.service.ingest.IngestService.rebalance_shard`)
        moves the campaign state between workers first.
        """
        return self.placement.move(shard_index, target_worker)

    def check(self) -> None:
        """Probe every worker for crashes (cheap; called per pump)."""
        for handle in self.handles:
            handle.check()

    def sync(self) -> None:
        """Barrier across all workers: every shipped frame is processed."""
        for handle in self.handles:
            handle.sync()

    # ------------------------------------------------------------------
    def close(self, timeout: float = 10.0) -> None:
        """Shut every worker down cleanly; idempotent."""
        if self._closed:
            return
        self._closed = True
        for handle in self.handles:
            handle.shutdown(timeout)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

