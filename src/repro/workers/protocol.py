"""Wire protocol between the ingest process and its shard workers.

Everything that crosses the process boundary is a *frame*::

    u32  length of everything after this field (little-endian)
    u8   frame type
    ...  payload

Frames travel over a ``multiprocessing`` duplex pipe today, but the
explicit length prefix keeps them self-describing, so the same encoding
can move to raw sockets (the ROADMAP's multi-node follow-on) without a
format change.

The data plane reuses :mod:`repro.durable.records` wholesale: a claim
batch crosses as a :class:`~repro.durable.records.WorkItem` under the
``BATCH`` record type, and campaign lifecycle / service configuration
cross as the same JSON control records (``CONFIG`` / ``REGISTER`` /
``UNREGISTER`` / ``REFRESH``) the write-ahead log stores.  Worker-only
control frames (snapshot and state RPCs, the readiness handshake,
shutdown) use a disjoint type range so the two namespaces can never
collide.

RPC payloads that carry aggregator state — arbitrary nested dicts with
NumPy arrays at the leaves — are encoded with the same
array-hoisting-into-npz scheme the checkpoint store uses
(:func:`pack_state` / :func:`unpack_state`), so remote snapshots are
bit-exact, pickle-free, and byte-compatible with checkpoint payloads.
"""

from __future__ import annotations

import struct

from repro.durable import checkpoint
from repro.durable.records import RecordError
from repro.net.framing import FrameReader, FramingError

# ---------------------------------------------------------------------------
# Frame types.  1..31 is reserved for repro.durable.records record types
# (CONFIG/REGISTER/UNREGISTER/BATCH/REFRESH cross the pipe unchanged);
# worker-only control frames start at 32.

#: Snapshot RPC: request one campaign's truths/weights/counters.
SNAPSHOT_REQ = 32
#: Snapshot RPC response (``pack_state`` payload).
SNAPSHOT_RESP = 33
#: State RPC: request one campaign aggregator's full ``state_dict``.
STATE_REQ = 34
#: State RPC response (``pack_state`` payload).
STATE_RESP = 35
#: Restore a previously captured ``state_dict`` into a worker aggregator.
LOAD_STATE = 36
#: Barrier: ask the worker to acknowledge once all prior frames are done.
SYNC_REQ = 37
#: Barrier acknowledgement.
SYNC_RESP = 38
#: Worker -> parent: startup handshake completed.
READY = 40
#: Worker -> parent: the worker failed; payload carries the traceback.
ERROR = 41
#: Parent -> worker: drain and exit cleanly.
SHUTDOWN = 42
#: Liveness probe (any peer -> shard host); answered with PONG.
PING = 43
#: Liveness probe response.
PONG = 44
#: Stats RPC: request the worker's metric-registry snapshot.
STATS_REQ = 45
#: Stats RPC response (JSON ``RegistrySnapshot.to_dict()`` payload).
STATS_RESP = 46

_HEADER = struct.Struct("<IB")


class ProtocolError(RecordError):
    """A frame failed to encode or decode."""


def encode_frame(rtype: int, payload: bytes) -> bytes:
    """One length-prefixed frame as bytes."""
    if not 0 < rtype < 256:
        raise ProtocolError(f"frame type must fit a u8, got {rtype}")
    return _HEADER.pack(len(payload) + 1, rtype) + payload


def decode_frame(frame: bytes) -> tuple[int, bytes]:
    """Inverse of :func:`encode_frame`; validates the length prefix.

    Delegates to the shared :class:`~repro.net.framing.FrameReader`, so
    the pipe path (whole-message delivery) and the socket path
    (arbitrary fragmentation) run the exact same decoder; a pipe
    message must decode to exactly one frame with nothing left over.
    """
    reader = FrameReader()
    try:
        frames = reader.feed(frame)
    except FramingError as exc:
        raise ProtocolError(str(exc)) from exc
    if len(frames) != 1 or reader.pending_bytes:
        raise ProtocolError(
            f"expected exactly one complete frame in {len(frame)} "
            f"byte(s), decoded {len(frames)} with "
            f"{reader.pending_bytes} byte(s) left over"
        )
    return frames[0]


def send_frame(conn, rtype: int, payload: bytes = b"") -> None:
    """Write one frame to a connection (pipe or socket)."""
    conn.send_bytes(encode_frame(rtype, payload))


def recv_frame(conn) -> tuple[int, bytes]:
    """Read one frame from a connection (pipe or socket).

    A ``multiprocessing`` pipe delivers whole messages, decoded here; a
    :class:`~repro.net.transport.SocketConnection` reassembles frames
    from the byte stream itself and exposes ``recv_frame`` directly.
    Raises ``EOFError`` when the peer has gone away, exactly like the
    underlying connection does.
    """
    native = getattr(conn, "recv_frame", None)
    if native is not None:
        return native()
    return decode_frame(conn.recv_bytes())


# ---------------------------------------------------------------------------
# State payloads: nested dicts with NumPy arrays at the leaves, encoded
# as an in-memory npz with a JSON manifest — byte-for-byte the
# checkpoint layout (the durable tier owns the codec), so a state blob
# shipped over a socket and a state blob stored in a checkpoint are the
# same format and can hand off to each other.


def pack_state(payload: dict) -> bytes:
    """Encode a dict-with-arrays payload (snapshot / state RPCs)."""
    try:
        return checkpoint.pack_payload(payload)
    except checkpoint.CheckpointError as exc:
        raise ProtocolError(str(exc)) from exc


def unpack_state(blob: bytes) -> dict:
    """Inverse of :func:`pack_state`."""
    try:
        return checkpoint.unpack_payload(blob)
    except checkpoint.CheckpointError as exc:
        raise ProtocolError(f"malformed state payload: {exc}") from exc
