"""Wire protocol between the ingest process and its shard workers.

Everything that crosses the process boundary is a *frame*::

    u32  length of everything after this field (little-endian)
    u8   frame type
    ...  payload

Frames travel over a ``multiprocessing`` duplex pipe today, but the
explicit length prefix keeps them self-describing, so the same encoding
can move to raw sockets (the ROADMAP's multi-node follow-on) without a
format change.

The data plane reuses :mod:`repro.durable.records` wholesale: a claim
batch crosses as a :class:`~repro.durable.records.WorkItem` under the
``BATCH`` record type, and campaign lifecycle / service configuration
cross as the same JSON control records (``CONFIG`` / ``REGISTER`` /
``UNREGISTER`` / ``REFRESH``) the write-ahead log stores.  Worker-only
control frames (snapshot and state RPCs, the readiness handshake,
shutdown) use a disjoint type range so the two namespaces can never
collide.

RPC payloads that carry aggregator state — arbitrary nested dicts with
NumPy arrays at the leaves — are encoded with the same
array-hoisting-into-npz scheme the checkpoint store uses
(:func:`pack_state` / :func:`unpack_state`), so remote snapshots are
bit-exact, pickle-free, and byte-compatible with checkpoint payloads.
"""

from __future__ import annotations

import io
import json
import struct

import numpy as np

from repro.durable.checkpoint import _hoist_arrays, _lower_arrays
from repro.durable.records import RecordError

# ---------------------------------------------------------------------------
# Frame types.  1..31 is reserved for repro.durable.records record types
# (CONFIG/REGISTER/UNREGISTER/BATCH/REFRESH cross the pipe unchanged);
# worker-only control frames start at 32.

#: Snapshot RPC: request one campaign's truths/weights/counters.
SNAPSHOT_REQ = 32
#: Snapshot RPC response (``pack_state`` payload).
SNAPSHOT_RESP = 33
#: State RPC: request one campaign aggregator's full ``state_dict``.
STATE_REQ = 34
#: State RPC response (``pack_state`` payload).
STATE_RESP = 35
#: Restore a previously captured ``state_dict`` into a worker aggregator.
LOAD_STATE = 36
#: Barrier: ask the worker to acknowledge once all prior frames are done.
SYNC_REQ = 37
#: Barrier acknowledgement.
SYNC_RESP = 38
#: Worker -> parent: startup handshake completed.
READY = 40
#: Worker -> parent: the worker failed; payload carries the traceback.
ERROR = 41
#: Parent -> worker: drain and exit cleanly.
SHUTDOWN = 42

_HEADER = struct.Struct("<IB")


class ProtocolError(RecordError):
    """A frame failed to encode or decode."""


def encode_frame(rtype: int, payload: bytes) -> bytes:
    """One length-prefixed frame as bytes."""
    if not 0 < rtype < 256:
        raise ProtocolError(f"frame type must fit a u8, got {rtype}")
    return _HEADER.pack(len(payload) + 1, rtype) + payload


def decode_frame(frame: bytes) -> tuple[int, bytes]:
    """Inverse of :func:`encode_frame`; validates the length prefix."""
    try:
        length, rtype = _HEADER.unpack_from(frame, 0)
    except struct.error as exc:
        raise ProtocolError(f"truncated frame header: {exc}") from exc
    if len(frame) != _HEADER.size - 1 + length:
        raise ProtocolError(
            f"frame declares {length} bytes after the length field, "
            f"got {len(frame) - (_HEADER.size - 1)}"
        )
    return rtype, frame[_HEADER.size:]


def send_frame(conn, rtype: int, payload: bytes = b"") -> None:
    """Write one frame to a ``multiprocessing`` connection."""
    conn.send_bytes(encode_frame(rtype, payload))


def recv_frame(conn) -> tuple[int, bytes]:
    """Read one frame from a ``multiprocessing`` connection.

    Raises ``EOFError`` when the peer has gone away, exactly like the
    underlying connection does.
    """
    return decode_frame(conn.recv_bytes())


# ---------------------------------------------------------------------------
# State payloads: nested dicts with NumPy arrays at the leaves, encoded
# as an in-memory npz with a JSON manifest (the checkpoint layout).

_MANIFEST_KEY = "manifest"


def pack_state(payload: dict) -> bytes:
    """Encode a dict-with-arrays payload (snapshot / state RPCs)."""
    arrays: dict[str, np.ndarray] = {}
    manifest = _hoist_arrays(payload, arrays, "payload")
    try:
        manifest_json = json.dumps(manifest, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(
            f"state payload is not JSON-serialisable: {exc}"
        ) from exc
    buf = io.BytesIO()
    np.savez(buf, **{_MANIFEST_KEY: np.array(manifest_json)}, **arrays)
    return buf.getvalue()


def unpack_state(blob: bytes) -> dict:
    """Inverse of :func:`pack_state`."""
    try:
        with np.load(io.BytesIO(blob), allow_pickle=False) as npz:
            manifest = json.loads(str(npz[_MANIFEST_KEY][()]))
            return _lower_arrays(manifest, npz)
    except (OSError, KeyError, ValueError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed state payload: {exc}") from exc
