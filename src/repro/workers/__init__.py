"""Multi-process shard workers for the ingestion service (PR 3).

The single-process service tops out at what one Python interpreter can
pump; this package moves the aggregation half of each shard's pump loop
into worker processes while the ingest process keeps validation,
admission, user-slot tables, bounded queues, micro-batching, and
durability logging:

* :mod:`repro.workers.protocol` — length-prefixed frames over a duplex
  pipe, reusing :class:`~repro.durable.records.WorkItem` and the WAL's
  JSON control records as the cross-process format;
* :mod:`repro.workers.worker` — the spawn-safe worker loop: per-campaign
  :class:`~repro.service.aggregator.IncrementalAggregator` instances fed
  strictly in frame order;
* :mod:`repro.workers.pool` — process lifecycle and contiguous
  shard-range placement;
* :mod:`repro.workers.handles` — :class:`WorkerHandle` (pipe + crash
  detection + RPCs) and :class:`RemoteAggregator`, the
  ``IncrementalAggregator`` proxy that lets the existing
  :class:`~repro.service.shard.Shard` machinery, durability logging,
  and checkpointing run unchanged against remote campaigns.

Entry point: ``IngestService(config, workers=N)`` — see
:class:`repro.service.ingest.IngestService`.
"""

from repro.workers.handles import (
    RemoteAggregator,
    WorkerCrashedError,
    WorkerError,
    WorkerHandle,
)
from repro.workers.pool import WorkerPool, shard_ranges
from repro.workers.protocol import (
    ProtocolError,
    decode_frame,
    encode_frame,
    pack_state,
    recv_frame,
    send_frame,
    unpack_state,
)
from repro.workers.worker import worker_main

__all__ = [
    "ProtocolError",
    "RemoteAggregator",
    "WorkerCrashedError",
    "WorkerError",
    "WorkerHandle",
    "WorkerPool",
    "decode_frame",
    "encode_frame",
    "pack_state",
    "recv_frame",
    "send_frame",
    "shard_ranges",
    "unpack_state",
    "worker_main",
]
