"""The shard-worker runtime: aggregation off the ingest process's back.

:class:`ShardRuntime` is the transport-free core: given one decoded
frame and a ``send`` callback it applies the frame to its campaign
aggregators and emits any response frames.  Two transports drive it:

* :func:`worker_main` — the (spawn-safe, module-level) entrypoint of a
  pipe-connected worker process (``repro.workers.pool.WorkerPool``);
* :class:`repro.net.host.ShardHost` — the same runtime behind an
  asyncio socket server (``repro serve-shard``), one host process per
  port.

A runtime owns a contiguous range of shards: every campaign routed to
those shards lives here as an
:class:`~repro.service.aggregator.IncrementalAggregator` built by the
exact same :func:`~repro.service.aggregator.make_aggregator` call the
in-process service would have made, so given the same micro-batch and
refresh sequence its truths are bit-for-bit identical to a
single-process run.

The parent keeps everything else — validation, admission, user-slot
tables, bounded queues, micro-batching, durability logging — and ships
each completed micro-batch as a :class:`~repro.durable.records.WorkItem`
frame.  Frames are processed strictly in order, which is what makes the
snapshot/state RPCs consistent: by the time a request is answered, every
batch sent before it has been aggregated.

Protocol (see :mod:`repro.workers.protocol`):

* first frame must be ``CONFIG`` (the service configuration); the
  worker answers ``READY`` — the startup handshake;
* ``REGISTER`` / ``UNREGISTER`` — campaign lifecycle (the same JSON
  payloads the write-ahead log stores);
* ``BATCH`` — one micro-batch, aggregated immediately;
* ``REFRESH`` — fold deferred work for one campaign (read-forced
  refreshes keep their single-process timing);
* ``SNAPSHOT_REQ`` / ``STATE_REQ`` / ``LOAD_STATE`` — read and restore
  aggregator state;
* ``SYNC_REQ`` — barrier; ``PING`` — liveness probe;
  ``SHUTDOWN`` — clean exit.

Any exception is reported back as an ``ERROR`` frame carrying the full
traceback before the process exits nonzero, so the parent can raise a
useful error instead of a bare broken pipe.
"""

from __future__ import annotations

import json
import sys
import time
import traceback

import numpy as np

from repro.durable import records as rec
from repro.obs.registry import NULL_REGISTRY, MetricRegistry
from repro.truthdiscovery.streaming import ClaimBatch
from repro.workers import protocol as proto


class ShardRuntime:
    """Transport-free frame dispatcher of one shard worker/host.

    ``on_frame`` returns False exactly once — for ``SHUTDOWN`` — after
    which the transport should stop its loop and exit.

    Every runtime carries its own :class:`~repro.obs.MetricRegistry`
    (activated by the ``obs`` flag in the CONFIG frame): aggregation
    latency and throughput counters accumulate worker-side and cross
    back to the parent as a mergeable snapshot over the STATS RPC, so
    one scrape of the parent sees the whole fabric.
    """

    def __init__(self, worker_id: int, shard_range: tuple = (0, 0)) -> None:
        self.worker_id = worker_id
        self.shard_range = tuple(shard_range)
        self._config: dict | None = None
        self._aggregators: dict = {}
        self.claims_aggregated = 0
        self.registry = NULL_REGISTRY
        self._bind_metrics()

    def _bind_metrics(self) -> None:
        registry = self.registry
        self._batches_total = registry.counter(
            "repro_worker_batches_total",
            "micro-batches aggregated on this worker",
        )
        self._claims_total = registry.counter(
            "repro_worker_claims_total",
            "claims aggregated on this worker",
        )
        self._aggregate_hist = registry.histogram(
            "repro_worker_aggregate_seconds",
            "worker-side per-batch aggregation latency",
        )
        self._snapshots_total = registry.counter(
            "repro_worker_snapshots_total",
            "snapshot RPCs answered by this worker",
        )
        self._refreshes_total = registry.counter(
            "repro_worker_refreshes_total",
            "refresh frames applied by this worker",
        )

    # ------------------------------------------------------------------
    @property
    def configured(self) -> bool:
        return self._config is not None

    def on_frame(self, rtype: int, payload: bytes, send) -> bool:
        """Apply one frame; ``send(rtype, payload)`` emits responses."""
        if rtype == proto.SHUTDOWN:
            return False
        if rtype == proto.PING:
            send(proto.PONG, payload)
            return True
        if self._config is None:
            if rtype != rec.CONFIG:
                raise proto.ProtocolError(
                    f"worker {self.worker_id} expected a CONFIG frame "
                    f"first, got type {rtype}"
                )
            self._config = json.loads(payload.decode("utf-8"))
            if self._config.get("obs", True):
                self.registry = MetricRegistry()
                self._bind_metrics()
            send(proto.READY, b"")
            return True
        self._dispatch(rtype, payload, send)
        return True

    # ------------------------------------------------------------------
    def _dispatch(self, rtype: int, payload: bytes, send) -> None:
        if rtype == rec.BATCH:
            self._on_batch(rec.WorkItem.from_bytes(payload))
        elif rtype == rec.REFRESH:
            self._aggregator(self._json(payload)["campaign_id"]).refresh()
            self._refreshes_total.inc()
        elif rtype == rec.REGISTER:
            self._on_register(self._json(payload))
        elif rtype == rec.UNREGISTER:
            self._aggregators.pop(self._json(payload)["campaign_id"], None)
        elif rtype == proto.SNAPSHOT_REQ:
            self._on_snapshot(self._json(payload)["campaign_id"], send)
        elif rtype == proto.STATE_REQ:
            self._on_state(self._json(payload)["campaign_id"], send)
        elif rtype == proto.LOAD_STATE:
            body = proto.unpack_state(payload)
            self._aggregator(body["campaign_id"]).load_state(body["state"])
        elif rtype == proto.SYNC_REQ:
            send(proto.SYNC_RESP, payload)
        elif rtype == proto.STATS_REQ:
            body = json.dumps(self.registry.snapshot().to_dict())
            send(proto.STATS_RESP, body.encode("utf-8"))
        else:
            raise proto.ProtocolError(
                f"worker {self.worker_id} received unknown frame type "
                f"{rtype}"
            )

    def _json(self, payload: bytes) -> dict:
        return json.loads(payload.decode("utf-8"))

    def _aggregator(self, campaign_id: str):
        try:
            return self._aggregators[campaign_id]
        except KeyError:
            raise proto.ProtocolError(
                f"worker {self.worker_id} has no campaign "
                f"{campaign_id!r} (shards {self.shard_range})"
            ) from None

    # ------------------------------------------------------------------
    def _on_register(self, spec: dict) -> None:
        from repro.service.aggregator import make_aggregator

        campaign_id = spec["campaign_id"]
        if campaign_id in self._aggregators:
            raise proto.ProtocolError(
                f"campaign {campaign_id!r} already registered on "
                f"worker {self.worker_id}"
            )
        cfg = self._config
        self._aggregators[campaign_id] = make_aggregator(
            int(spec["num_users"]),
            int(spec["num_objects"]),
            kind=spec.get("aggregator", "auto"),
            method=spec.get("method", "crh"),
            decay=float(cfg.get("decay", 1.0)),
            refine_sweeps=int(cfg.get("refine_sweeps", 2)),
            refine_every=int(cfg.get("refine_every", 8192)),
            full_refit_max_cells=int(cfg.get("full_refit_max_cells", 4096)),
            **(spec.get("method_kwargs") or {}),
        )

    def _on_batch(self, item: rec.WorkItem) -> None:
        aggregator = self._aggregator(item.campaign_id)
        start = time.perf_counter()
        # Copy out of the frame buffer: decoded columns are read-only
        # views, and downstream aggregation must own writable int64/f64
        # arrays exactly like the single-process path hands it.
        aggregator.ingest(
            ClaimBatch(
                users=np.array(item.user_slots, dtype=np.int64),
                objects=np.array(item.object_slots, dtype=np.int64),
                values=np.array(item.values, dtype=float),
            )
        )
        self.claims_aggregated += item.size
        self._aggregate_hist.observe(time.perf_counter() - start)
        self._batches_total.inc()
        self._claims_total.inc(item.size)

    def _on_snapshot(self, campaign_id: str, send) -> None:
        aggregator = self._aggregator(campaign_id)
        payload = proto.pack_state(
            {
                "campaign_id": campaign_id,
                "truths": aggregator.truths(),
                "weights": aggregator.weights(),
                "seen_objects": aggregator.seen_objects(),
                "claims_ingested": aggregator.claims_ingested,
                "batches_ingested": aggregator.batches_ingested,
            }
        )
        send(proto.SNAPSHOT_RESP, payload)
        self._snapshots_total.inc()

    def _on_state(self, campaign_id: str, send) -> None:
        aggregator = self._aggregator(campaign_id)
        payload = proto.pack_state(
            {
                "campaign_id": campaign_id,
                "state": aggregator.state_dict(),
            }
        )
        send(proto.STATE_RESP, payload)


def worker_main(conn, worker_id: int, shard_range: tuple) -> None:
    """Process entrypoint: serve frames until SHUTDOWN or parent exit.

    Must stay a module-level function with picklable arguments so the
    ``spawn`` start method (the default on macOS/Windows and from
    Python 3.14 on Linux) can import and call it.
    """
    runtime = ShardRuntime(worker_id, shard_range)

    def send(rtype: int, payload: bytes = b"") -> None:
        proto.send_frame(conn, rtype, payload)

    try:
        while True:
            try:
                rtype, payload = proto.recv_frame(conn)
            except EOFError:
                # Parent went away without a SHUTDOWN; nothing left to
                # serve.
                return
            if not runtime.on_frame(rtype, payload, send):
                return
    except Exception:
        reported = False
        try:
            proto.send_frame(
                conn,
                proto.ERROR,
                rec.encode_json_payload(
                    {
                        "worker_id": worker_id,
                        "traceback": traceback.format_exc(),
                    }
                ),
            )
            reported = True
        except (OSError, ValueError):
            pass  # parent already gone; exit code still says "failed"
        if not reported:
            raise
        # The parent holds the full traceback; exit nonzero without
        # spraying it on stderr a second time.
        sys.exit(1)
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - double close on teardown
            pass
