"""Fault injection for the simulated crowd sensing network.

Real mobile crowd sensing deployments lose submissions (radio gaps, app
kills) and see heavy-tailed latencies (stragglers).  The paper's
mechanism is non-interactive precisely so these faults degrade coverage,
not correctness; the fault model lets tests and examples demonstrate
that claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import ensure_in_range, ensure_positive


@dataclass(frozen=True)
class FaultModel:
    """Stochastic link behaviour between devices and the server.

    Attributes
    ----------
    drop_probability:
        Chance an individual message is silently lost.
    base_latency:
        Minimum one-way latency (simulated seconds).
    latency_jitter:
        Scale of the lognormal latency tail added to the base.
    straggler_probability:
        Chance a message is additionally delayed by
        ``straggler_penalty``.
    straggler_penalty:
        Extra delay applied to straggler messages.
    """

    drop_probability: float = 0.0
    base_latency: float = 0.01
    latency_jitter: float = 0.005
    straggler_probability: float = 0.0
    straggler_penalty: float = 1.0

    def __post_init__(self) -> None:
        ensure_in_range(self.drop_probability, "drop_probability", 0.0, 1.0)
        ensure_positive(self.base_latency, "base_latency", strict=False)
        ensure_positive(self.latency_jitter, "latency_jitter", strict=False)
        ensure_in_range(
            self.straggler_probability, "straggler_probability", 0.0, 1.0
        )
        ensure_positive(self.straggler_penalty, "straggler_penalty", strict=False)

    def should_drop(self, rng: np.random.Generator) -> bool:
        """Sample whether a message is lost."""
        return self.drop_probability > 0 and bool(
            rng.random() < self.drop_probability
        )

    def sample_latency(self, rng: np.random.Generator) -> float:
        """Sample a one-way delivery latency."""
        latency = self.base_latency
        if self.latency_jitter > 0:
            latency += float(rng.lognormal(mean=-2.0, sigma=1.0)) * self.latency_jitter
        if self.straggler_probability > 0 and rng.random() < self.straggler_probability:
            latency += self.straggler_penalty
        return latency


RELIABLE = FaultModel()
"""A fault-free link (defaults): tiny fixed latency, no drops."""


def lossy(drop_probability: float, *, random_jitter: float = 0.005) -> FaultModel:
    """Convenience constructor for a link that only drops messages."""
    return FaultModel(
        drop_probability=drop_probability, latency_jitter=random_jitter
    )
