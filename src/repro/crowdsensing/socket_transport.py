"""Device transport over real sockets — the fabric's second protocol.

:mod:`repro.net` contributes one transport abstraction
(:class:`~repro.net.transport.SocketListener` /
:class:`~repro.net.transport.SocketConnection`, framed by
:class:`~repro.net.framing.FrameReader`) and two protocols ride it: the
worker frame protocol (:mod:`repro.net.host`) and this one — the
crowdsensing message surface of :class:`~repro.crowdsensing.transport.
InProcessTransport`, crossed over TCP.

The shape matches the paper's system (Section 2): devices talk to the
server, never to each other.  A :class:`SocketTransportServer` runs a
routing thread; each :class:`DeviceClient` introduces itself with a
``DEVICE_HELLO`` frame, then exchanges ``DEVICE_MSG`` frames carrying
the same JSON wire format the simulated transport round-trips
(:func:`~repro.crowdsensing.messages.to_wire`).  Messages for a device
that has not connected yet wait in a per-recipient outbox and flush at
its hello — a real push service's store-and-forward, minimally.

Delivery statistics reuse :class:`~repro.crowdsensing.transport.
TransportStats`, so the Section 3.2 protocol-shape checks (O(S)
messages per round, zero user-to-user traffic) apply verbatim to the
socket deployment.
"""

from __future__ import annotations

import json
import select
import threading
from collections import defaultdict
from typing import Optional

from repro.crowdsensing.messages import Message, from_wire, to_wire
from repro.crowdsensing.transport import TransportStats
from repro.net.framing import FramingError
from repro.net.transport import SocketConnection, SocketListener, connect
from repro.utils.logging import get_logger
from repro.workers import protocol as proto

_LOGGER = get_logger("crowdsensing.socket")

#: Device protocol frame types (disjoint from the worker protocol's,
#: which stops at 44 — one framing layer, two protocols).
DEVICE_HELLO = 50
DEVICE_MSG = 51


def _hello(node_id: str) -> bytes:
    return proto.encode_frame(
        DEVICE_HELLO, json.dumps({"node_id": node_id}).encode("utf-8")
    )


def _message_frame(sender: str, recipient: str, message: Message) -> bytes:
    return proto.encode_frame(
        DEVICE_MSG,
        json.dumps(
            {
                "sender": sender,
                "recipient": recipient,
                "wire": to_wire(message),
            },
            sort_keys=True,
        ).encode("utf-8"),
    )


class SocketTransportServer:
    """The server side of the device protocol: route, park, deliver.

    Accepts device connections on a TCP port, routes ``DEVICE_MSG``
    frames between nodes, and keeps the server's own inbox for messages
    addressed to ``node_id``.  All routing happens on one background
    thread; :meth:`send` and :meth:`receive` are safe from the caller's
    thread.
    """

    def __init__(
        self,
        *,
        node_id: str = "server",
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.node_id = node_id
        self._listener = SocketListener(host=host, port=port)
        self.address = self._listener.address
        self._lock = threading.Lock()
        #: node_id -> live connection (post-hello).
        self._clients: dict[str, SocketConnection] = {}
        #: Connections accepted but not yet introduced.
        self._anonymous: list[SocketConnection] = []
        #: Store-and-forward: frames for recipients not yet connected.
        self._parked: dict[str, list[bytes]] = defaultdict(list)
        self._inbox: list[Message] = []
        self.stats = TransportStats()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._serve, name="repro-device-transport", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        return self._listener.port

    def send(self, recipient: str, message: Message) -> bool:
        """Route one message from the server to a device.

        Returns True always (the socket transport does not model
        faults); kept boolean for symmetry with
        :meth:`~repro.crowdsensing.transport.InProcessTransport.send`.
        """
        if recipient == self.node_id:
            raise ValueError("a node cannot send a message to itself")
        self.stats.record_sent(self.node_id, recipient)
        self._route(recipient, _message_frame(self.node_id, recipient, message))
        return True

    def receive(self) -> list[Message]:
        """Pop and return all messages delivered to the server so far."""
        with self._lock:
            inbox, self._inbox = self._inbox, []
        return inbox

    def connected_nodes(self) -> list[str]:
        """Node ids with a live connection (observability)."""
        with self._lock:
            return sorted(self._clients)

    def user_to_user_messages(self) -> int:
        """Messages between two non-server nodes (must stay 0).

        Same check as the simulated transport: the paper's protocol has
        no user-to-user communication, and the router counts every link
        it carries.
        """
        count = 0
        with self._lock:
            links = dict(self.stats.by_link)
        for (sender, recipient), n in links.items():
            if not sender.startswith("server") \
                    and not recipient.startswith("server"):
                count += n
        return count

    def close(self) -> None:
        """Stop routing and drop every connection; idempotent."""
        if self._stop.is_set():
            return
        self._stop.set()
        self._thread.join(10.0)
        with self._lock:
            conns = list(self._clients.values()) + self._anonymous
            self._clients.clear()
            self._anonymous.clear()
        for conn in conns:
            conn.close()
        self._listener.close()

    def __enter__(self) -> "SocketTransportServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _route(self, recipient: str, frame: bytes) -> None:
        with self._lock:
            conn = self._clients.get(recipient)
            if conn is None:
                self._parked[recipient].append(frame)
                return
            try:
                conn.send_bytes(frame)
                self.stats.delivered += 1
            except (BrokenPipeError, OSError):
                # The device vanished mid-send; park the frame for its
                # reconnect and forget the dead connection.
                self._drop_locked(recipient)
                self._parked[recipient].append(frame)

    def _drop_locked(self, node_id: str) -> None:
        conn = self._clients.pop(node_id, None)
        if conn is not None:
            conn.close()

    def _serve(self) -> None:
        while not self._stop.is_set():
            with self._lock:
                watched = {
                    conn.fileno(): (node_id, conn)
                    for node_id, conn in self._clients.items()
                }
                for conn in self._anonymous:
                    watched[conn.fileno()] = (None, conn)
            fds = [self._listener._sock.fileno()] + list(watched)
            try:
                readable, _, _ = select.select(fds, [], [], 0.1)
            except OSError:  # pragma: no cover - listener torn down
                return
            for fd in readable:
                if fd == self._listener._sock.fileno():
                    self._accept()
                else:
                    self._pump_client(*watched[fd])

    def _accept(self) -> None:
        try:
            conn = self._listener.accept(timeout=0.1)
        except (TimeoutError, OSError):  # pragma: no cover - race
            return
        with self._lock:
            self._anonymous.append(conn)

    def _pump_client(
        self, node_id: Optional[str], conn: SocketConnection
    ) -> None:
        try:
            while conn.poll(0):
                rtype, payload = conn.recv_frame()
                node_id = self._on_frame(node_id, conn, rtype, payload)
        except (EOFError, ConnectionResetError, OSError, FramingError):
            with self._lock:
                if node_id is not None:
                    self._drop_locked(node_id)
                elif conn in self._anonymous:
                    self._anonymous.remove(conn)
                    conn.close()

    def _on_frame(
        self,
        node_id: Optional[str],
        conn: SocketConnection,
        rtype: int,
        payload: bytes,
    ) -> Optional[str]:
        if rtype == DEVICE_HELLO:
            node_id = json.loads(payload.decode("utf-8"))["node_id"]
            with self._lock:
                if conn in self._anonymous:
                    self._anonymous.remove(conn)
                self._clients[node_id] = conn
                backlog = self._parked.pop(node_id, [])
            for frame in backlog:
                # Outside the route path on purpose: these were already
                # counted as sent when they were parked.
                conn.send_bytes(frame)
                with self._lock:
                    self.stats.delivered += 1
            _LOGGER.debug(
                "device %s connected (%d parked frame(s) flushed)",
                node_id,
                len(backlog),
            )
            return node_id
        if rtype != DEVICE_MSG:
            raise FramingError(
                f"unexpected device frame type {rtype} from "
                f"{node_id or 'anonymous peer'}"
            )
        body = json.loads(payload.decode("utf-8"))
        sender, recipient = body["sender"], body["recipient"]
        self.stats.record_sent(sender, recipient)
        if recipient == self.node_id:
            with self._lock:
                self._inbox.append(from_wire(body["wire"]))
                self.stats.delivered += 1
        else:
            self._route(recipient, proto.encode_frame(rtype, payload))
        return node_id


class DeviceClient:
    """One user device on the socket transport.

    Connects, introduces itself with ``DEVICE_HELLO`` (which also
    flushes any messages the server parked for it), then sends and
    receives protocol messages.
    """

    def __init__(
        self,
        address: tuple,
        node_id: str,
        *,
        timeout: float = 30.0,
    ) -> None:
        self.node_id = node_id
        self._conn = connect(address, timeout=timeout)
        self._conn.send_bytes(_hello(node_id))

    def send(self, recipient: str, message: Message) -> bool:
        """Ship one message (routed by the server)."""
        if recipient == self.node_id:
            raise ValueError("a node cannot send a message to itself")
        self._conn.send_bytes(
            _message_frame(self.node_id, recipient, message)
        )
        return True

    def receive(self, *, timeout: float = 0.0) -> list[Message]:
        """Pop every message delivered so far.

        ``timeout`` bounds the wait for the *first* message; once one
        arrives, everything already buffered drains without waiting.
        """
        messages: list[Message] = []
        wait = timeout
        while self._conn.poll(wait):
            rtype, payload = self._conn.recv_frame()
            if rtype != DEVICE_MSG:
                raise FramingError(
                    f"unexpected frame type {rtype} on device "
                    f"{self.node_id}"
                )
            messages.append(
                from_wire(json.loads(payload.decode("utf-8"))["wire"])
            )
            wait = 0.0
        return messages

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "DeviceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
