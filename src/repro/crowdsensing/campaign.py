"""Campaign specification and reporting for crowd sensing rounds."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.validation import ensure_positive


@dataclass(frozen=True)
class CampaignSpec:
    """One aggregation round the server wants to run.

    Attributes
    ----------
    campaign_id:
        Unique name for this round.
    object_ids:
        The micro-tasks to collect claims about.
    lambda2:
        The mechanism hyper-parameter released with the assignment.
    deadline:
        Simulated time by which submissions must arrive.
    min_contributors:
        Abort threshold: below this many submissions the aggregate is
        considered unreliable and not published.
    method:
        Truth discovery method name used server-side.
    """

    campaign_id: str
    object_ids: tuple
    lambda2: float
    deadline: float = 10.0
    min_contributors: int = 2
    method: str = "crh"

    def __post_init__(self) -> None:
        if not self.campaign_id:
            raise ValueError("campaign_id must be non-empty")
        if not self.object_ids:
            raise ValueError("object_ids must be non-empty")
        if len(set(self.object_ids)) != len(self.object_ids):
            raise ValueError("object_ids must be unique")
        ensure_positive(self.lambda2, "lambda2")
        ensure_positive(self.deadline, "deadline")
        if self.min_contributors < 1:
            raise ValueError("min_contributors must be >= 1")


@dataclass(frozen=True)
class CampaignReport:
    """Everything a finished campaign produced.

    ``truths`` is None when the campaign failed (insufficient
    contributors by the deadline).
    """

    spec: CampaignSpec
    truths: Optional[np.ndarray]
    weights: Optional[np.ndarray]
    contributors: tuple
    submissions_received: int
    assignments_sent: int
    completed_at: float
    messages_total: int
    user_to_user_messages: int

    @property
    def succeeded(self) -> bool:
        return self.truths is not None

    @property
    def coverage(self) -> float:
        """Contributors per assignment — the campaign's effective yield."""
        if self.assignments_sent == 0:
            return 0.0
        return self.submissions_received / self.assignments_sent

    def summary(self) -> str:
        status = "ok" if self.succeeded else "FAILED"
        return (
            f"campaign {self.spec.campaign_id}: {status}, "
            f"{self.submissions_received}/{self.assignments_sent} submissions, "
            f"{self.messages_total} messages "
            f"({self.user_to_user_messages} user-to-user)"
        )
