"""Multi-round campaign orchestration with privacy budget management.

A deployment runs many aggregation rounds against an overlapping user
population.  The orchestrator chains :func:`run_campaign` rounds over a
shared transport, records every user's per-round LDP guarantee in a
:class:`PrivacyAccountant`, and *stops scheduling rounds for users whose
composed budget would exceed a cap* — the operational policy the paper's
one-shot analysis leaves to the system builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.crowdsensing.campaign import CampaignReport, CampaignSpec
from repro.crowdsensing.device import UserDevice
from repro.crowdsensing.faults import RELIABLE, FaultModel
from repro.crowdsensing.runtime import run_campaign
from repro.crowdsensing.transport import InProcessTransport
from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.ldp import LDPGuarantee, guarantee_of_mechanism
from repro.utils.logging import get_logger
from repro.utils.rng import RandomState, derive_seed
from repro.utils.validation import ensure_positive

_LOGGER = get_logger("crowdsensing.orchestrator")


@dataclass(frozen=True)
class BudgetPolicy:
    """Per-user privacy budget cap across rounds.

    ``epsilon_cap``/``delta_cap`` bound the basic-composition totals; a
    user at or beyond either cap is excluded from further rounds.
    """

    epsilon_cap: float
    delta_cap: float = 1.0

    def __post_init__(self) -> None:
        ensure_positive(self.epsilon_cap, "epsilon_cap")
        if not (0.0 < self.delta_cap <= 1.0):
            raise ValueError("delta_cap must be in (0, 1]")

    def allows(self, spent: LDPGuarantee, next_round: LDPGuarantee) -> bool:
        """Would recording ``next_round`` keep the user within budget?"""
        return (
            spent.epsilon + next_round.epsilon <= self.epsilon_cap + 1e-12
            and spent.delta + next_round.delta <= self.delta_cap + 1e-12
        )


@dataclass
class OrchestratorReport:
    """Everything a finished multi-round schedule produced."""

    rounds: list = field(default_factory=list)
    excluded_by_round: list = field(default_factory=list)

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    def successful_rounds(self) -> list:
        return [r for r in self.rounds if r.succeeded]


class CampaignOrchestrator:
    """Runs a schedule of campaigns under a per-user budget policy."""

    def __init__(
        self,
        devices: Sequence[UserDevice],
        *,
        sensitivity: float,
        delta: float,
        policy: BudgetPolicy,
        fault_model: FaultModel = RELIABLE,
        random_state: RandomState = None,
    ) -> None:
        if not devices:
            raise ValueError("need at least one device")
        ensure_positive(sensitivity, "sensitivity")
        if not (0.0 < delta < 1.0):
            raise ValueError("delta must be in (0, 1)")
        self._devices = list(devices)
        self._sensitivity = sensitivity
        self._delta = delta
        self._policy = policy
        self._faults = fault_model
        self._random_state = random_state
        self.accountant = PrivacyAccountant()

    # ------------------------------------------------------------------
    def eligible_users(self, next_round: LDPGuarantee) -> list[str]:
        """Users whose budget allows participating in ``next_round``."""
        eligible = []
        for device in self._devices:
            spent = self.accountant.composed_guarantee(device.user_id)
            if self._policy.allows(spent, next_round):
                eligible.append(device.user_id)
        return eligible

    def run_schedule(
        self, specs: Sequence[CampaignSpec]
    ) -> OrchestratorReport:
        """Run each campaign in order, enforcing the budget policy.

        Rounds whose eligible population falls below the campaign's
        ``min_contributors`` are skipped (recorded as failed reports with
        zero assignments).
        """
        report = OrchestratorReport()
        for idx, spec in enumerate(specs):
            round_guarantee = guarantee_of_mechanism(
                spec.lambda2, self._sensitivity, self._delta
            )
            eligible_ids = set(self.eligible_users(round_guarantee))
            excluded = [
                d.user_id for d in self._devices if d.user_id not in eligible_ids
            ]
            report.excluded_by_round.append(excluded)
            participating = [
                d for d in self._devices if d.user_id in eligible_ids
            ]
            if len(participating) < spec.min_contributors:
                _LOGGER.warning(
                    "round %s skipped: %d eligible users < %d required",
                    spec.campaign_id,
                    len(participating),
                    spec.min_contributors,
                )
                report.rounds.append(
                    CampaignReport(
                        spec=spec,
                        truths=None,
                        weights=None,
                        contributors=(),
                        submissions_received=0,
                        assignments_sent=0,
                        completed_at=0.0,
                        messages_total=0,
                        user_to_user_messages=0,
                    )
                )
                continue
            transport = InProcessTransport(
                fault_model=self._faults,
                random_state=derive_seed(
                    self._random_state, "orchestrator-transport", idx
                ),
            )
            round_report = run_campaign(
                spec, participating, transport=transport
            )
            report.rounds.append(round_report)
            # Budget is charged to everyone who actually submitted.
            self.accountant.record_for_all(
                round_report.contributors,
                round_guarantee,
                mechanism="exp-gaussian",
                label=spec.campaign_id,
            )
        return report

    # ------------------------------------------------------------------
    def remaining_budget(self, user_id: str) -> LDPGuarantee:
        """Unspent (epsilon, delta) headroom for ``user_id``."""
        spent = self.accountant.composed_guarantee(user_id)
        return LDPGuarantee(
            epsilon=max(0.0, self._policy.epsilon_cap - spent.epsilon),
            delta=max(0.0, self._policy.delta_cap - spent.delta),
        )
