"""User devices: sensing, local perturbation, submission.

A :class:`UserDevice` owns its user's original observations and executes
the client side of Algorithm 2 entirely locally:

* on receiving a :class:`TaskAssignment` it samples its private noise
  variance ``delta_s^2 ~ Exp(lambda2)`` from its own RNG stream,
* perturbs each observed claim with ``N(0, delta_s^2)`` noise,
* replies with a single :class:`ClaimSubmission`.

The sampled variance is stored only on the device (`_last_variance`) and
is never serialised — the privacy boundary the paper's mechanism draws.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from repro.crowdsensing.messages import ClaimSubmission, TaskAssignment
from repro.utils.rng import RandomState, as_generator


@dataclass
class SensorModel:
    """How a device turns ground truth into an observation.

    ``observe(truth)`` = truth + bias + N(0, error_std^2): a simple but
    expressive model covering hardware bias and ambient noise, matching
    the error structure assumed throughout the paper.
    """

    error_std: float = 0.2
    bias: float = 0.0

    def observe(self, truth: float, rng: np.random.Generator) -> float:
        return float(truth + self.bias + rng.normal(0.0, self.error_std))


class UserDevice:
    """One participant's phone/wearable in the simulated system."""

    def __init__(
        self,
        user_id: str,
        observations: Mapping[object, float],
        *,
        random_state: RandomState = None,
    ) -> None:
        if not user_id:
            raise ValueError("user_id must be non-empty")
        if not observations:
            raise ValueError(f"user {user_id!r} has no observations")
        self.user_id = user_id
        self._observations = dict(observations)
        self._rng = as_generator(random_state)
        self._last_variance: Optional[float] = None
        self.submissions_made = 0

    # ------------------------------------------------------------------
    @classmethod
    def sense(
        cls,
        user_id: str,
        ground_truth: Mapping[object, float],
        sensor: SensorModel,
        *,
        random_state: RandomState = None,
    ) -> "UserDevice":
        """Build a device by observing ``ground_truth`` through ``sensor``."""
        rng = as_generator(random_state)
        observations = {
            obj: sensor.observe(truth, rng) for obj, truth in ground_truth.items()
        }
        return cls(user_id, observations, random_state=rng)

    # ------------------------------------------------------------------
    def handle_assignment(
        self, assignment: TaskAssignment
    ) -> Optional[ClaimSubmission]:
        """Execute Algorithm 2 lines 2-5 for this assignment.

        Returns the submission, or None when the device observed none of
        the requested objects (it then stays silent, as a real app
        would).
        """
        requested = [
            obj for obj in assignment.object_ids if obj in self._observations
        ]
        if not requested:
            return None
        variance = self._rng.exponential(scale=1.0 / assignment.lambda2)
        self._last_variance = variance
        std = math.sqrt(variance)
        perturbed = tuple(
            self._observations[obj] + float(self._rng.normal(0.0, std))
            for obj in requested
        )
        self.submissions_made += 1
        return ClaimSubmission(
            campaign_id=assignment.campaign_id,
            user_id=self.user_id,
            object_ids=tuple(requested),
            values=perturbed,
        )

    # ------------------------------------------------------------------
    @property
    def observed_objects(self) -> tuple:
        return tuple(self._observations)

    def original_claim(self, object_id) -> float:
        """The device's unperturbed observation (local-only accessor)."""
        return self._observations[object_id]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UserDevice(user_id={self.user_id!r}, "
            f"observations={len(self._observations)})"
        )
