"""Wire messages of the crowd sensing protocol.

The paper's system (Section 2, Figure 1) has exactly two parties — the
server and the users — and a non-interactive protocol:

1. server -> user : task assignment carrying the micro-tasks and the
   released hyper-parameter ``lambda2``;
2. user -> server : one submission of perturbed claims;
3. server -> all  : the published aggregated results.

Messages are plain dataclasses with dict/JSON round-trips so the
transport layer can treat them as opaque serialised payloads, as a real
deployment would.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any


@dataclass(frozen=True)
class TaskAssignment:
    """Server -> user: the campaign's micro-tasks and mechanism parameter."""

    campaign_id: str
    object_ids: tuple
    lambda2: float
    deadline: float
    kind: str = field(default="task_assignment", init=False)


@dataclass(frozen=True)
class ClaimSubmission:
    """User -> server: perturbed claims for the observed objects.

    ``values[i]`` is the perturbed claim for ``object_ids[i]``.  Note the
    message deliberately has *no* field for the sampled noise variance —
    that never leaves the device (the privacy property of Algorithm 2).
    """

    campaign_id: str
    user_id: str
    object_ids: tuple
    values: tuple
    kind: str = field(default="claim_submission", init=False)

    def __post_init__(self) -> None:
        if len(self.object_ids) != len(self.values):
            raise ValueError(
                f"{len(self.object_ids)} object ids for {len(self.values)} values"
            )


@dataclass(frozen=True)
class AggregateAnnouncement:
    """Server -> all: the published aggregated results."""

    campaign_id: str
    object_ids: tuple
    truths: tuple
    num_contributors: int
    kind: str = field(default="aggregate_announcement", init=False)


Message = Any  # union of the dataclasses above; kept loose for transports

_KIND_TO_CLASS = {
    "task_assignment": TaskAssignment,
    "claim_submission": ClaimSubmission,
    "aggregate_announcement": AggregateAnnouncement,
}


def to_wire(message: Message) -> str:
    """Serialise a protocol message to a JSON string."""
    payload = asdict(message)
    return json.dumps(payload, sort_keys=True)


def from_wire(wire: str) -> Message:
    """Deserialise a JSON string back into its message dataclass."""
    payload = json.loads(wire)
    kind = payload.pop("kind", None)
    try:
        cls = _KIND_TO_CLASS[kind]
    except KeyError:
        raise ValueError(f"unknown message kind {kind!r}") from None
    for key in ("object_ids", "values", "truths"):
        if key in payload and isinstance(payload[key], list):
            payload[key] = tuple(payload[key])
    return cls(**payload)


@dataclass(frozen=True)
class Envelope:
    """A message in flight: sender, recipient, and timing metadata."""

    sender: str
    recipient: str
    payload: Message
    send_time: float
    deliver_time: float

    def __post_init__(self) -> None:
        if self.deliver_time < self.send_time:
            raise ValueError("deliver_time cannot precede send_time")
