"""Simulated crowd sensing system (the paper's deployment context).

Server, user devices, message protocol, and an in-process transport with
fault injection — a runnable model of Figure 1's architecture in which
Algorithm 2's client side executes on the devices and the untrusted
server only ever sees perturbed claims.
"""

from repro.crowdsensing.campaign import CampaignReport, CampaignSpec
from repro.crowdsensing.device import SensorModel, UserDevice
from repro.crowdsensing.faults import RELIABLE, FaultModel, lossy
from repro.crowdsensing.incentives import (
    RewardPolicy,
    allocate_rewards,
    reward_distortion,
    top_contributor_overlap,
)
from repro.crowdsensing.orchestrator import (
    BudgetPolicy,
    CampaignOrchestrator,
    OrchestratorReport,
)
from repro.crowdsensing.messages import (
    AggregateAnnouncement,
    ClaimSubmission,
    Envelope,
    TaskAssignment,
    from_wire,
    to_wire,
)
from repro.crowdsensing.runtime import build_devices, run_campaign
from repro.crowdsensing.server import AggregationServer
from repro.crowdsensing.transport import InProcessTransport, TransportStats

__all__ = [
    "AggregateAnnouncement",
    "AggregationServer",
    "BudgetPolicy",
    "CampaignOrchestrator",
    "OrchestratorReport",
    "CampaignReport",
    "CampaignSpec",
    "ClaimSubmission",
    "Envelope",
    "FaultModel",
    "InProcessTransport",
    "RELIABLE",
    "RewardPolicy",
    "SensorModel",
    "TaskAssignment",
    "allocate_rewards",
    "reward_distortion",
    "top_contributor_overlap",
    "TransportStats",
    "UserDevice",
    "build_devices",
    "from_wire",
    "lossy",
    "run_campaign",
    "to_wire",
]
