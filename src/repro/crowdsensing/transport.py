"""In-process message transport with simulated time.

A tiny discrete-event network: senders enqueue :class:`Envelope`s, the
transport applies the :class:`FaultModel` (drop / latency / straggler)
and delivers messages to per-recipient inboxes in timestamp order when
the simulation clock advances.

The transport also keeps delivery statistics, which the tests use to
verify the protocol-shape claims from Section 3.2: per campaign round the
message complexity is O(S) (one assignment + at most one submission per
user) and there is never user-to-user traffic.
"""

from __future__ import annotations

import heapq
import itertools
from collections import defaultdict
from dataclasses import dataclass, field

from repro.crowdsensing.faults import RELIABLE, FaultModel
from repro.crowdsensing.messages import Envelope, Message, from_wire, to_wire
from repro.utils.rng import RandomState, as_generator


@dataclass
class TransportStats:
    """Counters describing everything the transport has carried."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    by_link: dict = field(default_factory=lambda: defaultdict(int))

    def record_sent(self, sender: str, recipient: str) -> None:
        self.sent += 1
        self.by_link[(sender, recipient)] += 1


class InProcessTransport:
    """Simulated network with a virtual clock.

    Messages are serialised on send and deserialised on delivery, so a
    payload that cannot survive the wire (non-JSON-serialisable) fails
    fast, like it would against a real message bus.
    """

    def __init__(
        self,
        fault_model: FaultModel = RELIABLE,
        random_state: RandomState = None,
    ) -> None:
        self._faults = fault_model
        self._rng = as_generator(random_state)
        self._queue: list[tuple[float, int, Envelope]] = []
        self._inboxes: dict[str, list[Message]] = defaultdict(list)
        self._clock = 0.0
        self._sequence = itertools.count()
        self.stats = TransportStats()

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._clock

    def send(self, sender: str, recipient: str, message: Message) -> bool:
        """Enqueue a message; returns False if the fault model dropped it.

        The payload is round-tripped through the wire format immediately
        so serialisation bugs surface at send time.
        """
        if sender == recipient:
            raise ValueError("a node cannot send a message to itself")
        self.stats.record_sent(sender, recipient)
        if self._faults.should_drop(self._rng):
            self.stats.dropped += 1
            return False
        wire = to_wire(message)
        payload = from_wire(wire)
        latency = self._faults.sample_latency(self._rng)
        envelope = Envelope(
            sender=sender,
            recipient=recipient,
            payload=payload,
            send_time=self._clock,
            deliver_time=self._clock + latency,
        )
        heapq.heappush(
            self._queue, (envelope.deliver_time, next(self._sequence), envelope)
        )
        return True

    def advance_to(self, time: float) -> int:
        """Advance the clock, delivering everything due by ``time``.

        Returns the number of messages delivered.
        """
        if time < self._clock:
            raise ValueError(
                f"cannot move the clock backwards ({time} < {self._clock})"
            )
        delivered = 0
        while self._queue and self._queue[0][0] <= time:
            _deliver_time, _seq, envelope = heapq.heappop(self._queue)
            self._inboxes[envelope.recipient].append(envelope.payload)
            self.stats.delivered += 1
            delivered += 1
        self._clock = time
        return delivered

    def drain_until_idle(self, *, max_time: float = float("inf")) -> int:
        """Deliver all queued messages (bounded by ``max_time``)."""
        delivered = 0
        while self._queue and self._queue[0][0] <= max_time:
            next_time = self._queue[0][0]
            delivered += self.advance_to(next_time)
        if max_time != float("inf") and max_time > self._clock:
            self._clock = max_time
        return delivered

    def receive(self, node_id: str) -> list[Message]:
        """Pop and return all messages delivered to ``node_id`` so far."""
        inbox = self._inboxes[node_id]
        self._inboxes[node_id] = []
        return inbox

    def peek(self, node_id: str) -> list[Message]:
        """Non-destructive view of a node's inbox."""
        return list(self._inboxes[node_id])

    @property
    def in_flight(self) -> int:
        """Messages queued but not yet delivered."""
        return len(self._queue)

    def user_to_user_messages(self) -> int:
        """Count of links between two non-server nodes (should stay 0).

        The server is any node id beginning with ``server``; everything
        else is a user device.  Section 3.2's "no communication among
        users" claim is checked against this counter.
        """
        count = 0
        for (sender, recipient), n in self.stats.by_link.items():
            if not sender.startswith("server") and not recipient.startswith("server"):
                count += n
        return count
