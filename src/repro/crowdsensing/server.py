"""The aggregation server (untrusted, in the paper's threat model).

The server can only observe what arrives on the wire: perturbed claims.
It assigns tasks, collects submissions until the campaign deadline, runs
truth discovery on whatever arrived, and publishes the aggregate.  It
never sees noise variances or original values — by construction, those
fields do not exist in the message schema.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.crowdsensing.campaign import CampaignReport, CampaignSpec
from repro.crowdsensing.messages import (
    AggregateAnnouncement,
    ClaimSubmission,
    TaskAssignment,
)
from repro.crowdsensing.transport import InProcessTransport
from repro.truthdiscovery.claims import ClaimMatrix
from repro.truthdiscovery.registry import create_method
from repro.utils.logging import get_logger

_LOGGER = get_logger("crowdsensing.server")


class AggregationServer:
    """Server-side of the crowd sensing protocol."""

    def __init__(
        self, transport: InProcessTransport, *, node_id: str = "server"
    ) -> None:
        if not node_id.startswith("server"):
            raise ValueError(
                "server node ids must start with 'server' (the transport "
                "uses the prefix to audit user-to-user traffic)"
            )
        self.node_id = node_id
        self._transport = transport
        self._submissions: dict[str, list[ClaimSubmission]] = {}

    # ------------------------------------------------------------------
    def announce_campaign(
        self, spec: CampaignSpec, user_ids: list[str]
    ) -> int:
        """Send the task assignment to every user; returns the send count."""
        self._submissions[spec.campaign_id] = []
        assignment = TaskAssignment(
            campaign_id=spec.campaign_id,
            object_ids=tuple(spec.object_ids),
            lambda2=spec.lambda2,
            deadline=spec.deadline,
        )
        sent = 0
        for user_id in user_ids:
            self._transport.send(self.node_id, user_id, assignment)
            sent += 1
        _LOGGER.debug(
            "campaign %s announced to %d users", spec.campaign_id, sent
        )
        return sent

    def collect(self) -> int:
        """Drain the server inbox, filing submissions; returns the count."""
        count = 0
        for message in self._transport.receive(self.node_id):
            if isinstance(message, ClaimSubmission):
                bucket = self._submissions.get(message.campaign_id)
                if bucket is None:
                    _LOGGER.warning(
                        "submission for unknown campaign %s ignored",
                        message.campaign_id,
                    )
                    continue
                bucket.append(message)
                count += 1
        return count

    def submissions_for(self, campaign_id: str) -> list[ClaimSubmission]:
        return list(self._submissions.get(campaign_id, []))

    # ------------------------------------------------------------------
    def finalise(
        self,
        spec: CampaignSpec,
        *,
        assignments_sent: int,
        announce: bool = True,
    ) -> CampaignReport:
        """Aggregate the collected submissions for ``spec`` (Algorithm 2
        line 6) and optionally publish the result."""
        submissions = self._submissions.get(spec.campaign_id, [])
        # Deduplicate by user (keep the last submission, e.g. a retry).
        latest: dict[str, ClaimSubmission] = {}
        for sub in submissions:
            latest[sub.user_id] = sub
        contributors = tuple(sorted(latest))

        truths: Optional[np.ndarray] = None
        weights: Optional[np.ndarray] = None
        if len(latest) >= spec.min_contributors:
            records = [
                (sub.user_id, obj, val)
                for sub in latest.values()
                for obj, val in zip(sub.object_ids, sub.values)
            ]
            claims = ClaimMatrix.from_records(
                records,
                user_ids=contributors,
                object_ids=spec.object_ids,
            )
            method = create_method(spec.method)
            result = method.fit(claims)
            truths = result.truths
            weights = result.weights
            if announce:
                announcement = AggregateAnnouncement(
                    campaign_id=spec.campaign_id,
                    object_ids=tuple(spec.object_ids),
                    truths=tuple(float(t) for t in truths),
                    num_contributors=len(latest),
                )
                for user_id in contributors:
                    self._transport.send(self.node_id, user_id, announcement)
        else:
            _LOGGER.warning(
                "campaign %s failed: %d contributors < %d required",
                spec.campaign_id,
                len(latest),
                spec.min_contributors,
            )

        return CampaignReport(
            spec=spec,
            truths=truths,
            weights=weights,
            contributors=contributors,
            submissions_received=len(latest),
            assignments_sent=assignments_sent,
            completed_at=self._transport.now,
            messages_total=self._transport.stats.sent,
            user_to_user_messages=self._transport.user_to_user_messages(),
        )
