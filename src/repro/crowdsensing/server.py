"""The aggregation server (untrusted, in the paper's threat model).

The server can only observe what arrives on the wire: perturbed claims.
It assigns tasks, collects submissions until the campaign deadline, runs
truth discovery on whatever arrived, and publishes the aggregate.  It
never sees noise variances or original values — by construction, those
fields do not exist in the message schema.

Two storage/aggregation backends share the protocol logic:

* the classic in-memory path files submissions per campaign and fits the
  configured method once at finalise (claim assembly is vectorised via
  :meth:`ClaimMatrix.from_submissions`);
* when constructed with ``service=``, campaigns are delegated to a
  :class:`repro.service.ingest.IngestService` — submissions stream into
  sharded columnar micro-batches and finalise reads an incremental
  snapshot instead of refitting (see ``repro.service.adapter``).

Campaigns are *closed* by finalise: submissions that arrive afterwards
(stragglers, duplicates, replays) are counted and logged per campaign
rather than silently dropped, so late traffic is observable under load
via :attr:`AggregationServer.late_submission_counts`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.crowdsensing.campaign import CampaignReport, CampaignSpec
from repro.crowdsensing.messages import (
    AggregateAnnouncement,
    ClaimSubmission,
    TaskAssignment,
)
from repro.crowdsensing.transport import InProcessTransport
from repro.truthdiscovery.claims import ClaimMatrix
from repro.truthdiscovery.registry import create_method
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.service.ingest import IngestService

_LOGGER = get_logger("crowdsensing.server")


class AggregationServer:
    """Server-side of the crowd sensing protocol.

    Parameters
    ----------
    transport:
        The message transport to announce/collect over.
    node_id:
        Transport identity; must keep the ``server`` prefix so the
        transport can audit user-to-user traffic.
    service:
        Optional :class:`~repro.service.ingest.IngestService`; when
        given, campaign storage and aggregation run on the sharded
        micro-batching pipeline instead of in-memory lists.
    """

    def __init__(
        self,
        transport: InProcessTransport,
        *,
        node_id: str = "server",
        service: Optional["IngestService"] = None,
    ) -> None:
        if not node_id.startswith("server"):
            raise ValueError(
                "server node ids must start with 'server' (the transport "
                "uses the prefix to audit user-to-user traffic)"
            )
        self.node_id = node_id
        self._transport = transport
        self._submissions: dict[str, list[ClaimSubmission]] = {}
        self._closed: set[str] = set()
        self._late_counts: dict[str, int] = {}
        self._unknown_counts: dict[str, int] = {}
        self._adapter = None
        if service is not None:
            from repro.service.adapter import ServiceCampaignAdapter

            self._adapter = ServiceCampaignAdapter(service)

    # ------------------------------------------------------------------
    @property
    def uses_service(self) -> bool:
        """True when campaigns run on the ingestion-service backend."""
        return self._adapter is not None

    @property
    def late_submission_counts(self) -> dict[str, int]:
        """Per-campaign submissions that arrived after finalise closed it."""
        return dict(self._late_counts)

    @property
    def unknown_submission_counts(self) -> dict[str, int]:
        """Submissions received for campaigns never announced here."""
        return dict(self._unknown_counts)

    def announce_campaign(
        self, spec: CampaignSpec, user_ids: list[str]
    ) -> int:
        """Send the task assignment to every user; returns the send count."""
        self._submissions[spec.campaign_id] = []
        self._closed.discard(spec.campaign_id)
        # A fresh round starts with a clean late-arrival counter;
        # round N's stragglers must not show up against round N+1.
        self._late_counts.pop(spec.campaign_id, None)
        if self._adapter is not None:
            self._adapter.register(spec, user_ids)
        assignment = TaskAssignment(
            campaign_id=spec.campaign_id,
            object_ids=tuple(spec.object_ids),
            lambda2=spec.lambda2,
            deadline=spec.deadline,
        )
        sent = 0
        for user_id in user_ids:
            self._transport.send(self.node_id, user_id, assignment)
            sent += 1
        _LOGGER.debug(
            "campaign %s announced to %d users", spec.campaign_id, sent
        )
        return sent

    def collect(self) -> dict[str, int]:
        """Drain the server inbox, filing submissions.

        Returns the number of accepted submissions per campaign.  Late
        submissions (for campaigns already finalised) and submissions
        for unknown campaigns are logged and counted — never silently
        dropped — but excluded from the returned counts.
        """
        counts: dict[str, int] = {}
        for message in self._transport.receive(self.node_id):
            if not isinstance(message, ClaimSubmission):
                continue
            campaign_id = message.campaign_id
            if campaign_id in self._closed:
                self._late_counts[campaign_id] = (
                    self._late_counts.get(campaign_id, 0) + 1
                )
                _LOGGER.warning(
                    "late submission from %s for closed campaign %s "
                    "(%d late so far)",
                    message.user_id,
                    campaign_id,
                    self._late_counts[campaign_id],
                )
                continue
            bucket = self._submissions.get(campaign_id)
            if bucket is None:
                self._unknown_counts[campaign_id] = (
                    self._unknown_counts.get(campaign_id, 0) + 1
                )
                _LOGGER.warning(
                    "submission for unknown campaign %s ignored",
                    campaign_id,
                )
                continue
            if self._adapter is not None:
                result = self._adapter.offer(message)
                if not result.ok:
                    continue
            else:
                bucket.append(message)
            counts[campaign_id] = counts.get(campaign_id, 0) + 1
        return counts

    def submissions_for(self, campaign_id: str) -> list[ClaimSubmission]:
        """Submissions filed for a campaign (classic backend only).

        The service backend streams submissions into columnar batches
        and does not retain message bodies; failing loudly beats
        silently reporting an empty inbox.
        """
        if self._adapter is not None:
            raise RuntimeError(
                "submission bodies are not retained on the service "
                "backend; inspect the service's snapshots/stats instead"
            )
        return list(self._submissions.get(campaign_id, []))

    # ------------------------------------------------------------------
    def finalise(
        self,
        spec: CampaignSpec,
        *,
        assignments_sent: int,
        announce: bool = True,
    ) -> CampaignReport:
        """Aggregate the collected submissions for ``spec`` (Algorithm 2
        line 6), close the campaign, and optionally publish the result."""
        if self._adapter is not None:
            truths, weights, contributors = self._adapter.finalise(spec)
            num_received = len(contributors)
        else:
            submissions = self._submissions.get(spec.campaign_id, [])
            # Deduplicate by user (keep the last submission, e.g. a retry).
            latest: dict[str, ClaimSubmission] = {}
            for sub in submissions:
                latest[sub.user_id] = sub
            contributors = tuple(sorted(latest))
            num_received = len(latest)

            truths = weights = None
            if num_received >= spec.min_contributors:
                claims = ClaimMatrix.from_submissions(
                    (latest[user] for user in contributors),
                    user_ids=contributors,
                    object_ids=spec.object_ids,
                )
                method = create_method(spec.method)
                result = method.fit(claims)
                truths = result.truths
                weights = result.weights

        self._closed.add(spec.campaign_id)
        if truths is not None:
            if announce:
                announcement = AggregateAnnouncement(
                    campaign_id=spec.campaign_id,
                    object_ids=tuple(spec.object_ids),
                    truths=tuple(float(t) for t in truths),
                    num_contributors=num_received,
                )
                for user_id in contributors:
                    self._transport.send(self.node_id, user_id, announcement)
        elif num_received < spec.min_contributors:
            _LOGGER.warning(
                "campaign %s failed: %d contributors < %d required",
                spec.campaign_id,
                num_received,
                spec.min_contributors,
            )
        else:
            # Quorum was met but the backend still withheld the result
            # (service path: incomplete object coverage — the adapter
            # already logged the specific cause).
            _LOGGER.warning("campaign %s failed", spec.campaign_id)

        return CampaignReport(
            spec=spec,
            truths=truths,
            weights=weights,
            contributors=contributors,
            submissions_received=num_received,
            assignments_sent=assignments_sent,
            completed_at=self._transport.now,
            messages_total=self._transport.stats.sent,
            user_to_user_messages=self._transport.user_to_user_messages(),
        )
