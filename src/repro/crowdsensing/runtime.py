"""Campaign runtime: drives devices, transport, and server to completion.

:func:`run_campaign` executes one full protocol round under simulated
time:

1. the server announces the campaign (assignment messages fan out);
2. the clock advances past delivery; each device that received its
   assignment perturbs locally and submits;
3. the clock advances to the deadline; the server collects whatever
   arrived and finalises the aggregate.

Everything is deterministic given the seeds baked into the devices and
transport, so protocol-level tests are exact.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from repro.crowdsensing.campaign import CampaignReport, CampaignSpec
from repro.crowdsensing.device import UserDevice
from repro.crowdsensing.faults import RELIABLE, FaultModel
from repro.crowdsensing.messages import TaskAssignment
from repro.crowdsensing.server import AggregationServer
from repro.crowdsensing.transport import InProcessTransport
from repro.utils.rng import RandomState, spawn_generators

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.service.ingest import IngestService


def build_devices(
    observations_by_user: Mapping[str, Mapping[object, float]],
    *,
    random_state: RandomState = None,
) -> list[UserDevice]:
    """Construct one device per user with independent RNG streams."""
    users = list(observations_by_user)
    streams = spawn_generators(random_state, len(users))
    return [
        UserDevice(user_id, observations_by_user[user_id], random_state=stream)
        for user_id, stream in zip(users, streams)
    ]


def run_campaign(
    spec: CampaignSpec,
    devices: Sequence[UserDevice],
    *,
    fault_model: FaultModel = RELIABLE,
    transport: Optional[InProcessTransport] = None,
    random_state: RandomState = None,
    service: Optional["IngestService"] = None,
) -> CampaignReport:
    """Run one campaign end to end and return its report.

    Parameters
    ----------
    spec:
        The campaign to run.
    devices:
        Participating user devices (each owns its observations and RNG).
    fault_model:
        Link behaviour for the whole round (drops, latency, stragglers).
    transport:
        Supply an existing transport to chain multiple campaigns over
        one network (stats accumulate); default builds a fresh one.
    service:
        Optional ingestion service; when given, the server delegates
        campaign storage and aggregation to its sharded micro-batching
        pipeline (``repro.service``) instead of the in-memory path.
    """
    if transport is None:
        transport = InProcessTransport(
            fault_model=fault_model, random_state=random_state
        )
    server = AggregationServer(transport, service=service)

    user_ids = [d.user_id for d in devices]
    assignments_sent = server.announce_campaign(spec, user_ids)

    # Deliver assignments: advance to just past the latest queued delivery
    # but never beyond the deadline.
    transport.drain_until_idle(max_time=spec.deadline / 2.0)

    # Devices react to whatever reached them.
    for device in devices:
        for message in transport.receive(device.user_id):
            if isinstance(message, TaskAssignment):
                submission = device.handle_assignment(message)
                if submission is not None:
                    transport.send(device.user_id, server.node_id, submission)

    # Let submissions arrive until the deadline, then close the round.
    transport.drain_until_idle(max_time=spec.deadline)
    server.collect()
    report = server.finalise(spec, assignments_sent=assignments_sent)
    # Flush announcement messages so chained campaigns start clean.
    transport.drain_until_idle(max_time=spec.deadline + 1.0)
    return report
