"""Incentive allocation for crowd sensing campaigns.

Section 2 of the paper notes participants are "usually driven by their
interests or financial incentives", and Section 1 warns about users who
deceive "to get rewards".  Truth discovery gives the server a principled
reward signal: the estimated user weights.  This module implements the
standard weight-proportional allocation used in quality-aware incentive
schemes, plus diagnostics for how perturbation affects payouts.

Design notes
------------
* Rewards are computed from weights estimated on *perturbed* data — the
  only data the server has — so the privacy mechanism must not wreck
  payment fairness.  :func:`reward_distortion` quantifies the payout
  shift perturbation introduces (exercised in the tests against the
  oracle weights).
* A ``base_share`` floor pays every contributor something, the usual
  participation-incentive design; the remainder is split by weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.validation import ensure_in_range, ensure_positive


@dataclass(frozen=True)
class RewardPolicy:
    """How a campaign budget is split among contributors.

    Attributes
    ----------
    budget:
        Total payout for the round (currency units).
    base_share:
        Fraction of the budget split equally among all contributors
        (participation reward); the rest is weight-proportional.
    """

    budget: float
    base_share: float = 0.2

    def __post_init__(self) -> None:
        ensure_positive(self.budget, "budget")
        ensure_in_range(self.base_share, "base_share", 0.0, 1.0)


def allocate_rewards(
    weights: Sequence[float], policy: RewardPolicy
) -> np.ndarray:
    """Split ``policy.budget`` among users according to their weights.

    ``reward_s = budget * [ base_share / S
                            + (1 - base_share) * w_s / sum(w) ]``.

    Degenerate all-zero weights fall back to an equal split (no quality
    signal means no basis for differentiation).
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 1 or weights.size == 0:
        raise ValueError("weights must be a non-empty 1-D array")
    if np.any(weights < 0) or not np.all(np.isfinite(weights)):
        raise ValueError("weights must be finite and non-negative")
    s = weights.size
    base = policy.budget * policy.base_share / s
    total = weights.sum()
    if total <= 0:
        return np.full(s, policy.budget / s)
    merit = policy.budget * (1.0 - policy.base_share) * weights / total
    return base + merit


def reward_distortion(
    oracle_weights: Sequence[float],
    estimated_weights: Sequence[float],
    policy: RewardPolicy,
) -> float:
    """Total payout that lands on the wrong users, as a budget fraction.

    ``0.5 * sum |reward(oracle) - reward(estimated)| / budget`` — the
    earth-mover distance between the two payout vectors, in [0, 1].
    0 means perturbation changed nobody's pay; 1 means the entire budget
    moved.
    """
    r_oracle = allocate_rewards(oracle_weights, policy)
    r_est = allocate_rewards(estimated_weights, policy)
    return float(0.5 * np.abs(r_oracle - r_est).sum() / policy.budget)


def top_contributor_overlap(
    oracle_weights: Sequence[float],
    estimated_weights: Sequence[float],
    *,
    top_k: int = 10,
) -> float:
    """Fraction of the true top-k earners preserved under estimation.

    Bonus schemes often pay only the best contributors; this measures
    whether perturbation changes who qualifies.
    """
    oracle = np.asarray(oracle_weights, dtype=float)
    estimated = np.asarray(estimated_weights, dtype=float)
    if oracle.shape != estimated.shape:
        raise ValueError("weight vectors must have the same shape")
    k = min(top_k, oracle.size)
    if k == 0:
        return 1.0
    top_oracle = set(np.argsort(oracle)[-k:].tolist())
    top_est = set(np.argsort(estimated)[-k:].tolist())
    return len(top_oracle & top_est) / k
