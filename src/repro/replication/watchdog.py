"""Automated failover: heartbeat the primary, promote the freshest standby.

``docs/replication.md`` used to end with a *manual* promotion runbook —
an operator notices the primary is gone, inspects every standby's
watermark, and calls ``promote()`` on the best one.  This module is
that runbook as code:

* :class:`PrimaryStatusServer` gives the primary a liveness surface:
  a listener answering the worker protocol's ``PING`` and the
  replication protocol's ``STATUS_REQ`` (role, watermarks) without
  touching the ingest hot path;
* :class:`FailoverWatchdog` heartbeats that listener on an interval.
  After ``misses`` consecutive failed probes it declares the primary
  dead, queries every standby's replicated watermark over the same
  STATUS frames standbys already serve, elects the freshest (highest
  ``durable_lsn``; ties break to the lowest index — a deterministic
  rule, so two drills with the same schedule elect the same standby),
  and calls ``PROMOTE`` on it;
* :func:`launch_watchdog` runs that loop in a *detached* ``repro
  watchdog`` process.  Detachment is the point: a watchdog thread
  inside the primary dies with the primary, while an orphaned child
  keeps running after SIGKILL — which is exactly when it is needed.

``Topology.replicated(auto_failover=True)`` wires all three together;
the manual ``promote()`` path remains as the fallback when no watchdog
is armed.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from typing import Callable, Optional, Sequence

from repro.net.transport import SocketListener, connect
from repro.replication import protocol as rp
from repro.replication.client import ReplicaError, ReplicaReadClient
from repro.utils.logging import get_logger
from repro.utils.validation import ensure_int, ensure_positive
from repro.workers import protocol as proto
from repro.workers.protocol import ProtocolError, recv_frame, send_frame

_LOGGER = get_logger("replication.watchdog")

#: How long a status connection may sit idle before the server drops it
#: (a watchdog probes and disconnects; anything quieter is dead).
_IDLE_SECONDS = 10.0


class WatchdogError(RuntimeError):
    """The watchdog could not complete a failover."""


class PrimaryStatusServer:
    """The primary's liveness/status listener (one background thread).

    Answers ``PING`` → ``PONG`` and ``STATUS_REQ`` → ``STATUS_RESP``
    with the primary's role and WAL watermarks, read straight off the
    :class:`~repro.durable.manager.DurabilityManager` — no locks shared
    with the ingest path.  Serves one connection at a time: the only
    expected client is a watchdog that dials, probes, and hangs up.
    """

    def __init__(
        self, manager, *, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self._manager = manager
        self._listener = SocketListener(host, port)
        self.address = self._listener.address
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.probes_answered = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("status server already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-primary-status", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._listener.close()
        if self._thread is not None:
            self._thread.join(10.0)
            self._thread = None

    # ------------------------------------------------------------------
    def _status(self) -> dict:
        return {
            "role": "primary",
            "pid": os.getpid(),
            "durable_lsn": self._manager.durable_lsn,
            "last_lsn": self._manager.last_lsn,
        }

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                conn = self._listener.accept(timeout=0.2)
            except TimeoutError:
                continue
            except OSError:
                return  # listener closed under us: shutting down
            try:
                self._serve(conn)
            finally:
                conn.close()

    def _serve(self, conn) -> None:
        idle_since = time.monotonic()
        while not self._stop.is_set():
            try:
                if not conn.poll(0.2):
                    if time.monotonic() - idle_since > _IDLE_SECONDS:
                        return
                    continue
                rtype, _payload = recv_frame(conn)
            except (OSError, EOFError):
                return
            idle_since = time.monotonic()
            try:
                if rtype == proto.PING:
                    send_frame(conn, proto.PONG)
                    self.probes_answered += 1
                elif rtype == rp.STATUS_REQ:
                    send_frame(
                        conn,
                        rp.STATUS_RESP,
                        rp.encode_json(self._status()),
                    )
                elif rtype == proto.SHUTDOWN:
                    return
                else:
                    send_frame(
                        conn,
                        rp.REPL_ERROR,
                        rp.encode_json(
                            {"error": f"unsupported frame type {rtype}"}
                        ),
                    )
            except (OSError, BrokenPipeError):
                return


class FailoverWatchdog:
    """Detect primary death and promote the freshest standby.

    Parameters
    ----------
    primary_address:
        The primary's :class:`PrimaryStatusServer` ``(host, port)``.
    standby_addresses:
        Every standby listener, in launch order (index order is the
        election tie-break).
    interval:
        Seconds between heartbeats.
    misses:
        Consecutive failed probes before the primary is declared dead.
    probe_timeout:
        Dial + response budget of a single probe (and of each election
        status query).
    on_armed:
        Called once, after the first successful probe — the hook the
        CLI uses to print ``ARMED`` so a drill knows the watchdog is
        live before it starts killing things.
    """

    def __init__(
        self,
        primary_address: tuple,
        standby_addresses: Sequence[tuple],
        *,
        interval: float = 0.5,
        misses: int = 4,
        probe_timeout: float = 1.0,
        on_armed: Optional[Callable[[], None]] = None,
    ) -> None:
        if not standby_addresses:
            raise ValueError("watchdog needs at least one standby address")
        ensure_positive(interval, "interval")
        ensure_int(misses, "misses", minimum=1)
        ensure_positive(probe_timeout, "probe_timeout")
        self.primary_address = tuple(primary_address)
        self.standby_addresses = [tuple(a) for a in standby_addresses]
        self.interval = float(interval)
        self.misses = int(misses)
        self.probe_timeout = float(probe_timeout)
        self._on_armed = on_armed
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.armed = False
        self.heartbeats_sent = 0
        self.heartbeat_misses = 0
        self.elections = 0
        self.auto_promotions = 0
        self.detection_seconds: Optional[float] = None
        self.promotion_seconds: Optional[float] = None
        self.result: Optional[dict] = None

    # ------------------------------------------------------------------
    def probe(self) -> bool:
        """One PING round-trip against the primary's status listener."""
        try:
            conn = connect(
                self.primary_address, timeout=self.probe_timeout
            )
        except (ConnectionError, OSError):
            return False
        try:
            send_frame(conn, proto.PING)
            if not conn.poll(self.probe_timeout):
                return False
            rtype, _ = recv_frame(conn)
            return rtype == proto.PONG
        except (OSError, EOFError, ProtocolError):
            return False
        finally:
            conn.close()

    # ------------------------------------------------------------------
    def elect(self) -> tuple[int, tuple, int]:
        """Pick the freshest reachable standby.

        Returns ``(index, address, watermark_lsn)``.  Standbys that are
        dead or unreachable are skipped (the drill kills at most
        standbys-1, so someone always answers); strict ``>`` keeps the
        lowest index on watermark ties.
        """
        best: Optional[tuple[int, tuple, int]] = None
        for index, address in enumerate(self.standby_addresses):
            try:
                with ReplicaReadClient(
                    address, timeout=self.probe_timeout
                ) as client:
                    status = client.status()
            except (
                ConnectionError,
                OSError,
                EOFError,
                ReplicaError,
                ProtocolError,
            ):
                _LOGGER.warning(
                    "election: standby %d at %s unreachable", index, address
                )
                continue
            watermark = int(status.get("durable_lsn", -1))
            _LOGGER.info(
                "election: standby %d at %s holds lsn %d",
                index,
                address,
                watermark,
            )
            if best is None or watermark > best[2]:
                best = (index, address, watermark)
        if best is None:
            raise WatchdogError(
                "no standby reachable; cannot promote anything"
            )
        return best

    def failover(self) -> dict:
        """Elect and promote; returns the failover report."""
        start = time.perf_counter()
        self.elections += 1
        index, address, watermark = self.elect()
        with ReplicaReadClient(
            address, timeout=self.probe_timeout
        ) as client:
            report = client.promote()
        self.promotion_seconds = time.perf_counter() - start
        self.auto_promotions += 1
        result = {
            "promoted_index": index,
            "promoted_address": list(address),
            "watermark_lsn": int(
                report.get("watermark_lsn", watermark)
            ),
            "records_applied": report.get("records_applied"),
            "detection_seconds": self.detection_seconds,
            "promotion_seconds": self.promotion_seconds,
            "heartbeats_sent": self.heartbeats_sent,
            "heartbeat_misses": self.heartbeat_misses,
        }
        self.result = result
        _LOGGER.warning(
            "auto-promoted standby %d at %s (watermark lsn %d, "
            "detection %.3fs, promotion %.3fs)",
            index,
            address,
            result["watermark_lsn"],
            self.detection_seconds or -1.0,
            self.promotion_seconds,
        )
        return result

    # ------------------------------------------------------------------
    def run(self) -> Optional[dict]:
        """Heartbeat until the primary dies, then fail over.

        Misses only count once the watchdog is *armed* (has seen the
        primary alive at least once), so a slow-booting primary is
        never "detected dead" before it ever lived.  Returns the
        failover report, or None when stopped while the primary was
        still healthy.
        """
        consecutive = 0
        first_miss: Optional[float] = None
        while not self._stop.is_set():
            ok = self.probe()
            self.heartbeats_sent += 1
            now = time.monotonic()
            if ok:
                consecutive = 0
                first_miss = None
                if not self.armed:
                    self.armed = True
                    _LOGGER.info(
                        "armed: primary %s is alive", self.primary_address
                    )
                    if self._on_armed is not None:
                        self._on_armed()
            elif self.armed:
                self.heartbeat_misses += 1
                consecutive += 1
                if first_miss is None:
                    first_miss = now
                if consecutive >= self.misses:
                    self.detection_seconds = now - first_miss
                    _LOGGER.warning(
                        "primary %s dead: %d consecutive misses in %.3fs",
                        self.primary_address,
                        consecutive,
                        self.detection_seconds,
                    )
                    return self.failover()
            self._stop.wait(self.interval)
        return None

    def start(self) -> None:
        """Run the heartbeat loop on a background thread (tests, or an
        in-process watchdog on a *third* machine; production failover
        uses :func:`launch_watchdog`)."""
        if self._thread is not None:
            raise RuntimeError("watchdog already started")
        self._thread = threading.Thread(
            target=self._run_thread, name="repro-watchdog", daemon=True
        )
        self._thread.start()

    def _run_thread(self) -> None:
        try:
            self.run()
        except WatchdogError as exc:  # pragma: no cover - all dead
            _LOGGER.error("failover failed: %s", exc)

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(10.0)
            self._thread = None

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-friendly counters (telemetry / drill report)."""
        return {
            "armed": self.armed,
            "heartbeats_sent": self.heartbeats_sent,
            "heartbeat_misses": self.heartbeat_misses,
            "elections": self.elections,
            "auto_promotions": self.auto_promotions,
            "detection_seconds": self.detection_seconds,
            "promotion_seconds": self.promotion_seconds,
            "promoted_index": (
                None
                if self.result is None
                else self.result.get("promoted_index")
            ),
        }


def format_address(address: tuple) -> str:
    return f"{address[0]}:{address[1]}"


def parse_address(text: str) -> tuple[str, int]:
    """``host:port`` → ``(host, port)`` (the CLI's address syntax)."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address must be host:port, got {text!r}")
    return host, int(port)


def launch_watchdog(
    primary_address: tuple,
    standby_addresses: Sequence[tuple],
    *,
    interval: float = 0.5,
    misses: int = 4,
    probe_timeout: float = 1.0,
    python: Optional[str] = None,
) -> subprocess.Popen:
    """Start a detached ``repro watchdog`` process.

    The child inherits stdout/stderr (its ``ARMED`` and ``PROMOTED``
    lines land in the launcher's stream — the chaos drill reads them
    from there even after the launcher is SIGKILLed) and is *not*
    waited on: it must outlive this process, that is its job.
    """
    import repro

    env = dict(os.environ)
    src_dir = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__))
    )
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else src_dir + os.pathsep + existing
    )
    argv = [
        python or sys.executable,
        "-m",
        "repro.cli",
        "watchdog",
        "--primary",
        format_address(primary_address),
        "--interval",
        str(interval),
        "--misses",
        str(misses),
        "--probe-timeout",
        str(probe_timeout),
    ]
    for address in standby_addresses:
        argv.extend(["--standby", format_address(address)])
    popen = subprocess.Popen(argv, env=env)
    _LOGGER.info(
        "watchdog pid %d armed over primary %s, %d standby(s)",
        popen.pid,
        format_address(primary_address),
        len(standby_addresses),
    )
    return popen
