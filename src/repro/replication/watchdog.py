"""Automated failover: heartbeat the primary, promote the freshest standby.

``docs/replication.md`` used to end with a *manual* promotion runbook —
an operator notices the primary is gone, inspects every standby's
watermark, and calls ``promote()`` on the best one.  This module is
that runbook as code:

* :class:`PrimaryStatusServer` gives the primary a liveness surface:
  a listener answering the worker protocol's ``PING`` and the
  replication protocol's ``STATUS_REQ`` (role, watermarks) without
  touching the ingest hot path;
* :class:`FailoverWatchdog` heartbeats that listener on an interval.
  After ``misses`` consecutive failed probes it declares the primary
  dead, queries every standby's replicated watermark over the same
  STATUS frames standbys already serve, elects the freshest (highest
  ``durable_lsn``; ties break to the lowest index — a deterministic
  rule, so two drills with the same schedule elect the same standby),
  and calls ``PROMOTE`` on it;
* :func:`launch_watchdog` runs that loop in a *detached* ``repro
  watchdog`` process.  Detachment is the point: a watchdog thread
  inside the primary dies with the primary, while an orphaned child
  keeps running after SIGKILL — which is exactly when it is needed.

A single watchdog is a single point of *false* detection: a network
partition between it and the primary looks exactly like primary death.
``Topology.replicated(auto_failover=True, watchdogs=N)`` therefore
launches N watchdogs that vote before promoting: each runs a tiny
:class:`WatchdogPeerServer`, a watchdog that detects death asks its
peers for votes (``WD_VOTE_REQ``), and only a strict majority of the
fleet may promote.  A peer grants a vote only if its *own* probe of
the primary fails too, it has not observed a promotion, and it has not
already voted for another candidate at that epoch.  The winner
promotes with a monotone **fencing epoch** — one above the highest
epoch any standby reported — which the standby persists before
flipping, so a partitioned stale watchdog's late PROMOTE is refused by
construction.  With ``watchdogs=1`` the self-vote is the majority and
behaviour is exactly the old single-watchdog flow.

``Topology.replicated(auto_failover=True)`` wires all three together;
the manual ``promote()`` path remains as the fallback when no watchdog
is armed.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from typing import Callable, Optional, Sequence

from repro.net.transport import SocketListener, connect
from repro.replication import protocol as rp
from repro.replication.client import ReplicaError, ReplicaReadClient
from repro.utils.backoff import Backoff
from repro.utils.logging import get_logger
from repro.utils.rng import derive_seed
from repro.utils.validation import ensure_int, ensure_positive
from repro.workers import protocol as proto
from repro.workers.protocol import ProtocolError, recv_frame, send_frame

_LOGGER = get_logger("replication.watchdog")

#: How long a status connection may sit idle before the server drops it
#: (a watchdog probes and disconnects; anything quieter is dead).
_IDLE_SECONDS = 10.0


class WatchdogError(RuntimeError):
    """The watchdog could not complete a failover."""


class PrimaryStatusServer:
    """The primary's liveness/status listener (one background thread).

    Answers ``PING`` → ``PONG`` and ``STATUS_REQ`` → ``STATUS_RESP``
    with the primary's role and WAL watermarks, read straight off the
    :class:`~repro.durable.manager.DurabilityManager` — no locks shared
    with the ingest path.  Serves one connection at a time: the only
    expected client is a watchdog that dials, probes, and hangs up.
    """

    def __init__(
        self, manager, *, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self._manager = manager
        self._listener = SocketListener(host, port)
        self.address = self._listener.address
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.probes_answered = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("status server already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-primary-status", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._listener.close()
        if self._thread is not None:
            self._thread.join(10.0)
            self._thread = None

    # ------------------------------------------------------------------
    def _status(self) -> dict:
        return {
            "role": "primary",
            "pid": os.getpid(),
            "durable_lsn": self._manager.durable_lsn,
            "last_lsn": self._manager.last_lsn,
        }

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                conn = self._listener.accept(timeout=0.2)
            except TimeoutError:
                continue
            except OSError:
                return  # listener closed under us: shutting down
            try:
                self._serve(conn)
            finally:
                conn.close()

    def _serve(self, conn) -> None:
        idle_since = time.monotonic()
        while not self._stop.is_set():
            try:
                if not conn.poll(0.2):
                    if time.monotonic() - idle_since > _IDLE_SECONDS:
                        return
                    continue
                rtype, _payload = recv_frame(conn)
            except (OSError, EOFError):
                return
            idle_since = time.monotonic()
            try:
                if rtype == proto.PING:
                    send_frame(conn, proto.PONG)
                    self.probes_answered += 1
                elif rtype == rp.STATUS_REQ:
                    send_frame(
                        conn,
                        rp.STATUS_RESP,
                        rp.encode_json(self._status()),
                    )
                elif rtype == proto.SHUTDOWN:
                    return
                else:
                    send_frame(
                        conn,
                        rp.REPL_ERROR,
                        rp.encode_json(
                            {"error": f"unsupported frame type {rtype}"}
                        ),
                    )
            except (OSError, BrokenPipeError):
                return


class WatchdogPeerServer:
    """One watchdog's voting surface (quorum-fenced promotion).

    Answers three frames on its own listener, one connection at a time
    (peers dial, ask, hang up):

    * ``WD_VOTE_REQ`` (JSON ``{"epoch": E, "requester": i}``): grant
      iff this watchdog has not observed a promotion, its *own*
      instantaneous probe of the primary also fails (a peer that can
      still reach the primary refuses — that is the partition defence),
      and no *other* requester holds an unexpired grant.  The grant is
      **single and leased**: one outstanding endorsement at a time, so
      two candidates can never assemble disjoint majorities at
      different epochs; if the grantee dies before promoting, the
      lease expires and the fleet can try again.
    * ``WD_PROMOTED`` (JSON report): a peer announces it promoted;
      recorded so every later vote request is refused and the local
      failover loop stands down.
    * ``PING`` → ``PONG`` (liveness).
    """

    #: How long a granted vote stays exclusive when the grantee never
    #: promotes (it died mid-failover).  Long enough for any real
    #: promotion to complete, short enough that a drill retries fast.
    VOTE_LEASE_SECONDS = 15.0

    def __init__(
        self, watchdog: "FailoverWatchdog", *, host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._watchdog = watchdog
        self._listener = SocketListener(host, port)
        self.address = self._listener.address
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        #: The one outstanding grant: (requester, epoch, granted_at).
        self._grant: Optional[tuple[int, int, float]] = None
        self.votes_granted = 0
        self.votes_denied = 0
        #: Report announced via WD_PROMOTED (or None).
        self.promotion_observed: Optional[dict] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("peer server already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-watchdog-peer", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._listener.close()
        if self._thread is not None:
            self._thread.join(10.0)
            self._thread = None

    # ------------------------------------------------------------------
    def _holder(self, requester: int) -> Optional[int]:
        """The live grantee blocking ``requester``, or None (lock held)."""
        if self._grant is None:
            return None
        holder, _epoch, granted_at = self._grant
        if holder == requester:
            return None  # re-ask / higher epoch: refresh below
        if time.monotonic() - granted_at > self.VOTE_LEASE_SECONDS:
            self._grant = None  # grantee died mid-failover; lease over
            return None
        return holder

    def _vote(self, body: dict) -> dict:
        epoch = int(body.get("epoch", 0))
        requester = int(body.get("requester", -1))
        with self._lock:
            if self.promotion_observed is not None:
                self.votes_denied += 1
                return {
                    "granted": False,
                    "reason": "promotion already observed",
                    "promoted": True,
                }
            holder = self._holder(requester)
            if holder is not None:
                self.votes_denied += 1
                return {
                    "granted": False,
                    "reason": f"vote leased to watchdog {holder}",
                    "promoted": False,
                }
        # Probe outside the lock: the primary may take probe_timeout
        # to answer, and a PING must never queue behind it.
        if self._watchdog.probe():
            with self._lock:
                self.votes_denied += 1
            return {
                "granted": False,
                "reason": "primary is alive from here",
                "promoted": False,
            }
        with self._lock:
            if self.promotion_observed is not None:
                self.votes_denied += 1
                return {
                    "granted": False,
                    "reason": "promotion already observed",
                    "promoted": True,
                }
            holder = self._holder(requester)
            if holder is not None:
                self.votes_denied += 1
                return {
                    "granted": False,
                    "reason": f"vote leased to watchdog {holder}",
                    "promoted": False,
                }
            self._grant = (requester, epoch, time.monotonic())
            self.votes_granted += 1
        return {"granted": True, "reason": "ok", "promoted": False}

    def observe_promotion(self, report: dict) -> None:
        with self._lock:
            if self.promotion_observed is None:
                self.promotion_observed = dict(report)

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                conn = self._listener.accept(timeout=0.2)
            except TimeoutError:
                continue
            except OSError:
                return  # listener closed under us: shutting down
            try:
                self._serve(conn)
            finally:
                conn.close()

    def _serve(self, conn) -> None:
        idle_since = time.monotonic()
        while not self._stop.is_set():
            try:
                if not conn.poll(0.2):
                    if time.monotonic() - idle_since > _IDLE_SECONDS:
                        return
                    continue
                rtype, payload = recv_frame(conn)
            except (OSError, EOFError):
                return
            idle_since = time.monotonic()
            try:
                if rtype == rp.WD_VOTE_REQ:
                    verdict = self._vote(rp.decode_json(payload))
                    send_frame(
                        conn, rp.WD_VOTE_RESP, rp.encode_json(verdict)
                    )
                elif rtype == rp.WD_PROMOTED:
                    self.observe_promotion(rp.decode_json(payload))
                    send_frame(conn, proto.PONG)
                elif rtype == proto.PING:
                    send_frame(conn, proto.PONG)
                elif rtype == proto.SHUTDOWN:
                    return
                else:
                    send_frame(
                        conn,
                        rp.REPL_ERROR,
                        rp.encode_json(
                            {"error": f"unsupported frame type {rtype}"}
                        ),
                    )
            except (OSError, BrokenPipeError):
                return


class FailoverWatchdog:
    """Detect primary death and promote the freshest standby.

    Parameters
    ----------
    primary_address:
        The primary's :class:`PrimaryStatusServer` ``(host, port)``.
    standby_addresses:
        Every standby listener, in launch order (index order is the
        election tie-break).
    interval:
        Seconds between heartbeats.
    misses:
        Consecutive failed probes before the primary is declared dead.
    probe_timeout:
        Dial + response budget of a single probe (and of each election
        status query).
    on_armed:
        Called once, after the first successful probe — the hook the
        CLI uses to print ``ARMED`` so a drill knows the watchdog is
        live before it starts killing things.
    index:
        This watchdog's identity within the fleet (0-based; also the
        jitter seed of its retry backoff, which breaks vote symmetry).
    peers:
        The *other* watchdogs' :class:`WatchdogPeerServer` addresses.
        Non-empty peers (or ``peer_port``) switch on quorum voting:
        this watchdog starts its own peer server and only promotes
        with a strict majority of ``len(peers) + 1`` votes.
    peer_port:
        Port for this watchdog's own peer server (0 picks a free one;
        the fleet launcher pre-allocates ports so every member knows
        the others up front).
    election_attempts:
        Consecutive empty elections (zero reachable standbys) tolerated
        — each retried under the jittered backoff, never a tight loop —
        before the failover is abandoned with :class:`WatchdogError`.
    """

    def __init__(
        self,
        primary_address: tuple,
        standby_addresses: Sequence[tuple],
        *,
        interval: float = 0.5,
        misses: int = 4,
        probe_timeout: float = 1.0,
        on_armed: Optional[Callable[[], None]] = None,
        index: int = 0,
        peers: Sequence[tuple] = (),
        peer_port: Optional[int] = None,
        election_attempts: int = 6,
    ) -> None:
        if not standby_addresses:
            raise ValueError("watchdog needs at least one standby address")
        ensure_positive(interval, "interval")
        ensure_int(misses, "misses", minimum=1)
        ensure_positive(probe_timeout, "probe_timeout")
        ensure_int(index, "index", minimum=0)
        ensure_int(election_attempts, "election_attempts", minimum=1)
        self.primary_address = tuple(primary_address)
        self.standby_addresses = [tuple(a) for a in standby_addresses]
        self.interval = float(interval)
        self.misses = int(misses)
        self.probe_timeout = float(probe_timeout)
        self._on_armed = on_armed
        self.index = int(index)
        self.peers = [tuple(a) for a in peers]
        self.election_attempts = int(election_attempts)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.armed = False
        self.heartbeats_sent = 0
        self.heartbeat_misses = 0
        self.elections = 0
        self.failed_elections = 0
        self.quorum_denied = 0
        self.promotions_refused = 0
        self.auto_promotions = 0
        self.detection_seconds: Optional[float] = None
        self.promotion_seconds: Optional[float] = None
        self.result: Optional[dict] = None
        #: Last per-standby reachability, for state-change-only logging.
        self._standby_reachable: dict[int, bool] = {}
        #: Highest fencing epoch any standby reported in the last scan.
        self._max_epoch_seen = 0
        #: Set by elect() when a standby already reports promoted=True.
        self._promoted_standby: Optional[dict] = None
        self.peer_server: Optional[WatchdogPeerServer] = None
        if self.peers or peer_port is not None:
            self.peer_server = WatchdogPeerServer(
                self, port=peer_port or 0
            )
            self.peer_server.start()

    # ------------------------------------------------------------------
    def probe(self) -> bool:
        """One PING round-trip against the primary's status listener."""
        try:
            conn = connect(
                self.primary_address, timeout=self.probe_timeout
            )
        except (ConnectionError, OSError):
            return False
        try:
            send_frame(conn, proto.PING)
            if not conn.poll(self.probe_timeout):
                return False
            rtype, _ = recv_frame(conn)
            return rtype == proto.PONG
        except (OSError, EOFError, ProtocolError):
            return False
        finally:
            conn.close()

    # ------------------------------------------------------------------
    def elect(self) -> tuple[int, tuple, int]:
        """Pick the freshest reachable standby.

        Returns ``(index, address, watermark_lsn)``.  Standbys that are
        dead or unreachable are skipped; strict ``>`` keeps the lowest
        index on watermark ties.  Reachability is logged once per
        *state change* (unreachable↔reachable), not per probe — an
        election retry loop must not flood the log.  Side effects: the
        highest ``fencing_epoch`` seen lands in ``_max_epoch_seen``,
        and a standby already reporting ``promoted=True`` lands in
        ``_promoted_standby`` (someone else won; the caller stands
        down).
        """
        best: Optional[tuple[int, tuple, int]] = None
        for index, address in enumerate(self.standby_addresses):
            try:
                with ReplicaReadClient(
                    address, timeout=self.probe_timeout
                ) as client:
                    status = client.status()
            except (
                ConnectionError,
                OSError,
                EOFError,
                ReplicaError,
                ProtocolError,
            ):
                if self._standby_reachable.get(index, True):
                    _LOGGER.warning(
                        "election: standby %d at %s unreachable",
                        index,
                        address,
                    )
                self._standby_reachable[index] = False
                continue
            watermark = int(status.get("durable_lsn", -1))
            self._max_epoch_seen = max(
                self._max_epoch_seen,
                int(status.get("fencing_epoch", 0) or 0),
            )
            if status.get("promoted"):
                self._promoted_standby = {
                    "promoted_index": index,
                    "promoted_address": list(address),
                    "watermark_lsn": watermark,
                }
            if not self._standby_reachable.get(index, False):
                _LOGGER.info(
                    "election: standby %d at %s holds lsn %d",
                    index,
                    address,
                    watermark,
                )
            self._standby_reachable[index] = True
            if best is None or watermark > best[2]:
                best = (index, address, watermark)
        if best is None:
            raise WatchdogError(
                "no standby reachable; cannot promote anything"
            )
        return best

    # ------------------------------------------------------------------
    @property
    def fleet_size(self) -> int:
        """Voters in the fleet (peers plus this watchdog)."""
        return len(self.peers) + 1

    def _gather_votes(self, epoch: int, candidate: int) -> int:
        """Ask every peer to endorse promoting at ``epoch``.

        Returns granted votes including the self-vote.  An unreachable
        peer is simply a vote not granted — a partitioned minority can
        never reach a majority, which is the whole point.  A peer that
        answers "promotion already observed" feeds
        :attr:`peer_server.promotion_observed` so the caller stands
        down.
        """
        granted = 1  # self-vote: this watchdog detected the death
        body = rp.encode_json(
            {"epoch": epoch, "candidate": candidate,
             "requester": self.index}
        )
        for address in self.peers:
            try:
                conn = connect(address, timeout=self.probe_timeout)
            except (ConnectionError, OSError):
                continue
            try:
                send_frame(conn, rp.WD_VOTE_REQ, body)
                if not conn.poll(self.probe_timeout):
                    continue
                rtype, payload = recv_frame(conn)
                if rtype != rp.WD_VOTE_RESP:
                    continue
                verdict = rp.decode_json(payload)
            except (OSError, EOFError, ProtocolError):
                continue
            finally:
                conn.close()
            if verdict.get("granted"):
                granted += 1
            elif verdict.get("promoted") and self.peer_server is not None:
                self.peer_server.observe_promotion(
                    {"reason": "peer observed a promotion"}
                )
        return granted

    def _announce_promotion(self, result: dict) -> None:
        """Broadcast the completed failover (best effort).

        Peers record it and stand down; every *other* standby persists
        the winning fencing epoch (``WD_PROMOTED`` advances a standby's
        fence without promoting it), so a partitioned watchdog's late
        PROMOTE at the same or a lower epoch is refused fleet-wide,
        not just on the promoted standby.
        """
        if self.peer_server is not None:
            self.peer_server.observe_promotion(result)
        body = rp.encode_json(result)
        targets = list(self.peers) + [
            tuple(a)
            for a in self.standby_addresses
            if list(a) != list(result.get("promoted_address", ()))
        ]
        for address in targets:
            try:
                conn = connect(address, timeout=self.probe_timeout)
            except (ConnectionError, OSError):
                continue
            try:
                send_frame(conn, rp.WD_PROMOTED, body)
                conn.poll(self.probe_timeout)
            except (OSError, EOFError):
                pass
            finally:
                conn.close()

    def _observed_promotion(self) -> Optional[dict]:
        if self.peer_server is None:
            return None
        return self.peer_server.promotion_observed

    def _stand_down(self, observed: dict) -> dict:
        result = dict(observed)
        result["observed"] = True
        result.setdefault("promoted_index", None)
        self.result = result
        _LOGGER.warning(
            "standing down: a peer watchdog already promoted (%s)",
            observed,
        )
        return result

    def failover(self) -> dict:
        """Elect, gather a quorum, and promote with a fencing epoch.

        Returns the failover report.  With peers configured, the
        promotion only proceeds on a strict majority of the fleet; a
        denied quorum retries under the jittered backoff (re-checking
        for a peer's completed promotion each round).  The report of a
        promotion done *elsewhere* carries ``observed: True``.
        """
        start = time.perf_counter()
        backoff = Backoff(
            base=0.05,
            cap=1.0,
            random_state=derive_seed(0, "watchdog.failover", self.index),
        )
        empty_elections = 0
        while not self._stop.is_set():
            observed = self._observed_promotion()
            if observed is not None:
                return self._stand_down(observed)
            self.elections += 1
            try:
                index, address, watermark = self.elect()
            except WatchdogError:
                self.failed_elections += 1
                empty_elections += 1
                if empty_elections >= self.election_attempts:
                    raise
                self._stop.wait(backoff.next())
                continue
            empty_elections = 0
            if self._promoted_standby is not None:
                return self._stand_down(self._promoted_standby)
            epoch = self._max_epoch_seen + 1
            if self.peers:
                granted = self._gather_votes(epoch, index)
                if granted * 2 <= self.fleet_size:
                    self.quorum_denied += 1
                    _LOGGER.warning(
                        "quorum denied: %d/%d vote(s) at epoch %d",
                        granted,
                        self.fleet_size,
                        epoch,
                    )
                    observed = self._observed_promotion()
                    if observed is not None:
                        return self._stand_down(observed)
                    self._stop.wait(backoff.next())
                    continue
            try:
                with ReplicaReadClient(
                    address, timeout=self.probe_timeout
                ) as client:
                    report = client.promote(epoch=epoch)
            except ReplicaError as exc:
                # Lost the race: another watchdog fenced a higher (or
                # this) epoch first, or the standby refused.  Re-elect;
                # the next scan observes the winner's promoted=True.
                self.promotions_refused += 1
                _LOGGER.warning(
                    "promotion at epoch %d refused by standby %d: %s",
                    epoch,
                    index,
                    exc,
                )
                self._stop.wait(backoff.next())
                continue
            except (ConnectionError, OSError, EOFError, ProtocolError):
                self._stop.wait(backoff.next())
                continue
            self.promotion_seconds = time.perf_counter() - start
            self.auto_promotions += 1
            result = {
                "promoted_index": index,
                "promoted_address": list(address),
                "watermark_lsn": int(
                    report.get("watermark_lsn", watermark)
                ),
                "records_applied": report.get("records_applied"),
                "fencing_epoch": int(
                    report.get("fencing_epoch", epoch)
                ),
                "detection_seconds": self.detection_seconds,
                "promotion_seconds": self.promotion_seconds,
                "heartbeats_sent": self.heartbeats_sent,
                "heartbeat_misses": self.heartbeat_misses,
                "watchdog_index": self.index,
            }
            self.result = result
            self._announce_promotion(result)
            _LOGGER.warning(
                "auto-promoted standby %d at %s (watermark lsn %d, "
                "epoch %d, detection %.3fs, promotion %.3fs)",
                index,
                address,
                result["watermark_lsn"],
                result["fencing_epoch"],
                self.detection_seconds or -1.0,
                self.promotion_seconds,
            )
            return result
        raise WatchdogError("stopped before the failover completed")

    # ------------------------------------------------------------------
    def run(self) -> Optional[dict]:
        """Heartbeat until the primary dies, then fail over.

        Misses only count once the watchdog is *armed* (has seen the
        primary alive at least once), so a slow-booting primary is
        never "detected dead" before it ever lived.  Returns the
        failover report, or None when stopped while the primary was
        still healthy.
        """
        consecutive = 0
        first_miss: Optional[float] = None
        while not self._stop.is_set():
            ok = self.probe()
            self.heartbeats_sent += 1
            now = time.monotonic()
            if ok:
                consecutive = 0
                first_miss = None
                if not self.armed:
                    self.armed = True
                    _LOGGER.info(
                        "armed: primary %s is alive", self.primary_address
                    )
                    if self._on_armed is not None:
                        self._on_armed()
            elif self.armed:
                self.heartbeat_misses += 1
                consecutive += 1
                if first_miss is None:
                    first_miss = now
                if consecutive >= self.misses:
                    self.detection_seconds = now - first_miss
                    _LOGGER.warning(
                        "primary %s dead: %d consecutive misses in %.3fs",
                        self.primary_address,
                        consecutive,
                        self.detection_seconds,
                    )
                    return self.failover()
            self._stop.wait(self.interval)
        return None

    def start(self) -> None:
        """Run the heartbeat loop on a background thread (tests, or an
        in-process watchdog on a *third* machine; production failover
        uses :func:`launch_watchdog`)."""
        if self._thread is not None:
            raise RuntimeError("watchdog already started")
        self._thread = threading.Thread(
            target=self._run_thread, name="repro-watchdog", daemon=True
        )
        self._thread.start()

    def _run_thread(self) -> None:
        try:
            self.run()
        except WatchdogError as exc:  # pragma: no cover - all dead
            _LOGGER.error("failover failed: %s", exc)

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(10.0)
            self._thread = None
        if self.peer_server is not None:
            self.peer_server.stop()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-friendly counters (telemetry / drill report)."""
        peer = self.peer_server
        return {
            "armed": self.armed,
            "index": self.index,
            "fleet_size": self.fleet_size,
            "heartbeats_sent": self.heartbeats_sent,
            "heartbeat_misses": self.heartbeat_misses,
            "elections": self.elections,
            "failed_elections": self.failed_elections,
            "quorum_denied": self.quorum_denied,
            "promotions_refused": self.promotions_refused,
            "auto_promotions": self.auto_promotions,
            "votes_granted": 0 if peer is None else peer.votes_granted,
            "votes_denied": 0 if peer is None else peer.votes_denied,
            "detection_seconds": self.detection_seconds,
            "promotion_seconds": self.promotion_seconds,
            "promoted_index": (
                None
                if self.result is None
                else self.result.get("promoted_index")
            ),
        }


def format_address(address: tuple) -> str:
    return f"{address[0]}:{address[1]}"


def parse_address(text: str) -> tuple[str, int]:
    """``host:port`` → ``(host, port)`` (the CLI's address syntax)."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address must be host:port, got {text!r}")
    return host, int(port)


def allocate_peer_ports(count: int, *, host: str = "127.0.0.1") -> list[int]:
    """Reserve ``count`` free ports for a watchdog fleet's peer servers.

    Every fleet member must know the others' peer addresses *before*
    any of them starts, so the launcher binds ephemeral listeners,
    reads the assigned ports, and releases them.  The tiny window
    before the watchdogs re-bind is racy in theory; in practice the
    kernel does not recycle just-released ephemeral ports that fast.
    """
    import socket

    sockets = []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.bind((host, 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


def launch_watchdog(
    primary_address: tuple,
    standby_addresses: Sequence[tuple],
    *,
    interval: float = 0.5,
    misses: int = 4,
    probe_timeout: float = 1.0,
    index: int = 0,
    peer_port: Optional[int] = None,
    peers: Sequence[tuple] = (),
    chaos_seed: Optional[int] = None,
    chaos_rates: Optional[dict] = None,
    python: Optional[str] = None,
) -> subprocess.Popen:
    """Start a detached ``repro watchdog`` process.

    The child inherits stdout/stderr (its ``ARMED`` and ``PROMOTED``
    lines land in the launcher's stream — the chaos drill reads them
    from there even after the launcher is SIGKILLed) and is *not*
    waited on: it must outlive this process, that is its job.

    ``index``/``peer_port``/``peers`` configure quorum voting (see
    :class:`WatchdogPeerServer`); ``chaos_seed``/``chaos_rates``
    install a :class:`~repro.chaos.plan.FaultPlan` inside the child —
    how a drill partitions one fleet member without touching the rest.
    """
    import repro

    env = dict(os.environ)
    src_dir = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__))
    )
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else src_dir + os.pathsep + existing
    )
    argv = [
        python or sys.executable,
        "-m",
        "repro.cli",
        "watchdog",
        "--primary",
        format_address(primary_address),
        "--interval",
        str(interval),
        "--misses",
        str(misses),
        "--probe-timeout",
        str(probe_timeout),
        "--index",
        str(index),
    ]
    for address in standby_addresses:
        argv.extend(["--standby", format_address(address)])
    if peer_port is not None:
        argv.extend(["--peer-port", str(peer_port)])
    for address in peers:
        argv.extend(["--peer", format_address(address)])
    if chaos_seed is not None:
        argv.extend(["--chaos-seed", str(chaos_seed)])
        for point, rate in sorted((chaos_rates or {}).items()):
            argv.extend(["--chaos-rate", f"{point}={rate}"])
    popen = subprocess.Popen(argv, env=env)
    _LOGGER.info(
        "watchdog %d pid %d armed over primary %s, %d standby(s), "
        "%d peer(s)",
        index,
        popen.pid,
        format_address(primary_address),
        len(standby_addresses),
        len(peers),
    )
    return popen
