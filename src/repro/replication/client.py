"""Client side of a standby's read/control surface.

:class:`ReplicaReadClient` speaks to one
:class:`~repro.replication.standby.StandbyServer` over the shared
framed transport and exposes the replica read path the ROADMAP promises
— ``TruthSnapshot`` reads that never touch the primary's ingest hot
path — plus the operational verbs (status, promote) the promotion
runbook in ``docs/replication.md`` uses.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.net.transport import connect
from repro.replication import protocol as rp
from repro.service.snapshot import TruthSnapshot
from repro.workers import protocol as proto
from repro.workers.protocol import recv_frame, send_frame


class ReplicaError(RuntimeError):
    """The standby refused or failed a request."""


class ReplicaReadClient:
    """One connection to a standby (thread-safe, request/response).

    Parameters
    ----------
    address:
        The standby listener's ``(host, port)``.
    timeout:
        Dial budget (the standby may still be starting up).
    """

    def __init__(self, address, *, timeout: float = 30.0) -> None:
        self._address = tuple(address)
        self._conn = connect(self._address, timeout=timeout)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _call(self, rtype: int, payload: bytes, expected: int):
        with self._lock:
            send_frame(self._conn, rtype, payload)
            resp_type, resp = recv_frame(self._conn)
        if resp_type == rp.REPL_ERROR:
            raise ReplicaError(
                rp.decode_json(resp).get("error", "standby error")
            )
        if resp_type != expected:
            raise ReplicaError(
                f"expected frame {expected}, got {resp_type}"
            )
        return resp

    def snapshot(self, campaign_id: str) -> TruthSnapshot:
        """A fresh :class:`TruthSnapshot` served off the replica."""
        resp = self._call(
            rp.READ_REQ,
            rp.encode_json({"campaign_id": campaign_id}),
            rp.READ_RESP,
        )
        state = proto.unpack_state(resp)
        weights = {
            user: float(value)
            for user, value in zip(
                state["weight_users"], state["weight_values"]
            )
        }
        return TruthSnapshot(
            campaign_id=state["campaign_id"],
            object_ids=tuple(state["object_ids"]),
            truths=np.asarray(state["truths"], dtype=float),
            seen_objects=np.asarray(state["seen_objects"], dtype=bool),
            weights_by_user=weights,
            claims_ingested=int(state["claims_ingested"]),
            batches_ingested=int(state["batches_ingested"]),
            pending_claims=int(state["pending_claims"]),
        )

    def status(self) -> dict:
        """Watermarks, campaign list, spent-budget ledger."""
        resp = self._call(rp.STATUS_REQ, b"", rp.STATUS_RESP)
        return rp.decode_json(resp)

    def promote(self) -> dict:
        """Ask the standby to become primary; returns its report."""
        resp = self._call(rp.PROMOTE_REQ, b"", rp.PROMOTE_RESP)
        return rp.decode_json(resp)

    def ping(self) -> bool:
        try:
            self._call(proto.PING, b"", proto.PONG)
            return True
        except (OSError, EOFError, ReplicaError):
            return False

    def shutdown(self) -> None:
        """Tell the standby process to exit cleanly."""
        with self._lock:
            send_frame(self._conn, proto.SHUTDOWN)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ReplicaReadClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
