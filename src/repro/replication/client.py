"""Client side of a standby's read/control surface.

:class:`ReplicaReadClient` speaks to one
:class:`~repro.replication.standby.StandbyServer` over the shared
framed transport and exposes the replica read path the ROADMAP promises
— ``TruthSnapshot`` reads that never touch the primary's ingest hot
path — plus the operational verbs (status, promote) the promotion
runbook in ``docs/replication.md`` uses.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.net.transport import connect
from repro.replication import protocol as rp
from repro.service.snapshot import TruthSnapshot
from repro.workers import protocol as proto
from repro.workers.protocol import recv_frame, send_frame


class ReplicaError(RuntimeError):
    """The standby refused or failed a request."""


class ReplicaReadClient:
    """One connection to a standby (thread-safe, request/response).

    Parameters
    ----------
    address:
        The standby listener's ``(host, port)``.
    timeout:
        Dial budget (the standby may still be starting up).
    """

    def __init__(self, address, *, timeout: float = 30.0) -> None:
        self._address = tuple(address)
        self._conn = connect(self._address, timeout=timeout)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _call(self, rtype: int, payload: bytes, expected: int):
        with self._lock:
            send_frame(self._conn, rtype, payload)
            resp_type, resp = recv_frame(self._conn)
        if resp_type == rp.REPL_ERROR:
            raise ReplicaError(
                rp.decode_json(resp).get("error", "standby error")
            )
        if resp_type != expected:
            raise ReplicaError(
                f"expected frame {expected}, got {resp_type}"
            )
        return resp

    def snapshot(self, campaign_id: str) -> TruthSnapshot:
        """A fresh :class:`TruthSnapshot` served off the replica."""
        resp = self._call(
            rp.READ_REQ,
            rp.encode_json({"campaign_id": campaign_id}),
            rp.READ_RESP,
        )
        state = proto.unpack_state(resp)
        weights = {
            user: float(value)
            for user, value in zip(
                state["weight_users"], state["weight_values"]
            )
        }
        return TruthSnapshot(
            campaign_id=state["campaign_id"],
            object_ids=tuple(state["object_ids"]),
            truths=np.asarray(state["truths"], dtype=float),
            seen_objects=np.asarray(state["seen_objects"], dtype=bool),
            weights_by_user=weights,
            claims_ingested=int(state["claims_ingested"]),
            batches_ingested=int(state["batches_ingested"]),
            pending_claims=int(state["pending_claims"]),
        )

    def status(self) -> dict:
        """Watermarks, campaign list, spent-budget ledger."""
        resp = self._call(rp.STATUS_REQ, b"", rp.STATUS_RESP)
        return rp.decode_json(resp)

    def promote(self, *, epoch=None) -> dict:
        """Ask the standby to become primary; returns its report.

        ``epoch`` carries the caller's fencing epoch; the standby
        refuses (``ReplicaError``) anything at or below the highest
        epoch it ever accepted.  ``None`` means a manual promotion that
        fences at the standby's next epoch.
        """
        payload = b"" if epoch is None else rp.encode_json(
            {"epoch": int(epoch)}
        )
        resp = self._call(rp.PROMOTE_REQ, payload, rp.PROMOTE_RESP)
        return rp.decode_json(resp)

    def ping(self) -> bool:
        try:
            self._call(proto.PING, b"", proto.PONG)
            return True
        except (OSError, EOFError, ReplicaError):
            return False

    def shutdown(self) -> None:
        """Tell the standby process to exit cleanly."""
        with self._lock:
            send_frame(self._conn, proto.SHUTDOWN)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ReplicaReadClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class FailoverReadClient:
    """Replica reads that survive standby deaths and promotions.

    Holds the full standby address list and one live
    :class:`ReplicaReadClient` at a time.  When the current standby
    stops answering — it died, or a chaos drill reset the stream — the
    client *re-points*: it drops the connection, advances to the next
    address that dials, and retries the request once per address.  After
    an automatic promotion the promoted standby keeps serving the same
    listener, so a reader rides through a failover with at most one
    re-point and no address changes.

    Parameters
    ----------
    addresses:
        Every standby listener, in launch order.
    timeout:
        Dial budget per re-point attempt.
    """

    def __init__(self, addresses, *, timeout: float = 10.0) -> None:
        if not addresses:
            raise ValueError("need at least one standby address")
        self._addresses = [tuple(a) for a in addresses]
        self._timeout = timeout
        self._lock = threading.Lock()
        self._client: "ReplicaReadClient | None" = None
        self._index = 0
        self.repoints = 0

    # ------------------------------------------------------------------
    @property
    def current_address(self) -> tuple:
        """Where the next request will go."""
        return self._addresses[self._index % len(self._addresses)]

    def _drop(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None
        self._index += 1
        self.repoints += 1

    def _invoke(self, method: str, *args):
        # One attempt per address, starting from the current one; a
        # ReplicaError (the standby answered, and refused) propagates —
        # only transport failures re-point.
        last: Exception | None = None
        with self._lock:
            for _ in range(len(self._addresses)):
                if self._client is None:
                    address = self._addresses[
                        self._index % len(self._addresses)
                    ]
                    try:
                        self._client = ReplicaReadClient(
                            address, timeout=self._timeout
                        )
                    except (ConnectionError, OSError) as exc:
                        last = exc
                        self._drop()
                        continue
                try:
                    return getattr(self._client, method)(*args)
                except (OSError, EOFError, ConnectionError) as exc:
                    last = exc
                    self._drop()
        raise ReplicaError(f"no standby reachable: {last}")

    # ------------------------------------------------------------------
    def snapshot(self, campaign_id: str) -> TruthSnapshot:
        return self._invoke("snapshot", campaign_id)

    def status(self) -> dict:
        return self._invoke("status")

    def ping(self) -> bool:
        try:
            return bool(self._invoke("ping"))
        except ReplicaError:
            return False

    def close(self) -> None:
        with self._lock:
            if self._client is not None:
                self._client.close()
                self._client = None

    def __enter__(self) -> "FailoverReadClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
