"""Launching and owning standby processes from the primary side.

:func:`launch_standby` starts ``repro standby`` with the same launch
contract as ``repro serve-shard`` (the child prints ``PORT <n>`` once
its listener is bound); :class:`StandbyPool` owns N of them plus the
:class:`~repro.replication.sender.ReplicationSender` shipping to them —
the backing of ``Topology.replicated(standbys=n)``.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.net.fabric import HostProcess, _read_port
from repro.replication.client import ReplicaReadClient
from repro.utils.logging import get_logger

_LOGGER = get_logger("replication.pool")


def standby_directory(primary_dir: Union[str, Path], index: int) -> Path:
    """Default on-disk home of standby ``index``: ``<dir>.standby<i>``."""
    primary_dir = Path(primary_dir)
    return primary_dir.with_name(f"{primary_dir.name}.standby{index}")


def launch_standby(
    directory: Union[str, Path],
    *,
    host: str = "127.0.0.1",
    fsync: str = "batch",
    start_timeout: float = 120.0,
    python: Optional[str] = None,
) -> tuple[HostProcess, int]:
    """Start ``repro standby`` and learn its ephemeral port."""
    import repro

    env = dict(os.environ)
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__
    )))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else src_dir + os.pathsep + existing
    )
    popen = subprocess.Popen(
        [
            python or sys.executable,
            "-m",
            "repro.cli",
            "standby",
            "--dir",
            str(directory),
            "--host",
            host,
            "--port",
            "0",
            "--fsync",
            fsync,
        ],
        stdout=subprocess.PIPE,
        env=env,
    )
    try:
        port = _read_port(popen, start_timeout)
    except BaseException:
        popen.kill()
        popen.wait()
        if popen.stdout is not None:
            popen.stdout.close()
        raise
    _LOGGER.debug(
        "standby up: dir %s, pid %d, port %d", directory, popen.pid, port
    )
    return HostProcess(popen), port


class StandbyHandle:
    """One launched standby: its process, address, and control client."""

    def __init__(
        self, index: int, directory: Path, process: HostProcess, port: int
    ) -> None:
        self.index = index
        self.directory = directory
        self.process = process
        self.address = ("127.0.0.1", port)

    def client(self, *, timeout: float = 30.0) -> ReplicaReadClient:
        return ReplicaReadClient(self.address, timeout=timeout)

    def is_alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        """SIGKILL this standby — the chaos drill's process fault.

        No flush, no goodbye: the standby's own WAL generation plus
        the ack-after-fsync contract are what make this survivable
        (a restarted standby resumes from its durable cursor).
        """
        _LOGGER.warning(
            "chaos: SIGKILL standby %d (pid %d)",
            self.index,
            self.process.pid,
        )
        self.process.kill()
        self.process.join(5.0)


class StandbyPool:
    """N standby processes replicating one primary directory.

    Parameters
    ----------
    count:
        Standbys to launch.
    primary_dir:
        The primary's durability directory (standby directories default
        to ``<primary_dir>.standby<i>``).
    directories:
        Explicit standby directories overriding the default naming.
    fsync:
        Commit policy of each standby's own WAL generation.
    """

    def __init__(
        self,
        count: int,
        primary_dir: Union[str, Path],
        *,
        directories: Optional[Sequence[Union[str, Path]]] = None,
        fsync: str = "batch",
        start_timeout: float = 120.0,
    ) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if directories is not None and len(directories) != count:
            raise ValueError(
                f"{len(directories)} directories for {count} standbys"
            )
        dirs = (
            [Path(d) for d in directories]
            if directories is not None
            else [standby_directory(primary_dir, i) for i in range(count)]
        )
        self.handles: list[StandbyHandle] = []
        try:
            for index, directory in enumerate(dirs):
                process, port = launch_standby(
                    directory,
                    fsync=fsync,
                    start_timeout=start_timeout,
                )
                self.handles.append(
                    StandbyHandle(index, directory, process, port)
                )
        except BaseException:
            self.close()
            raise
        self._closed = False

    @property
    def addresses(self) -> list[tuple]:
        return [handle.address for handle in self.handles]

    def check(self) -> None:
        """Raise if any standby process died."""
        for handle in self.handles:
            if not handle.is_alive():
                raise RuntimeError(
                    f"standby {handle.index} (pid {handle.process.pid}) "
                    f"exited with code {handle.process.exitcode}"
                )

    def close(self, *, timeout: float = 10.0) -> None:
        """Shut every standby down cleanly (idempotent)."""
        if getattr(self, "_closed", False):
            return
        self._closed = True
        for handle in self.handles:
            if handle.is_alive():
                try:
                    with handle.client(timeout=2.0) as client:
                        client.shutdown()
                except (OSError, EOFError, TimeoutError):
                    pass
        for handle in self.handles:
            handle.process.join(timeout)
            if handle.is_alive():
                handle.process.terminate()
                handle.process.join(2.0)
            if handle.is_alive():  # pragma: no cover - last resort
                handle.process.kill()
                handle.process.join(2.0)
            handle.process.release()
