"""The primary side of WAL-shipping replication.

A :class:`ReplicationSender` attaches to a live
:class:`~repro.durable.manager.DurabilityManager` and ships every
committed group to N standbys.  The durable-ack watermark
(:attr:`~repro.durable.wal.WriteAheadLog.durable_lsn`) is the
replication cursor on both ends:

* the sender never ships past the primary's watermark — a standby can
  only ever hold records the primary has committed, so a promoted
  standby equals the crashed primary *at the replicated watermark*;
* each standby acks with its *own* durable watermark after persisting
  the group to its own WAL generation, so reconnects resume from
  exactly what survived on the standby's disk.

One shipping thread per standby (a :class:`_StandbyLink`) wakes on the
WAL's post-fsync commit hook, drains the committed suffix through an
incremental :class:`~repro.durable.stream.WalTailReader`, and ships it
in bounded groups.  A link that reconnects (or whose cursor fell below
the primary's compaction floor) resynchronises: records still on disk
are re-read from the cursor; records compaction dropped are covered by
shipping the newest checkpoint first.

Sync modes:

* ``"async"`` — ingest never waits; standbys trail by whatever the
  network allows (the ``replication_lag_*`` gauges say how much);
* ``"semi-sync"`` — the service's pump blocks (via
  :meth:`ReplicationSender.after_group_commit`) until at least one
  standby has acked the pump's last LSN, bounding data loss on primary
  death to zero *acknowledged* records.  A standby outage degrades to
  async after ``ack_timeout`` (counted, logged) rather than stalling
  ingest forever.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Optional, Sequence

from repro.durable import checkpoint as ckpt_codec
from repro.durable.stream import TailGapError, WalTailReader
from repro.net.transport import connect
from repro.replication import protocol as rp
from repro.utils.backoff import Backoff
from repro.utils.logging import get_logger
from repro.utils.rng import derive_seed
from repro.workers.protocol import recv_frame, send_frame

_LOGGER = get_logger("replication.sender")

SYNC_MODES = ("async", "semi-sync")

#: Soft cap on one RECORDS group's payload bytes; large committed
#: suffixes are shipped as several groups so acks (and semi-sync
#: progress) flow during catch-up.
MAX_GROUP_BYTES = 4 * 1024 * 1024


class ReplicationError(RuntimeError):
    """Replication stream failure the caller must act on."""


class _StandbyLink:
    """One standby's shipping thread and its cursor bookkeeping."""

    def __init__(self, sender: "ReplicationSender", index: int, address):
        self.sender = sender
        self.index = index
        self.address = tuple(address)
        self.ack_lsn = 0
        self.connected = False
        self.reconnects = 0
        self.records_shipped = 0
        self.bytes_shipped = 0
        self.groups_shipped = 0
        self.checkpoints_shipped = 0
        self.ack_timeouts = 0
        #: Wall seconds from group send to standby ack, newest last.
        self.ship_latencies: deque = deque(maxlen=4096)
        self.last_error: Optional[str] = None
        # The shared reconnect schedule: capped exponential backoff
        # with jitter seeded per link, so two links never redial on
        # the same beat yet a chaos drill replays both timelines.
        self._backoff = Backoff(
            base=0.05,
            cap=2.0,
            random_state=derive_seed(0, "repl-link", index, *self.address),
        )
        self._thread = threading.Thread(
            target=self._run,
            name=f"repl-sender-{index}",
            daemon=True,
        )

    def start(self) -> None:
        self._thread.start()

    def join(self, timeout: Optional[float] = None) -> None:
        self._thread.join(timeout)

    # ------------------------------------------------------------------
    def _run(self) -> None:
        sender = self.sender
        while not sender.stopped:
            conn = None
            try:
                conn = connect(
                    self.address, timeout=sender.connect_timeout
                )
                self.connected = True
                self._backoff.reset()
                self._stream(conn)
            except Exception as exc:
                if sender.stopped:
                    break
                self.last_error = str(exc)
                self.reconnects += 1
                _LOGGER.warning(
                    "standby %d link lost (%s); reconnecting",
                    self.index,
                    exc,
                )
                sender.wait_or_stop(self._backoff.next())
            finally:
                self.connected = False
                if conn is not None:
                    conn.close()

    def _handshake(self, conn) -> int:
        send_frame(
            conn,
            rp.HELLO,
            rp.encode_json(
                {
                    "format": rp.REPLICATION_FORMAT,
                    "directory": str(self.sender.wal.directory),
                }
            ),
        )
        rtype, payload = recv_frame(conn)
        if rtype == rp.REPL_ERROR:
            raise ReplicationError(
                rp.decode_json(payload).get("error", "standby error")
            )
        if rtype != rp.CURSOR:
            raise ReplicationError(
                f"expected CURSOR after HELLO, got frame {rtype}"
            )
        return rp.decode_lsn(payload)

    def _stream(self, conn) -> None:
        sender = self.sender
        cursor = self._handshake(conn)
        with sender.ack_cv:
            self.ack_lsn = max(self.ack_lsn, cursor)
            sender.ack_cv.notify_all()
        reader = WalTailReader(sender.wal.directory, after_lsn=cursor)
        while not sender.stopped:
            durable = sender.wal.durable_lsn
            try:
                records = reader.poll(durable)
            except TailGapError:
                # The suffix above the cursor was compacted away; a
                # checkpoint covers the dropped prefix.
                reader = self._resync(conn, reader.next_lsn - 1)
                continue
            if records:
                self._ship(conn, records)
                continue
            sender.wait_for_commit(reader.next_lsn)

    def _resync(self, conn, cursor: int) -> WalTailReader:
        """Cursor fell below the retained log: ship a covering
        checkpoint, then resume tailing above it."""
        sender = self.sender
        checkpoint = sender.checkpoints.load_latest()
        if checkpoint is None or checkpoint.lsn <= cursor:
            raise ReplicationError(
                f"standby {self.index} cursor {cursor} predates the "
                f"retained log and no covering checkpoint exists"
            )
        blob = ckpt_codec.pack_payload(checkpoint.payload)
        send_frame(
            conn,
            rp.CHECKPOINT,
            rp.encode_checkpoint(checkpoint.lsn, blob),
        )
        ack = self._await_ack(conn)
        if ack != checkpoint.lsn:
            raise ReplicationError(
                f"standby acked lsn {ack} for a checkpoint at "
                f"{checkpoint.lsn}"
            )
        self.checkpoints_shipped += 1
        with sender.ack_cv:
            self.ack_lsn = max(self.ack_lsn, ack)
            sender.ack_cv.notify_all()
        _LOGGER.info(
            "standby %d resynced from checkpoint at lsn %d",
            self.index,
            checkpoint.lsn,
        )
        return WalTailReader(
            sender.wal.directory, after_lsn=checkpoint.lsn
        )

    def _ship(self, conn, records) -> None:
        sender = self.sender
        for group in _bounded_groups(records):
            payload = rp.encode_records(group)
            start = time.perf_counter()
            send_frame(conn, rp.RECORDS, payload)
            ack = self._await_ack(conn)
            self.ship_latencies.append(time.perf_counter() - start)
            self.records_shipped += len(group)
            self.bytes_shipped += len(payload)
            self.groups_shipped += 1
            with sender.ack_cv:
                self.ack_lsn = max(self.ack_lsn, ack)
                sender.ack_cv.notify_all()

    def _await_ack(self, conn) -> int:
        rtype, payload = recv_frame(conn)
        if rtype == rp.REPL_ERROR:
            raise ReplicationError(
                rp.decode_json(payload).get("error", "standby error")
            )
        if rtype != rp.ACK:
            raise ReplicationError(f"expected ACK, got frame {rtype}")
        return rp.decode_lsn(payload)


def _bounded_groups(records):
    """Split a record run into groups of at most MAX_GROUP_BYTES."""
    group: list = []
    size = 0
    for record in records:
        record_bytes = len(record.payload) + rp._REC_HEADER.size
        if group and size + record_bytes > MAX_GROUP_BYTES:
            yield group
            group = []
            size = 0
        group.append(record)
        size += record_bytes
    if group:
        yield group


class ReplicationSender:
    """Ships a primary's WAL to N standbys; owns one link per standby.

    Parameters
    ----------
    addresses:
        ``(host, port)`` of each standby's replication listener.
    sync:
        ``"async"`` or ``"semi-sync"`` (see the module docstring).
    ack_timeout:
        Semi-sync back-pressure bound: how long one pump may wait for a
        standby ack before degrading to async for that group.
    connect_timeout:
        Dial/redial budget per connection attempt.
    """

    def __init__(
        self,
        addresses: Sequence,
        *,
        sync: str = "async",
        ack_timeout: float = 30.0,
        connect_timeout: float = 30.0,
    ) -> None:
        if sync not in SYNC_MODES:
            raise ValueError(
                f"sync must be one of {SYNC_MODES}, got {sync!r}"
            )
        if not addresses:
            raise ValueError("replication needs at least one standby")
        self.sync_mode = sync
        self.ack_timeout = float(ack_timeout)
        self.connect_timeout = float(connect_timeout)
        self.links = [
            _StandbyLink(self, i, addr) for i, addr in enumerate(addresses)
        ]
        self.ack_cv = threading.Condition()
        self.semi_sync_timeouts = 0
        self._commit_cv = threading.Condition()
        self._committed_lsn = 0
        #: (lsn, monotonic time) of recent group commits, for the
        #: time-based lag gauge.
        self._commit_times: deque = deque(maxlen=4096)
        self._stopped = False
        self._manager = None
        self._listener = None

    # ------------------------------------------------------------------
    @property
    def stopped(self) -> bool:
        return self._stopped

    @property
    def wal(self):
        return self._manager.wal

    @property
    def checkpoints(self):
        return self._manager.checkpoints

    def attach(self, manager) -> None:
        """Hook the manager's WAL commit path and start shipping."""
        if self._manager is not None:
            raise ReplicationError("sender is already attached")
        self._manager = manager
        self._listener = self._on_commit
        manager.wal.add_commit_listener(self._listener)
        with self._commit_cv:
            self._committed_lsn = manager.wal.durable_lsn
        for link in self.links:
            link.start()

    def _on_commit(self, durable_lsn: int) -> None:
        # Runs on the WAL's committing thread: record the time for the
        # lag gauge and wake every shipping thread.
        with self._commit_cv:
            self._committed_lsn = durable_lsn
            self._commit_times.append((durable_lsn, time.monotonic()))
            self._commit_cv.notify_all()

    def wait_for_commit(self, next_lsn: int) -> None:
        """Park a link thread until a commit reaches ``next_lsn``."""
        with self._commit_cv:
            if self._committed_lsn >= next_lsn or self._stopped:
                return
            self._commit_cv.wait(0.2)

    def wait_or_stop(self, seconds: float) -> None:
        with self._commit_cv:
            if not self._stopped:
                self._commit_cv.wait(seconds)

    # ------------------------------------------------------------------
    def wait_replicated(
        self, lsn: int, *, timeout: Optional[float] = None
    ) -> bool:
        """Block until at least one standby has acked ``lsn``."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self.ack_cv:
            while not any(link.ack_lsn >= lsn for link in self.links):
                if self._stopped:
                    return False
                if deadline is None:
                    self.ack_cv.wait(0.5)
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    self.ack_cv.wait(min(remaining, 0.5))
            return True

    def after_group_commit(self, lsn: int) -> None:
        """Pump hook: semi-sync back-pressure on the ack watermark."""
        if self.sync_mode != "semi-sync" or lsn <= 0:
            return
        if not self.wait_replicated(lsn, timeout=self.ack_timeout):
            self.semi_sync_timeouts += 1
            _LOGGER.warning(
                "semi-sync ack for lsn %d timed out after %.1fs; "
                "degrading this group to async",
                lsn,
                self.ack_timeout,
            )

    # ------------------------------------------------------------------
    def lag_lsn(self, link: _StandbyLink) -> int:
        """How many committed records the standby has not acked."""
        durable = 0 if self._manager is None else self.wal.durable_lsn
        return max(0, durable - link.ack_lsn)

    def lag_seconds(self, link: _StandbyLink) -> float:
        """Age of the oldest committed-but-unacked group (0 if none)."""
        if self.lag_lsn(link) == 0:
            return 0.0
        now = time.monotonic()
        with self._commit_cv:
            for lsn, committed_at in self._commit_times:
                if lsn > link.ack_lsn:
                    return max(0.0, now - committed_at)
        return 0.0

    def min_ack_lsn(self) -> int:
        return min((link.ack_lsn for link in self.links), default=0)

    def stats(self) -> dict:
        """JSON-friendly shipping counters (bench / telemetry)."""
        return {
            "sync_mode": self.sync_mode,
            "semi_sync_timeouts": self.semi_sync_timeouts,
            "standbys": [
                {
                    "index": link.index,
                    "address": list(link.address),
                    "connected": link.connected,
                    "ack_lsn": link.ack_lsn,
                    "lag_lsn": self.lag_lsn(link),
                    "lag_seconds": self.lag_seconds(link),
                    "records_shipped": link.records_shipped,
                    "bytes_shipped": link.bytes_shipped,
                    "groups_shipped": link.groups_shipped,
                    "checkpoints_shipped": link.checkpoints_shipped,
                    "reconnects": link.reconnects,
                }
                for link in self.links
            ],
        }

    def close(self) -> None:
        """Stop shipping threads and unhook the WAL (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        with self._commit_cv:
            self._commit_cv.notify_all()
        with self.ack_cv:
            self.ack_cv.notify_all()
        for link in self.links:
            link.join(timeout=5.0)
        if self._manager is not None and self._listener is not None:
            self._manager.wal.remove_commit_listener(self._listener)
