"""WAL-shipping replication: warm standbys, read replicas, promotion.

The primary's :class:`~repro.durable.wal.WriteAheadLog` is the
replicated object: a :class:`ReplicationSender` ships every committed
group (post-fsync, cursored by the durable-ack watermark) to N
:class:`StandbyServer` processes over the shared
:mod:`repro.net` framing.  Each standby persists the stream into its
own WAL generation — acking only after its own fsync — and continuously
replays it into live aggregators, so :class:`ReplicaReadClient` reads
are instant and :meth:`StandbyServer.promote` yields a primary whose
truths are bitwise-equal to the crashed one at the replicated
watermark, with spent privacy budget staying spent.

Promotion can be automatic: :class:`FailoverWatchdog` (see
:mod:`repro.replication.watchdog`) heartbeats the primary's
:class:`PrimaryStatusServer`, detects its death, elects the standby
with the highest replicated watermark, and promotes it — the detached
process behind ``Topology.replicated(auto_failover=True)``.
:class:`FailoverReadClient` keeps replica readers working across
standby deaths and promotions.

Construction normally goes through
``Topology.replicated(standbys=n)`` (see :mod:`repro.service.topology`);
the pieces here are the public surface for custom deployments.
"""

from repro.replication.client import (
    FailoverReadClient,
    ReplicaError,
    ReplicaReadClient,
)
from repro.replication.pool import (
    StandbyHandle,
    StandbyPool,
    launch_standby,
    standby_directory,
)
from repro.replication.protocol import REPLICATION_FORMAT
from repro.replication.sender import (
    SYNC_MODES,
    ReplicationError,
    ReplicationSender,
)
from repro.replication.standby import (
    StandbyError,
    StandbyServer,
    serve_standby,
)
from repro.replication.watchdog import (
    FailoverWatchdog,
    PrimaryStatusServer,
    WatchdogError,
    launch_watchdog,
)

__all__ = [
    "REPLICATION_FORMAT",
    "SYNC_MODES",
    "FailoverReadClient",
    "FailoverWatchdog",
    "PrimaryStatusServer",
    "ReplicaError",
    "ReplicaReadClient",
    "ReplicationError",
    "ReplicationSender",
    "StandbyError",
    "StandbyHandle",
    "StandbyPool",
    "StandbyServer",
    "WatchdogError",
    "launch_watchdog",
    "serve_standby",
    "standby_directory",
]
