"""Wire protocol of the WAL-shipping replication stream.

Replication reuses the shared frame format (u32 length | u8 type |
payload, see :mod:`repro.net.framing`) with its own disjoint type
range: durable record types own 1..31, worker control frames own
32..49, replication frames start at 50.

Stream shape (sender = primary, dialing; standby = listening):

1. sender → ``HELLO`` (JSON: format version, primary identity);
2. standby → ``CURSOR`` (u64: its durable-ack watermark — the LSN of
   the last record it holds on its own disk);
3. sender → ``RECORDS`` groups (each a batch of committed WAL records
   above the cursor), answered one-for-one by standby → ``ACK`` (u64:
   the standby's new durable watermark).  The ack is sent only after
   the standby's *own* WAL has committed the group, which is what makes
   the cursor crash-safe on both ends;
4. when the cursor predates the primary's compaction floor the suffix
   no longer exists; the sender ships a covering ``CHECKPOINT`` (u64
   LSN + packed checkpoint payload) first and resumes ``RECORDS``
   above it.

Read-side clients (:class:`~repro.replication.client.ReplicaReadClient`)
use ``READ_REQ``/``READ_RESP`` (truth snapshots), ``STATUS_REQ``/
``STATUS_RESP`` (watermarks, campaigns, spent budget) and
``PROMOTE_REQ``/``PROMOTE_RESP`` on the same listener.  A
``PROMOTE_REQ`` may carry a JSON body with a monotone fencing
``epoch``; the standby persists the highest epoch it has accepted and
refuses anything stale, which is what makes a partitioned watchdog's
late promote harmless.  Watchdogs vote among themselves with
``WD_VOTE_REQ``/``WD_VOTE_RESP`` and announce success with
``WD_PROMOTED``.  Liveness and shutdown reuse the worker protocol's
``PING``/``PONG``/``SHUTDOWN``.
"""

from __future__ import annotations

import json
import struct

from repro.durable.records import WalRecord
from repro.workers.protocol import ProtocolError

#: Protocol format version carried in HELLO.
REPLICATION_FORMAT = 1

# Frame types (50..69 reserved for replication).
HELLO = 50
CURSOR = 51
RECORDS = 52
ACK = 53
CHECKPOINT = 54
READ_REQ = 55
READ_RESP = 56
STATUS_REQ = 57
STATUS_RESP = 58
PROMOTE_REQ = 59
PROMOTE_RESP = 60
REPL_ERROR = 61
#: Watchdog peer protocol (quorum-fenced promotion): a watchdog asks
#: its peers for votes before promoting, and announces a completed
#: promotion so stragglers stand down.
WD_VOTE_REQ = 62
WD_VOTE_RESP = 63
WD_PROMOTED = 64

_LSN = struct.Struct("<Q")
_COUNT = struct.Struct("<I")
#: Per-record header inside a RECORDS group: type, LSN, payload length.
_REC_HEADER = struct.Struct("<BQI")


def encode_json(body: dict) -> bytes:
    return json.dumps(body, sort_keys=True).encode("utf-8")


def decode_json(payload: bytes) -> dict:
    try:
        body = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed JSON payload: {exc}") from exc
    if not isinstance(body, dict):
        raise ProtocolError("JSON payload must be an object")
    return body


def encode_lsn(lsn: int) -> bytes:
    if lsn < 0:
        raise ProtocolError(f"lsn must be >= 0, got {lsn}")
    return _LSN.pack(lsn)


def decode_lsn(payload: bytes) -> int:
    if len(payload) != _LSN.size:
        raise ProtocolError(
            f"lsn payload must be {_LSN.size} bytes, got {len(payload)}"
        )
    return _LSN.unpack(payload)[0]


def encode_records(records: list[WalRecord]) -> bytes:
    """One RECORDS group: count, then (type | LSN | length | payload)*."""
    parts = [_COUNT.pack(len(records))]
    for record in records:
        payload = bytes(record.payload)
        parts.append(
            _REC_HEADER.pack(record.rtype, record.lsn, len(payload))
        )
        parts.append(payload)
    return b"".join(parts)


def decode_records(payload: bytes) -> list[WalRecord]:
    """Inverse of :func:`encode_records`; validates framing exactly."""
    if len(payload) < _COUNT.size:
        raise ProtocolError("RECORDS group too short for its count")
    (count,) = _COUNT.unpack_from(payload, 0)
    offset = _COUNT.size
    records: list[WalRecord] = []
    for _ in range(count):
        if offset + _REC_HEADER.size > len(payload):
            raise ProtocolError("RECORDS group truncated mid-header")
        rtype, lsn, length = _REC_HEADER.unpack_from(payload, offset)
        offset += _REC_HEADER.size
        if offset + length > len(payload):
            raise ProtocolError("RECORDS group truncated mid-payload")
        records.append(
            WalRecord(
                lsn=lsn,
                rtype=rtype,
                payload=payload[offset:offset + length],
            )
        )
        offset += length
    if offset != len(payload):
        raise ProtocolError(
            f"RECORDS group has {len(payload) - offset} trailing byte(s)"
        )
    return records


def encode_checkpoint(lsn: int, blob: bytes) -> bytes:
    """A CHECKPOINT frame: covered LSN + packed checkpoint payload."""
    return encode_lsn(lsn) + blob


def decode_checkpoint(payload: bytes) -> tuple[int, bytes]:
    if len(payload) < _LSN.size:
        raise ProtocolError("CHECKPOINT payload too short")
    return _LSN.unpack_from(payload, 0)[0], payload[_LSN.size:]
