"""A warm standby: persists the replication stream, serves reads,
promotes on demand.

A :class:`StandbyServer` owns its *own* WAL generation of the primary's
log: every shipped record is appended with its primary LSN (the stream
is contiguous, so the standby's frames are byte-identical to the
primary's), group-committed, **acked only after its own fsync**, and
then replayed into a live :class:`~repro.service.ingest.IngestService`
through the same :class:`~repro.durable.recovery.RecordApplier` crash
recovery uses.  That ordering — append, commit, ack, apply — makes the
standby's directory independently recoverable and its in-memory truths
a pure function of the acked record sequence, which is what the
promotion bitwise-equality invariant rests on.

Because the aggregators are live, reads are instant: the same listener
answers snapshot (``READ_REQ``), status (``STATUS_REQ``) and promotion
(``PROMOTE_REQ``) requests from
:class:`~repro.replication.client.ReplicaReadClient` peers while the
stream flows.  :meth:`StandbyServer.promote` turns the standby into a
fully-functional primary: the replication WAL handle is closed and a
fresh :class:`~repro.durable.manager.DurabilityManager` (continuing
LSNs after the replicated watermark) is attached via the shared
:func:`~repro.durable.recovery.attach_resumed_durability` path — spent
budget stays spent because every charge was logged at admission and
replayed on arrival.

Run one with ``repro standby --dir DIR``; the process announces
``PORT <n>`` on stdout exactly like ``repro serve-shard``.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Optional, Union

from repro.durable import checkpoint as ckpt_codec
from repro.durable import records as rec
from repro.durable.checkpoint import CheckpointStore
from repro.durable.recovery import (
    RecordApplier,
    RecoveryManager,
    attach_resumed_durability,
)
from repro.durable.wal import FSYNC_POLICIES, WriteAheadLog, list_segments
from repro.net.transport import SocketListener
from repro.replication import protocol as rp
from repro.utils.logging import get_logger
from repro.workers import protocol as proto
from repro.workers.protocol import recv_frame, send_frame

_LOGGER = get_logger("replication.standby")


class StandbyError(RuntimeError):
    """The standby cannot serve or promote."""


class StandbyServer:
    """One warm standby process (or in-process thread, for tests).

    Parameters
    ----------
    directory:
        The standby's own durability directory.  If it already holds a
        replicated prefix (a restarted standby), it is recovered first
        and the replication cursor resumes after it.
    host / port:
        Listener bind address (port 0 picks a free one).
    fsync:
        Commit policy of the standby's WAL generation.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        fsync: str = "batch",
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        self._dir = Path(directory)
        self._host = host
        self._requested_port = port
        self._fsync = fsync
        self.port: Optional[int] = None
        self._listener: Optional[SocketListener] = None
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._serve_thread: Optional[threading.Thread] = None
        # One lock orders append/apply/read/promote: the stream applies
        # under it, reads snapshot under it, promote flips under it.
        self._apply_lock = threading.RLock()
        self._service = None
        self._applier: Optional[RecordApplier] = None
        self._wal: Optional[WriteAheadLog] = None
        self._promoted = False
        self._durability = None
        self.records_applied = 0
        self.groups_applied = 0
        self._fencing_epoch = 0
        self._bootstrap()

    # ------------------------------------------------------------------
    @property
    def fencing_epoch(self) -> int:
        """Highest promotion epoch this standby has accepted (durable)."""
        return self._fencing_epoch

    def _fence_path(self) -> Path:
        return self._dir / "FENCE"

    def _load_fencing_epoch(self) -> int:
        try:
            return int(self._fence_path().read_text("utf-8").strip())
        except (FileNotFoundError, ValueError):
            return 0

    def _persist_fencing_epoch(self, epoch: int) -> None:
        """Durably record an accepted epoch *before* acting on it.

        Write-fsync-rename so a crash leaves either the old fence or
        the new one, never a torn file — the refusal of stale PROMOTEs
        must survive a standby restart.
        """
        import os

        tmp = self._fence_path().with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(f"{epoch}\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._fence_path())
        self._fencing_epoch = epoch

    # ------------------------------------------------------------------
    def _bootstrap(self) -> None:
        """Recover any replicated prefix already on this disk."""
        self._dir.mkdir(parents=True, exist_ok=True)
        self._fencing_epoch = self._load_fencing_epoch()
        has_history = bool(list_segments(self._dir)) or (
            CheckpointStore(self._dir).load_latest() is not None
        )
        start_lsn = 1
        if has_history:
            recovered = RecoveryManager(self._dir).recover()
            self._service = recovered.service
            self._applier = RecordApplier(
                self._service, specs=recovered.specs
            )
            start_lsn = recovered.report.last_lsn + 1
        self._wal = WriteAheadLog(
            self._dir, fsync=self._fsync, start_lsn=start_lsn
        )

    @property
    def durable_lsn(self) -> int:
        return self._wal.durable_lsn if self._wal is not None else 0

    @property
    def promoted(self) -> bool:
        return self._promoted

    @property
    def service(self):
        """The live replica service (None until a CONFIG arrives)."""
        return self._service

    @property
    def durability(self):
        """The promoted primary's manager (None before promotion)."""
        return self._durability

    # ------------------------------------------------------------------
    def serve(self, announce=None) -> None:
        """Bind, announce, and serve until :meth:`stop` (blocking)."""
        self._listener = SocketListener(self._host, self._requested_port)
        self.port = self._listener.port
        if announce is not None:
            announce(self.port)
        try:
            while not self._stop.is_set():
                try:
                    conn = self._listener.accept(timeout=0.2)
                except TimeoutError:
                    continue
                except OSError:
                    break
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(conn,),
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
        finally:
            self._listener.close()

    def start(self) -> int:
        """Serve on a background thread; returns the bound port."""
        ready = threading.Event()

        def _announce(_port):
            ready.set()

        self._serve_thread = threading.Thread(
            target=self.serve,
            kwargs={"announce": _announce},
            name="standby-serve",
            daemon=True,
        )
        self._serve_thread.start()
        if not ready.wait(timeout=30.0):
            raise StandbyError("standby listener failed to bind")
        return self.port

    def request_stop(self) -> None:
        """Ask the serve loop to exit (signal-handler safe).

        Only flips the stop flag; the serving thread notices within
        its accept timeout and the caller's :meth:`stop` then does the
        real teardown — joining connection threads and closing the
        standby's WAL, which fsyncs the replication cursor so a
        restart resumes exactly where this process stopped.
        """
        self._stop.set()

    def stop(self) -> None:
        """Stop serving and close the standby's WAL (idempotent)."""
        self._stop.set()
        if self._listener is not None:
            self._listener.close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None
        for thread in self._threads:
            thread.join(timeout=1.0)
        self._threads.clear()
        with self._apply_lock:
            if self._wal is not None and not self._promoted:
                self._wal.close()
                self._wal = None

    # ------------------------------------------------------------------
    def _serve_connection(self, conn) -> None:
        try:
            while not self._stop.is_set():
                try:
                    rtype, payload = recv_frame(conn)
                except (EOFError, OSError):
                    break
                if not self._dispatch(conn, rtype, payload):
                    break
        except Exception as exc:  # pragma: no cover - defensive
            _LOGGER.exception("standby connection failed")
            try:
                send_frame(
                    conn,
                    rp.REPL_ERROR,
                    rp.encode_json({"error": str(exc)}),
                )
            except OSError:
                pass
        finally:
            conn.close()

    def _dispatch(self, conn, rtype: int, payload: bytes) -> bool:
        """Handle one frame; returns False to end the connection."""
        if rtype == rp.HELLO:
            return self._on_hello(conn, payload)
        if rtype == rp.RECORDS:
            return self._on_records(conn, payload)
        if rtype == rp.CHECKPOINT:
            return self._on_checkpoint(conn, payload)
        if rtype == rp.READ_REQ:
            return self._on_read(conn, payload)
        if rtype == rp.STATUS_REQ:
            send_frame(
                conn, rp.STATUS_RESP, rp.encode_json(self.status())
            )
            return True
        if rtype == rp.PROMOTE_REQ:
            return self._on_promote(conn, payload)
        if rtype == rp.WD_PROMOTED:
            return self._on_fence_advance(conn, payload)
        if rtype == proto.PING:
            send_frame(conn, proto.PONG)
            return True
        if rtype == proto.SHUTDOWN:
            self._stop.set()
            return False
        send_frame(
            conn,
            rp.REPL_ERROR,
            rp.encode_json({"error": f"unexpected frame type {rtype}"}),
        )
        return False

    # ------------------------------------------------------------------
    def _on_hello(self, conn, payload: bytes) -> bool:
        body = rp.decode_json(payload)
        if body.get("format") != rp.REPLICATION_FORMAT:
            send_frame(
                conn,
                rp.REPL_ERROR,
                rp.encode_json(
                    {
                        "error": (
                            f"replication format mismatch: standby "
                            f"speaks {rp.REPLICATION_FORMAT}"
                        )
                    }
                ),
            )
            return False
        if self._promoted:
            send_frame(
                conn,
                rp.REPL_ERROR,
                rp.encode_json(
                    {"error": "standby was promoted; not accepting a stream"}
                ),
            )
            return False
        send_frame(conn, rp.CURSOR, rp.encode_lsn(self._wal.durable_lsn))
        return True

    def _on_records(self, conn, payload: bytes) -> bool:
        records = rp.decode_records(payload)
        with self._apply_lock:
            if self._promoted or self._wal is None:
                send_frame(
                    conn,
                    rp.REPL_ERROR,
                    rp.encode_json({"error": "standby no longer replicates"}),
                )
                return False
            fresh = []
            for record in records:
                if record.lsn <= self._wal.last_lsn:
                    # Duplicate after a reconnect: already durable here.
                    continue
                if record.lsn != self._wal.next_lsn:
                    send_frame(
                        conn,
                        rp.REPL_ERROR,
                        rp.encode_json(
                            {
                                "error": (
                                    f"stream gap: expected lsn "
                                    f"{self._wal.next_lsn}, got "
                                    f"{record.lsn}"
                                )
                            }
                        ),
                    )
                    return False
                self._wal.append(record.rtype, record.payload)
                fresh.append(record)
            # Durable before acked: the sender's cursor must never run
            # ahead of what this disk can replay after a crash.
            self._wal.sync()
            send_frame(
                conn, rp.ACK, rp.encode_lsn(self._wal.durable_lsn)
            )
            for record in fresh:
                self._apply(record)
            if fresh:
                self.groups_applied += 1
        return True

    def _apply(self, record) -> None:
        if record.rtype == rec.CONFIG:
            if self._service is None:
                self._service, self._applier = _service_from_config(
                    record.decode()
                )
            self.records_applied += 1
            return
        if self._applier is None:
            raise StandbyError(
                f"record type {record.rtype} arrived before CONFIG"
            )
        self._applier.apply(record)
        self.records_applied += 1

    def _on_checkpoint(self, conn, payload: bytes) -> bool:
        """Full resync: the primary's retained log no longer reaches
        back to our cursor, so adopt a covering checkpoint instead."""
        lsn, blob = rp.decode_checkpoint(payload)
        checkpoint_payload = ckpt_codec.unpack_payload(blob)
        with self._apply_lock:
            if self._promoted:
                send_frame(
                    conn,
                    rp.REPL_ERROR,
                    rp.encode_json({"error": "standby no longer replicates"}),
                )
                return False
            if self._wal is not None:
                self._wal.close()
            # The checkpoint supersedes everything replicated so far:
            # restart this generation from a clean directory.
            import shutil

            shutil.rmtree(self._dir)
            self._dir.mkdir(parents=True, exist_ok=True)
            if self._fencing_epoch:
                # The fence outlives the replicated generation: a
                # resync must not reopen the door to stale PROMOTEs.
                self._persist_fencing_epoch(self._fencing_epoch)
            CheckpointStore(self._dir).save(lsn, checkpoint_payload)
            recovered = RecoveryManager(self._dir).recover()
            self._service = recovered.service
            self._applier = RecordApplier(
                self._service, specs=recovered.specs
            )
            self._wal = WriteAheadLog(
                self._dir, fsync=self._fsync, start_lsn=lsn + 1
            )
            send_frame(conn, rp.ACK, rp.encode_lsn(lsn))
        return True

    # ------------------------------------------------------------------
    def _on_read(self, conn, payload: bytes) -> bool:
        body = rp.decode_json(payload)
        campaign_id = body.get("campaign_id")
        with self._apply_lock:
            if self._service is None or not self._service.has_campaign(
                campaign_id
            ):
                send_frame(
                    conn,
                    rp.REPL_ERROR,
                    rp.encode_json(
                        {"error": f"unknown campaign {campaign_id!r}"}
                    ),
                )
                return True
            snapshot = self._service.snapshot(campaign_id)
        users = sorted(snapshot.weights_by_user)
        send_frame(
            conn,
            rp.READ_RESP,
            proto.pack_state(
                {
                    "campaign_id": snapshot.campaign_id,
                    "object_ids": list(snapshot.object_ids),
                    "truths": snapshot.truths,
                    "seen_objects": snapshot.seen_objects,
                    "weight_users": users,
                    "weight_values": [
                        snapshot.weights_by_user[u] for u in users
                    ],
                    "claims_ingested": snapshot.claims_ingested,
                    "batches_ingested": snapshot.batches_ingested,
                    "pending_claims": snapshot.pending_claims,
                }
            ),
        )
        return True

    def status(self) -> dict:
        """Watermarks, campaigns, and the spent-budget ledger."""
        with self._apply_lock:
            service = self._service
            ledger = None
            if service is not None and service.ledger is not None:
                ledger = {
                    "epsilon_cap": service.ledger.epsilon_cap,
                    "delta_cap": service.ledger.delta_cap,
                    "records": service.ledger.to_records(),
                }
            return {
                "directory": str(self._dir),
                "durable_lsn": self.durable_lsn,
                "records_applied": self.records_applied,
                "groups_applied": self.groups_applied,
                "promoted": self._promoted,
                "campaigns": (
                    [] if service is None else service.campaign_ids
                ),
                "ledger": ledger,
                "fencing_epoch": self._fencing_epoch,
            }

    def _on_fence_advance(self, conn, payload: bytes) -> bool:
        """A watchdog announced a promotion done *elsewhere*: adopt the
        winning fencing epoch without promoting, so a stale watchdog's
        late PROMOTE is refused on this standby too."""
        body = rp.decode_json(payload)
        epoch = int(body.get("fencing_epoch", 0) or 0)
        with self._apply_lock:
            if epoch > self._fencing_epoch:
                self._persist_fencing_epoch(epoch)
                _LOGGER.info(
                    "fence advanced to epoch %d (promotion elsewhere)",
                    epoch,
                )
        send_frame(conn, proto.PONG)
        return True

    def _on_promote(self, conn, payload: bytes) -> bool:
        epoch = None
        if payload:
            body = rp.decode_json(payload)
            if "epoch" in body and body["epoch"] is not None:
                epoch = int(body["epoch"])
        try:
            report = self.promote(epoch=epoch)
        except StandbyError as exc:
            send_frame(
                conn, rp.REPL_ERROR, rp.encode_json({"error": str(exc)})
            )
            return True
        send_frame(conn, rp.PROMOTE_RESP, rp.encode_json(report))
        return True

    def promote(self, *, epoch: Optional[int] = None) -> dict:
        """Become a fully-functional primary at the replicated watermark.

        The replication WAL handle closes, a fresh
        :class:`~repro.durable.manager.DurabilityManager` continues
        LSNs after the last replicated record, shadow counters are
        seeded from the live campaign state, and a post-promotion
        checkpoint is written — the exact resume path crash recovery
        uses, without re-reading the log.  Subsequent replication
        streams are refused; reads keep working.  Returns a small
        report dict.

        ``epoch`` is the caller's monotone fencing epoch.  The fence is
        checked *first* and persisted before any state flips: an epoch
        at or below the highest ever accepted here is refused, which is
        what makes a partitioned watchdog's late PROMOTE harmless.  A
        ``None`` epoch (manual ``repro promote``) fences at the next
        epoch automatically.
        """
        start = time.perf_counter()
        with self._apply_lock:
            if epoch is not None and epoch <= self._fencing_epoch:
                raise StandbyError(
                    f"stale fencing epoch {epoch}: this standby already "
                    f"accepted epoch {self._fencing_epoch}"
                )
            if self._promoted:
                raise StandbyError("standby is already promoted")
            if self._service is None or self._applier is None:
                raise StandbyError(
                    "nothing replicated yet; no service to promote"
                )
            self._persist_fencing_epoch(
                self._fencing_epoch + 1 if epoch is None else epoch
            )
            watermark = self._wal.durable_lsn
            self._wal.close()
            self._wal = None
            self._durability = attach_resumed_durability(
                self._service,
                self._applier.specs,
                watermark,
                self._dir,
            )
            self._promoted = True
        report = {
            "watermark_lsn": watermark,
            "records_applied": self.records_applied,
            "campaigns": self._service.campaign_ids,
            "fencing_epoch": self._fencing_epoch,
            "seconds": time.perf_counter() - start,
        }
        _LOGGER.info(
            "promoted standby %s at lsn %d (%d campaign(s))",
            self._dir,
            watermark,
            len(report["campaigns"]),
        )
        return report


def _service_from_config(body: dict):
    """Build the replica service+applier from a CONFIG record body."""
    from repro.service.ingest import IngestService, ServiceConfig
    from repro.service.ledger import BudgetLedger

    config = ServiceConfig(**body["service_config"])
    caps = body.get("ledger")
    ledger = None
    if caps is not None:
        ledger = BudgetLedger(
            caps["epsilon_cap"], delta_cap=caps["delta_cap"]
        )
    service = IngestService(config, ledger=ledger)
    return service, RecordApplier(service)


def serve_standby(
    directory: Union[str, Path],
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    fsync: str = "batch",
    announce=None,
) -> None:
    """Blocking entry point behind ``repro standby``.

    SIGTERM (the supervisor's polite stop, e.g. ``StandbyPool.close``
    or an operator's ``kill``) exits gracefully: the serve loop winds
    down and the standby's WAL is flushed and closed, fsyncing the
    replication cursor so the next start resumes from it.  Only
    installed when running on the main thread (tests drive
    :class:`StandbyServer` directly from worker threads).
    """
    import signal

    server = StandbyServer(directory, host=host, port=port, fsync=fsync)
    previous = None
    installed = False
    if threading.current_thread() is threading.main_thread():
        try:
            previous = signal.signal(
                signal.SIGTERM,
                lambda signum, frame: server.request_stop(),
            )
            installed = True
        except ValueError:  # pragma: no cover - exotic embedding
            pass
    try:
        server.serve(announce=announce)
    finally:
        server.stop()
        if installed:
            signal.signal(signal.SIGTERM, previous)
