"""Command-line interface: ``repro-experiments`` / ``python -m repro``.

Subcommands
-----------
* ``list`` — show available experiments;
* ``run NAME [--profile quick|full] [--seed N] [--markdown]`` — run one
  experiment and print its tables/charts;
* ``all [--profile ...]`` — run every experiment in sequence;
* ``service-bench [--claims N] [--shards N] [--method crh|gtm|catd]
  [--workers N] [--hosts N] [--output PATH]`` — benchmark the
  high-throughput claim-ingestion service against the per-message
  server baseline, plus the per-method streaming-vs-full-refit
  read-latency comparison; ``--hosts N`` adds socket-fabric runs with
  a bitwise check and a kill-one-host failover measurement;
* ``serve-shard [--host H] [--port N] [--worker-id I]`` — run one
  shard host: the worker frame protocol served on a TCP port (the
  multi-node fabric's unit of deployment; ``--port 0`` binds an
  ephemeral port and prints ``PORT <n>`` for the parent to read);
* ``standby --dir DIR [--host H] [--port N] [--fsync POLICY]`` — run
  one warm standby: receive a primary's WAL stream into ``DIR``
  (its own log generation), continuously replay it into live
  aggregators, and serve replica snapshot reads and promotion
  (same ``PORT <n>`` launch contract as ``serve-shard``);
* ``watchdog --primary H:P --standby H:P [...]`` — the auto-failover
  agent: heartbeat a primary's status listener and, when it dies,
  elect the freshest standby and promote it (prints ``ARMED`` when
  live and ``PROMOTED <json>`` after a failover; spawned detached by
  ``Topology.replicated(auto_failover=True)``);
* ``chaos-drill [--seeds N ...] [--smoke] [--output PATH]`` — seeded
  fault-injection drills: run a replicated topology under a
  deterministic ``repro.chaos`` fault schedule, SIGKILL the primary,
  let the watchdog promote, and assert the bitwise-truths and
  spent-budget invariants (exit 1 if any drill fails to heal);
* ``durable-bench [--smoke] [--output PATH]`` — measure write-ahead
  logging cost (per fsync policy, synchronous and async commit),
  commit-latency percentiles, compaction, and crash-recovery speed;
* ``metrics URL`` — scrape a live ``/metrics`` endpoint once and
  pretty-print every series (``--raw`` prints the Prometheus text);
* ``top URL [--interval S]`` — live terminal dashboard over a metrics
  endpoint: throughput, queue depths, durable lag, stage-latency
  percentiles, per-process aggregation rates;
* ``recover DIR [--campaign ID] [--checkpoint]`` — rebuild service
  state from a durability directory and report what was recovered;
* ``compact DIR [--checkpoint-lsn N]`` — rewrite a durability
  directory's write-ahead log down to its live records (claim-granular
  retention; requires a checkpoint covering the dropped records).

The durability subcommands (``recover`` / ``compact`` / ``standby``)
all take their directory as ``--dir DIR`` (``recover`` and ``compact``
also accept it positionally, the historical spelling), and the
benchmarks share one flag vocabulary: ``--output PATH`` (JSON report,
``-`` to skip), ``--metrics-port PORT`` (live exposition),
``--trace-output PATH`` (sampled stage traces), ``--smoke`` (tiny CI
workload).

Exit codes: ``0`` success; ``1`` runtime failure (e.g. a standby's
listener died, a metrics endpoint went away); ``2`` bad input —
unknown names, malformed directories, log corruption the command
refuses to touch.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.experiments import available_experiments, run_experiment
from repro.experiments.reporting import figure_markdown
from repro.utils.logging import enable_console_logging


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the figures of 'Towards Differentially Private "
            "Truth Discovery for Crowd Sensing Systems' (ICDCS 2020)."
        ),
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="enable debug logging"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("name", help="experiment name (see 'list')")
    _add_run_options(run_p)

    all_p = sub.add_parser("all", help="run every experiment")
    _add_run_options(all_p)

    bench_p = sub.add_parser(
        "service-bench",
        help="benchmark the claim-ingestion service vs the classic server",
    )
    bench_p.add_argument(
        "--claims",
        type=int,
        default=400_000,
        help="claims through the bulk columnar path (default 400k)",
    )
    bench_p.add_argument(
        "--submission-claims",
        type=int,
        default=80_000,
        help="claims through the per-submission path (default 80k)",
    )
    bench_p.add_argument(
        "--baseline-claims",
        type=int,
        default=20_000,
        help="claims through the per-message baseline (default 20k)",
    )
    bench_p.add_argument(
        "--shards", type=int, default=4, help="service shard count"
    )
    bench_p.add_argument(
        "--batch", type=int, default=2048, help="micro-batch size in claims"
    )
    bench_p.add_argument(
        "--seed", type=int, default=2020, help="load-generator seed"
    )
    bench_p.add_argument(
        "--method",
        choices=("crh", "gtm", "catd"),
        default="crh",
        help="truth-discovery method the bulk/submission campaigns run "
        "(default crh); every choice has a streaming backend",
    )
    bench_p.add_argument(
        "--read-claims",
        type=int,
        default=1_000_000,
        help="claims per campaign in the per-method streaming-vs-full-"
        "refit read benchmark (default 1M)",
    )
    bench_p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="also run the bulk path with N shard-worker processes and "
        "compare against the in-process run (default 0: in-process only)",
    )
    bench_p.add_argument(
        "--hosts",
        type=int,
        default=0,
        help="also run the bulk path over N socket shard hosts "
        "(serve-shard subprocesses), with a bitwise check and a "
        "kill-one-host failover run (default 0: no fabric)",
    )
    bench_p.add_argument(
        "--replicas",
        type=int,
        default=0,
        metavar="N",
        help="also run the WAL-shipping replication benchmark with N "
        "warm standbys ('repro standby' subprocesses): replica "
        "snapshot-read fan-out vs primary reads, replication lag, and "
        "a promotion bitwise check (default 0: no replication)",
    )
    bench_p.add_argument(
        "--start-method",
        choices=("spawn", "fork", "forkserver"),
        default="spawn",
        help="multiprocessing start method for --workers (default spawn)",
    )
    bench_p.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload exercising every code path (CI smoke test)",
    )
    bench_p.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve live metrics on this port for the whole benchmark "
        "(Prometheus text at /metrics, JSON at /metrics.json; watch it "
        "with 'repro top http://127.0.0.1:PORT/metrics')",
    )
    bench_p.add_argument(
        "--trace-output",
        metavar="PATH",
        default=None,
        help="sample per-submission traces during the WAL-attached "
        "durable-ack run and write them as a JSON artifact to this path",
    )
    _add_output_option(bench_p, "results/BENCH_service.json")

    serve_p = sub.add_parser(
        "serve-shard",
        help="run one shard host: the worker frame protocol on a TCP port",
    )
    serve_p.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default 127.0.0.1)",
    )
    serve_p.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port to bind (default 0: pick an ephemeral port and "
        "print 'PORT <n>' on stdout for the parent to read)",
    )
    serve_p.add_argument(
        "--worker-id",
        type=int,
        default=0,
        help="host identity used in log and error messages",
    )
    serve_p.add_argument(
        "--shards",
        type=int,
        nargs=2,
        default=(0, 0),
        metavar=("LO", "HI"),
        help="half-open shard range this host is expected to own "
        "(informational; campaigns arrive via REGISTER frames)",
    )

    standby_p = sub.add_parser(
        "standby",
        help="run one warm standby: receive, persist, and replay a "
        "primary's WAL stream; serve replica reads and promotion",
    )
    standby_p.add_argument(
        "--dir",
        metavar="DIR",
        required=True,
        help="this standby's durability directory (its own WAL "
        "generation; resumed if it already holds a log)",
    )
    standby_p.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default 127.0.0.1)",
    )
    standby_p.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port to bind (default 0: pick an ephemeral port and "
        "print 'PORT <n>' on stdout for the parent to read)",
    )
    standby_p.add_argument(
        "--fsync",
        choices=("never", "batch", "always"),
        default="batch",
        help="commit policy of the standby's own WAL (default batch; "
        "the standby acks a shipped group only after its own fsync)",
    )

    watchdog_p = sub.add_parser(
        "watchdog",
        help="heartbeat a primary's status listener; on death, elect "
        "and promote the freshest standby (the auto-failover agent "
        "behind Topology.replicated(auto_failover=True))",
    )
    watchdog_p.add_argument(
        "--primary",
        required=True,
        metavar="HOST:PORT",
        help="the primary's status listener address",
    )
    watchdog_p.add_argument(
        "--standby",
        action="append",
        required=True,
        metavar="HOST:PORT",
        dest="standbys",
        help="a standby listener address (repeat per standby; order "
        "is the election tie-break)",
    )
    watchdog_p.add_argument(
        "--interval",
        type=float,
        default=0.5,
        help="seconds between heartbeats (default 0.5)",
    )
    watchdog_p.add_argument(
        "--misses",
        type=int,
        default=4,
        help="consecutive missed heartbeats before the primary is "
        "declared dead (default 4)",
    )
    watchdog_p.add_argument(
        "--probe-timeout",
        type=float,
        default=1.0,
        help="dial + response budget of one probe (default 1.0)",
    )
    watchdog_p.add_argument(
        "--index",
        type=int,
        default=0,
        help="this watchdog's identity within the fleet (default 0)",
    )
    watchdog_p.add_argument(
        "--peer-port",
        type=int,
        default=None,
        help="port of this watchdog's own voting listener (quorum "
        "fleets only; 0 picks a free one)",
    )
    watchdog_p.add_argument(
        "--peer",
        action="append",
        default=None,
        metavar="HOST:PORT",
        dest="peers",
        help="another fleet member's voting listener (repeat per "
        "peer); any peer switches on majority voting before promotion",
    )
    watchdog_p.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        help="install a seeded FaultPlan inside this watchdog (drill "
        "use: partition one fleet member)",
    )
    watchdog_p.add_argument(
        "--chaos-rate",
        action="append",
        default=None,
        metavar="POINT=RATE",
        dest="chaos_rates",
        help="per-point fault rate override for --chaos-seed "
        "(repeatable, e.g. net.connect=1.0)",
    )

    drill_p = sub.add_parser(
        "chaos-drill",
        help="run seeded fault-injection drills against a live "
        "replicated topology: SIGKILL the primary under injected "
        "faults, wait for the watchdog to promote, and verify the "
        "bitwise-truths and spent-budget invariants",
    )
    drill_p.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        metavar="SEED",
        help="explicit drill seeds (default: --drills seeds derived "
        "from --base-seed)",
    )
    drill_p.add_argument(
        "--drills",
        type=int,
        default=5,
        metavar="N",
        help="number of seeded drills when --seeds is not given "
        "(default 5)",
    )
    drill_p.add_argument(
        "--base-seed",
        type=int,
        default=2020,
        help="base seed the default drill seeds derive from",
    )
    drill_p.add_argument(
        "--claims",
        type=int,
        default=6000,
        help="claims streamed through the primary per drill "
        "(default 6000)",
    )
    drill_p.add_argument(
        "--smoke",
        action="store_true",
        help="tiny pinned workload over the pinned CI seeds",
    )
    drill_p.add_argument(
        "--scenarios",
        nargs="+",
        default=None,
        choices=["promotion", "host-loss", "partition"],
        metavar="NAME",
        help="scenario classes to run: promotion (kill the primary, "
        "watchdog promotes), host-loss (kill a shard host with "
        "respawn blocked; shards re-home onto survivors), partition "
        "(watchdogs=3 with one member network-partitioned; exactly "
        "one promotion).  Default: all",
    )
    _add_output_option(drill_p, "results/BENCH_chaos.json")

    durable_p = sub.add_parser(
        "durable-bench",
        help="measure write-ahead logging cost and crash-recovery speed",
    )
    durable_p.add_argument(
        "--claims",
        type=int,
        default=200_000,
        help="claims through each measured run (default 200k)",
    )
    durable_p.add_argument(
        "--always-claims",
        type=int,
        default=None,
        help="claims for the fsync=always run (default claims/10)",
    )
    durable_p.add_argument(
        "--shards", type=int, default=4, help="service shard count"
    )
    durable_p.add_argument(
        "--batch", type=int, default=2048, help="micro-batch size in claims"
    )
    durable_p.add_argument(
        "--seed", type=int, default=2020, help="load-generator seed"
    )
    durable_p.add_argument(
        "--dir",
        metavar="DIR",
        default=None,
        help="durability directory to use (default: a temp dir, removed "
        "afterwards)",
    )
    durable_p.add_argument(
        "--always-batch",
        type=int,
        default=256,
        help="micro-batch size for the fsync=always runs (default 256; "
        "per-record durability is measured at its fine-grained "
        "operating point)",
    )
    durable_p.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload exercising every code path (CI smoke test)",
    )
    durable_p.add_argument(
        "--trace-output",
        metavar="PATH",
        default=None,
        help="run one extra traced logged workload and write its "
        "per-submission stage traces as a JSON artifact to this path",
    )
    durable_p.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve live metrics on this port for the whole benchmark "
        "(Prometheus text at /metrics, JSON at /metrics.json; watch it "
        "with 'repro top http://127.0.0.1:PORT/metrics')",
    )
    _add_output_option(durable_p, "results/BENCH_durability.json")

    metrics_p = sub.add_parser(
        "metrics",
        help="scrape a live metrics endpoint once and pretty-print it",
    )
    metrics_p.add_argument(
        "url",
        help="metrics endpoint, e.g. http://127.0.0.1:9800/metrics",
    )
    metrics_p.add_argument(
        "--raw",
        action="store_true",
        help="print the Prometheus text exposition instead of the "
        "formatted summary",
    )

    top_p = sub.add_parser(
        "top",
        help="live terminal dashboard over a metrics endpoint",
    )
    top_p.add_argument(
        "url",
        help="metrics endpoint, e.g. http://127.0.0.1:9800/metrics",
    )
    top_p.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="refresh interval in seconds (default 2.0)",
    )
    top_p.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="redraw N times then exit (default: run until Ctrl-C or "
        "the endpoint goes away)",
    )

    compact_p = sub.add_parser(
        "compact",
        help="rewrite a durability directory's WAL down to live records",
    )
    compact_p.add_argument(
        "directory",
        nargs="?",
        default=None,
        help="durability directory (WAL segments + checkpoints); "
        "equivalent to --dir",
    )
    compact_p.add_argument(
        "--dir",
        metavar="DIR",
        default=None,
        help="durability directory (the flag spelling shared with "
        "'standby' and 'durable-bench')",
    )
    compact_p.add_argument(
        "--checkpoint-lsn",
        type=int,
        default=None,
        metavar="N",
        help="checkpoint LSN the rewrite assumes (default: the newest "
        "readable checkpoint); values no checkpoint covers are refused",
    )
    compact_p.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write the compaction report as JSON to this path",
    )

    recover_p = sub.add_parser(
        "recover",
        help="rebuild service state from a durability directory",
    )
    recover_p.add_argument(
        "directory",
        nargs="?",
        default=None,
        help="durability directory (WAL segments + checkpoints); "
        "equivalent to --dir",
    )
    recover_p.add_argument(
        "--dir",
        metavar="DIR",
        default=None,
        help="durability directory (the flag spelling shared with "
        "'standby' and 'durable-bench')",
    )
    recover_p.add_argument(
        "--campaign",
        metavar="ID",
        default=None,
        help="also print the recovered truths of one campaign",
    )
    recover_p.add_argument(
        "--checkpoint",
        action="store_true",
        help="write a post-recovery checkpoint (bounds the next replay "
        "and retires covered WAL segments)",
    )
    recover_p.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write the recovery report as JSON to this path",
    )

    show_p = sub.add_parser("show", help="render a previously saved result")
    show_p.add_argument("name", help="figure id saved in the store")
    show_p.add_argument(
        "--store", metavar="DIR", required=True, help="result-store directory"
    )
    show_p.add_argument(
        "--markdown",
        action="store_true",
        help="emit markdown tables instead of ASCII charts",
    )

    return parser


def _add_output_option(
    parser: argparse.ArgumentParser, default: str
) -> None:
    parser.add_argument(
        "--output",
        metavar="PATH",
        default=default,
        help=f"write the full summary as JSON to this path "
        f"(default {default}); pass '-' to skip writing",
    )


def _resolve_dir(args) -> Optional[str]:
    """One directory from the positional and ``--dir`` spellings."""
    if args.directory is not None and args.dir is not None:
        if args.directory != args.dir:
            print(
                f"both a positional directory ({args.directory}) and "
                f"--dir ({args.dir}); pass one",
                file=sys.stderr,
            )
            return None
        return args.dir
    directory = args.dir if args.dir is not None else args.directory
    if directory is None:
        print(
            f"{args.command}: a durability directory is required "
            f"(--dir DIR)",
            file=sys.stderr,
        )
    return directory


def _write_output(report: dict, output: Optional[str]) -> None:
    if output is None or output == "-":
        return
    import json
    import os

    parent = os.path.dirname(output)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {output}", file=sys.stderr)


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        choices=("quick", "full"),
        default="quick",
        help="experiment size (quick: seconds; full: paper-quality)",
    )
    parser.add_argument(
        "--seed", type=int, default=2020, help="base random seed"
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit markdown tables instead of ASCII charts",
    )
    parser.add_argument(
        "--save",
        metavar="DIR",
        default=None,
        help="also save the result as JSON into this result-store directory",
    )


def _print_result(result, markdown: bool) -> None:
    if markdown:
        print(figure_markdown(result))
    else:
        print(result.render())


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.verbose:
        enable_console_logging()

    if args.command == "list":
        for name in available_experiments():
            print(name)
        return 0

    if args.command == "run":
        if args.name not in available_experiments():
            print(
                f"unknown experiment {args.name!r}; available: "
                f"{', '.join(available_experiments())}",
                file=sys.stderr,
            )
            return 2
        result = run_experiment(args.name, args.profile, base_seed=args.seed)
        _maybe_save(result, args.save)
        _print_result(result, args.markdown)
        return 0

    if args.command == "all":
        for name in available_experiments():
            result = run_experiment(name, args.profile, base_seed=args.seed)
            _maybe_save(result, args.save)
            _print_result(result, args.markdown)
            print()
        return 0

    if args.command == "service-bench":
        from repro.service.bench import format_summary, run_service_bench

        report = run_service_bench(
            total_claims=args.claims,
            submission_claims=args.submission_claims,
            baseline_claims=args.baseline_claims,
            num_shards=args.shards,
            max_batch=args.batch,
            seed=args.seed,
            method=args.method,
            read_claims=args.read_claims,
            workers=args.workers,
            hosts=args.hosts,
            replicas=args.replicas,
            start_method=args.start_method,
            smoke=args.smoke,
            metrics_port=args.metrics_port,
            trace_output=args.trace_output,
        )
        print(format_summary(report))
        _write_output(report, args.output)
        return 0

    if args.command == "metrics":
        from repro.obs import format_metrics, render_prometheus, try_scrape

        snapshot = try_scrape(args.url)
        if snapshot is None:
            print(f"{args.url}: no metrics endpoint reachable",
                  file=sys.stderr)
            return 1
        if args.raw:
            print(render_prometheus(snapshot), end="")
        else:
            print(format_metrics(snapshot))
        return 0

    if args.command == "top":
        from repro.obs import run_top

        return run_top(
            args.url,
            interval=args.interval,
            iterations=args.iterations,
        )

    if args.command == "serve-shard":
        from repro.net.host import serve_shard

        def announce(port: int) -> None:
            # The launch contract: the first stdout line names the
            # bound port, so a parent that asked for --port 0 can dial.
            print(f"PORT {port}", flush=True)

        return serve_shard(
            host=args.host,
            port=args.port,
            worker_id=args.worker_id,
            shard_range=tuple(args.shards),
            announce=announce,
        )

    if args.command == "durable-bench":
        from repro.durable import (
            format_durability_summary,
            run_durability_bench,
        )

        report = run_durability_bench(
            total_claims=args.claims,
            always_claims=args.always_claims,
            num_shards=args.shards,
            max_batch=args.batch,
            always_max_batch=args.always_batch,
            seed=args.seed,
            directory=args.dir,
            smoke=args.smoke,
            trace_output=args.trace_output,
            metrics_port=args.metrics_port,
        )
        print(format_durability_summary(report))
        _write_output(report, args.output)
        return 0

    if args.command == "standby":
        from repro.durable import CheckpointError, RecordError, WalError
        from repro.replication import StandbyError, serve_standby

        def announce(port: int) -> None:
            # Same launch contract as serve-shard: the first stdout
            # line names the bound port for a --port 0 parent to read.
            print(f"PORT {port}", flush=True)

        try:
            serve_standby(
                args.dir,
                host=args.host,
                port=args.port,
                fsync=args.fsync,
                announce=announce,
            )
        except (CheckpointError, RecordError, WalError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        except StandbyError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        return 0

    if args.command == "watchdog":
        import json

        from repro.replication.watchdog import (
            FailoverWatchdog,
            WatchdogError,
            parse_address,
        )

        try:
            primary = parse_address(args.primary)
            standbys = [parse_address(a) for a in args.standbys]
            peers = [parse_address(a) for a in (args.peers or [])]
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if args.chaos_seed is not None:
            # Drill hook: a seeded FaultPlan inside *this* watchdog
            # only — how a drill partitions one fleet member.
            from repro.chaos import points as chaos_points
            from repro.chaos.plan import FaultPlan

            rates = {}
            for item in args.chaos_rates or []:
                point, sep, rate = item.partition("=")
                if not sep:
                    print(
                        f"--chaos-rate must be POINT=RATE, got {item!r}",
                        file=sys.stderr,
                    )
                    return 2
                rates[point] = float(rate)
            try:
                chaos_points.install(
                    FaultPlan(args.chaos_seed, rates=rates)
                )
            except ValueError as exc:
                print(str(exc), file=sys.stderr)
                return 2
        watchdog = FailoverWatchdog(
            primary,
            standbys,
            interval=args.interval,
            misses=args.misses,
            probe_timeout=args.probe_timeout,
            index=args.index,
            peers=peers,
            peer_port=args.peer_port,
            # The launch contract: "ARMED" once the primary has been
            # seen alive, "PROMOTED <json>" after a failover this
            # watchdog performed itself, "OBSERVED <json>" when it
            # stood down because a peer promoted first — all on
            # stdout, where a drill (or operator tooling) reads them.
            on_armed=lambda: print("ARMED", flush=True),
        )
        try:
            result = watchdog.run()
        except WatchdogError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        except KeyboardInterrupt:  # pragma: no cover - operator stop
            return 0
        finally:
            if watchdog.peer_server is not None:
                watchdog.peer_server.stop()
        if result is None:
            return 0
        tag = "OBSERVED" if result.get("observed") else "PROMOTED"
        print(
            f"{tag} " + json.dumps(result, sort_keys=True), flush=True
        )
        return 0

    if args.command == "chaos-drill":
        from repro.chaos.drill import format_drill_summary, run_chaos_drill

        report = run_chaos_drill(
            seeds=args.seeds,
            drills=args.drills,
            base_seed=args.base_seed,
            claims=args.claims,
            smoke=args.smoke,
            scenarios=args.scenarios,
        )
        print(format_drill_summary(report))
        _write_output(report, args.output)
        invariants = report.get("invariants", {})
        healthy = all(bool(v) for v in invariants.values())
        return 0 if healthy else 1

    if args.command == "compact":
        from repro.durable import WalError, compact_directory

        directory = _resolve_dir(args)
        if directory is None:
            return 2
        try:
            report = compact_directory(
                directory, checkpoint_lsn=args.checkpoint_lsn
            )
        except WalError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        print(report.summary())
        _write_output(report.as_dict(), args.output)
        return 0

    if args.command == "recover":
        from repro.durable import (
            CheckpointError,
            RecordError,
            RecoveryError,
            RecoveryManager,
            WalError,
        )

        directory = _resolve_dir(args)
        if directory is None:
            return 2
        try:
            recovered = RecoveryManager(directory).recover(
                resume=args.checkpoint
            )
        except (CheckpointError, RecordError, RecoveryError, WalError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        print(recovered.report.summary())
        for campaign_id in recovered.service.campaign_ids:
            print(recovered.service.snapshot(campaign_id).summary())
        if args.campaign is not None:
            if not recovered.service.has_campaign(args.campaign):
                print(
                    f"campaign {args.campaign!r} not in the recovered "
                    f"state",
                    file=sys.stderr,
                )
                return 2
            snapshot = recovered.service.snapshot(args.campaign)
            for object_id, truth, seen in zip(
                snapshot.object_ids, snapshot.truths, snapshot.seen_objects
            ):
                marker = "" if seen else "  (no claims)"
                print(f"  {object_id}: {truth:.6g}{marker}")
        if recovered.durability is not None:
            recovered.durability.close()
        _write_output(recovered.report.as_dict(), args.output)
        return 0

    if args.command == "show":
        from repro.experiments.store import ResultStore

        store = ResultStore(args.store)
        try:
            result = store.get(args.name)
        except KeyError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        _print_result(result, args.markdown)
        return 0

    return 2  # pragma: no cover - argparse enforces the subcommands


def _maybe_save(result, save_dir: Optional[str]) -> None:
    if save_dir is None:
        return
    from repro.experiments.store import ResultStore

    path = ResultStore(save_dir).put(result)
    print(f"saved {result.figure_id} -> {path}", file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
