"""Incremental cursor reads over a live WAL directory.

Replication ships the log as it grows: after every group commit the
sender needs exactly the records between its cursor (the standby's
durable-ack watermark) and the primary's :attr:`durable_lsn`.
Re-reading whole segments per group would be quadratic, so
:class:`WalTailReader` remembers its position — current segment file
plus byte offset — and each :meth:`~WalTailReader.poll` reads only the
newly appended bytes, following segment rotation as the writer seals
and opens files.

Safety properties:

* only *complete, CRC-valid* frames are consumed — a partially written
  frame at the tail is left alone and retried on the next poll;
* only records at or below the caller-supplied durable watermark are
  emitted, so a standby can never get *ahead* of what the primary has
  committed (the promotion bitwise-equality invariant depends on this);
* the stream is verified contiguous: a skipped LSN raises
  :class:`TailGapError` instead of silently shipping a log with holes.

A :class:`TailGapError` also signals that the reader's cursor fell off
the retained log — compaction retired the segment it was reading, or
the cursor predates the compaction floor.  The sender then falls back
to a checkpoint-based resync (see ``repro.replication``).
"""

from __future__ import annotations

import zlib
from pathlib import Path
from typing import Union

from repro.durable.records import WalRecord
from repro.durable.wal import (
    _BODY_HEADER,
    _FRAME_HEADER,
    MAX_BODY_BYTES,
    SEGMENT_MAGIC,
    WalError,
    _segment_first_lsn,
    list_segments,
    segment_path,
)

__all__ = ["TailGapError", "WalTailReader"]


class TailGapError(WalError):
    """The reader's cursor points below the retained suffix of the log.

    Raised when the next expected LSN cannot be read contiguously from
    the top-level segments — its segment was retired by compaction or
    checkpoint retention.  Callers resynchronise from a checkpoint.
    """


class WalTailReader:
    """Stateful reader of the committed suffix of a live WAL directory.

    Parameters
    ----------
    directory:
        The WAL directory a :class:`~repro.durable.wal.WriteAheadLog`
        writer is appending into (same process or not — only the files
        are shared).
    after_lsn:
        Cursor: the first :meth:`poll` returns records starting at
        ``after_lsn + 1``.
    """

    def __init__(
        self, directory: Union[str, Path], *, after_lsn: int = 0
    ) -> None:
        self._dir = Path(directory)
        self._next = after_lsn + 1
        self._path: Path | None = None
        self._offset = 0

    @property
    def next_lsn(self) -> int:
        """The LSN the next emitted record will carry."""
        return self._next

    def poll(self, up_to_lsn: int) -> list[WalRecord]:
        """Newly committed records with ``next_lsn <= lsn <= up_to_lsn``.

        ``up_to_lsn`` must be the writer's :attr:`durable_lsn` (or any
        lower bound of it): frames beyond it may exist on disk without
        being fsynced yet and are never emitted.  Returns an empty list
        when nothing new is readable; raises :class:`TailGapError` when
        the cursor fell below the retained log.
        """
        records: list[WalRecord] = []
        while self._next <= up_to_lsn:
            if self._path is None and not self._select_segment():
                break
            if not self._drain_segment(up_to_lsn, records):
                break
        return records

    # ------------------------------------------------------------------
    def _select_segment(self) -> bool:
        """Position on the segment that holds (or will hold) ``_next``.

        Returns False when the directory has no segments yet (nothing
        written); raises :class:`TailGapError` when every segment
        starts above the cursor (the suffix we need was retired).
        """
        segments = list_segments(self._dir)
        if not segments:
            return False
        chosen = None
        for seg in segments:
            if _segment_first_lsn(seg) <= self._next:
                chosen = seg
            else:
                break
        if chosen is None:
            raise TailGapError(
                f"records at lsn {self._next} are no longer in the "
                f"top-level segments of {self._dir}"
            )
        self._path = chosen
        self._offset = len(SEGMENT_MAGIC)
        return True

    def _drain_segment(
        self, up_to_lsn: int, records: list[WalRecord]
    ) -> bool:
        """Consume complete frames from the current position.

        Returns True when the caller should keep looping (we rotated
        into a fresh segment), False when no more committed frames are
        readable right now.
        """
        try:
            with open(self._path, "rb") as fh:
                fh.seek(self._offset)
                data = fh.read()
        except FileNotFoundError:
            raise TailGapError(
                f"segment {self._path.name} was retired under the "
                f"reader (cursor at lsn {self._next})"
            ) from None
        offset = 0
        size = len(data)
        while offset + _FRAME_HEADER.size <= size:
            length, crc = _FRAME_HEADER.unpack_from(data, offset)
            if length < _BODY_HEADER.size or length > MAX_BODY_BYTES:
                break
            body_start = offset + _FRAME_HEADER.size
            if body_start + length > size:
                break
            body = data[body_start:body_start + length]
            if zlib.crc32(body) != crc:
                break
            rtype, lsn = _BODY_HEADER.unpack_from(body, 0)
            if lsn > up_to_lsn:
                # On disk but not yet acknowledged durable; leave the
                # offset here and re-read once the watermark advances.
                return False
            offset = body_start + length
            self._offset += _FRAME_HEADER.size + length
            if lsn < self._next:
                continue
            if lsn != self._next:
                raise TailGapError(
                    f"LSN gap in {self._path.name}: expected "
                    f"{self._next}, found {lsn}"
                )
            records.append(
                WalRecord(
                    lsn=lsn, rtype=rtype, payload=body[_BODY_HEADER.size:]
                )
            )
            self._next = lsn + 1
        # No further complete frame here.  The writer rotates by
        # sealing the current segment and opening one named after the
        # next record's LSN, so a successor segment for ``_next`` means
        # the current one is exhausted for good.
        successor = segment_path(self._dir, self._next)
        if successor != self._path and successor.is_file():
            self._path = successor
            self._offset = len(SEGMENT_MAGIC)
            return True
        return False
