"""Claim-granular WAL compaction: rewrite live records, swap atomically.

Segment-level retention (:meth:`~repro.durable.wal.WriteAheadLog.retain`)
can only retire *whole* segments fully covered by a checkpoint — a
single live record parks megabytes of dead batches on disk.  Compaction
is record-granular: it rewrites the log keeping only

* every record **above** the checkpoint LSN (the replay suffix, kept
  verbatim — recovery must replay exactly what the live service saw);
* the latest CONFIG record, and the latest REGISTER plus subsequent
  USERS records of every campaign still registered at the checkpoint
  (cheap JSON; they make the directory self-describing even if every
  checkpoint is later lost);
* every CHARGE record (privacy budget spent on released data must stay
  spent, checkpoint or no checkpoint — the safe direction).

Batches, refreshes, unregistrations, and superseded control records at
or below the checkpoint LSN are dropped: their effects live in the
checkpoint.  Disk usage is therefore bounded by live state, not by
segment boundaries.

Crash safety — the swap protocol
--------------------------------

The rewrite lands in ``compact.tmp/`` (new segments first, each
fsynced, then ``MANIFEST.json``, then the directory fsync — the
manifest is the commit point), and is swapped in by
:func:`~repro.durable.wal._commit_compaction`: the previous
``compacted/`` generation is renamed aside, the temp generation is
renamed into place, the parent directory is fsynced, and the retired
top-level segments plus the old generation are deleted.
:func:`~repro.durable.wal.repair_compaction` — run automatically by
``read_wal`` and the ``WriteAheadLog`` constructor — rolls a crash at
*any* point forward (temp manifest complete) or back (it is not), so a
torn mid-compaction crash always recovers to a consistent log and
bitwise-identical truths.

Because compacted records keep their original LSNs, the rewritten log
has legitimate gaps at or below the manifest's ``checkpoint_lsn``;
``read_wal`` relaxes its contiguity check exactly that far, and
:class:`~repro.durable.recovery.RecoveryManager` refuses to rebuild
from a compacted log whose required checkpoint is unreadable (replaying
past the dropped records would silently produce wrong truths).

``fault=`` injects a crash at a named point (``"before-manifest"``,
``"before-commit"``, ``"after-old-rename"``, ``"after-rename"``) by
raising :class:`CompactionInterrupted`; tests use it to prove torn
compactions recover bitwise.
"""

from __future__ import annotations

import json
import os
import shutil
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.durable import records as rec
from repro.durable.checkpoint import CheckpointStore
from repro.durable.wal import (
    COMPACT_DIRNAME,
    COMPACT_MANIFEST,
    COMPACT_TMP_DIRNAME,
    SEGMENT_MAGIC,
    SEGMENT_PREFIX,
    SEGMENT_SUFFIX,
    WalError,
    WalRecord,
    _BODY_HEADER,
    _FRAME_HEADER,
    _commit_compaction,
    _fsync_dir,
    list_segments,
    read_wal,
    repair_compaction,
)
from repro.utils.logging import get_logger

_LOGGER = get_logger("durable.compaction")

#: Injectable crash points, in protocol order (see the module docstring).
FAULT_POINTS = (
    "before-manifest",
    "before-commit",
    "after-old-rename",
    "after-rename",
)

_RTYPE_NAMES = {
    rec.CONFIG: "config",
    rec.REGISTER: "register",
    rec.UNREGISTER: "unregister",
    rec.USERS: "users",
    rec.BATCH: "batch",
    rec.CHARGE: "charge",
    rec.REFRESH: "refresh",
}


class CompactionInterrupted(WalError):
    """Injected crash at a fault point (testing the swap protocol)."""


@dataclass
class CompactionReport:
    """What one compaction pass did (for logs, tests, and the CLI)."""

    directory: str
    checkpoint_lsn: int = 0
    last_lsn: int = 0
    records_before: int = 0
    records_after: int = 0
    bytes_before: int = 0
    bytes_after: int = 0
    segments_before: int = 0
    segments_after: int = 0
    dropped_by_type: dict = field(default_factory=dict)
    seconds: float = 0.0

    @property
    def records_dropped(self) -> int:
        return self.records_before - self.records_after

    @property
    def bytes_reclaimed(self) -> int:
        return self.bytes_before - self.bytes_after

    def as_dict(self) -> dict:
        """JSON-friendly summary (CLI / benchmark output)."""
        return {
            "directory": self.directory,
            "checkpoint_lsn": self.checkpoint_lsn,
            "last_lsn": self.last_lsn,
            "records_before": self.records_before,
            "records_after": self.records_after,
            "records_dropped": self.records_dropped,
            "bytes_before": self.bytes_before,
            "bytes_after": self.bytes_after,
            "bytes_reclaimed": self.bytes_reclaimed,
            "segments_before": self.segments_before,
            "segments_after": self.segments_after,
            "dropped_by_type": dict(self.dropped_by_type),
            "seconds": self.seconds,
        }

    def summary(self) -> str:
        """One-paragraph human rendering."""
        return (
            f"compacted {self.directory} at checkpoint lsn "
            f"{self.checkpoint_lsn}: {self.records_before} -> "
            f"{self.records_after} record(s), {self.bytes_before:,} -> "
            f"{self.bytes_after:,} byte(s) "
            f"({self.bytes_reclaimed:,} reclaimed) in "
            f"{self.seconds * 1e3:.1f} ms"
        )


def _select_live(
    records: list[WalRecord], floor: int
) -> tuple[list[WalRecord], dict]:
    """Partition a full scan into live records and drop counts.

    ``floor`` is the checkpoint LSN the rewrite assumes: everything
    above it is live verbatim; below it only the latest CONFIG, the
    registration lineage of still-registered campaigns, and all
    charges survive.
    """
    latest_config_lsn = 0
    latest_register: dict[str, int] = {}
    for record in records:
        if record.lsn > floor:
            break
        if record.rtype == rec.CONFIG:
            latest_config_lsn = record.lsn
        elif record.rtype == rec.REGISTER:
            campaign_id = record.decode()["campaign_id"]
            latest_register[campaign_id] = record.lsn
        elif record.rtype == rec.UNREGISTER:
            # The campaign's whole lineage at or below the floor is
            # dead (a later re-registration starts a fresh lineage).
            latest_register.pop(record.decode()["campaign_id"], None)
    live: list[WalRecord] = []
    dropped: dict[str, int] = {}
    for record in records:
        if record.lsn > floor:
            live.append(record)
            continue
        keep = False
        if record.rtype == rec.CONFIG:
            keep = record.lsn == latest_config_lsn
        elif record.rtype == rec.CHARGE:
            keep = True
        elif record.rtype == rec.REGISTER:
            campaign_id = record.decode()["campaign_id"]
            keep = latest_register.get(campaign_id) == record.lsn
        elif record.rtype == rec.USERS:
            campaign_id = record.decode()["campaign_id"]
            keep = (
                campaign_id in latest_register
                and record.lsn > latest_register[campaign_id]
            )
        # BATCH / REFRESH / UNREGISTER at or below the floor: dead —
        # their effects are inside the checkpoint.
        if keep:
            live.append(record)
        else:
            name = _RTYPE_NAMES.get(record.rtype, str(record.rtype))
            dropped[name] = dropped.get(name, 0) + 1
    return live, dropped


def _encode_frame(record: WalRecord) -> bytes:
    """Re-encode a scanned record into its exact on-disk frame bytes."""
    body = _BODY_HEADER.pack(record.rtype, record.lsn) + record.payload
    return _FRAME_HEADER.pack(len(body), zlib.crc32(body)) + body


def _close_synced(fh) -> None:
    fh.flush()
    os.fsync(fh.fileno())
    fh.close()


def compact_directory(
    directory: Union[str, Path],
    *,
    checkpoint_lsn: Optional[int] = None,
    max_segment_bytes: int = 64 * 1024 * 1024,
    fault: Optional[str] = None,
) -> CompactionReport:
    """Rewrite a durability directory down to its live records.

    Must not race a live writer — either quiesce the service first or
    go through :meth:`~repro.durable.wal.WriteAheadLog.compact` /
    :meth:`~repro.durable.manager.DurabilityManager.compact`, which
    block appends for the duration.

    Parameters
    ----------
    directory:
        The durability directory (WAL segments + checkpoints).
    checkpoint_lsn:
        Checkpoint the rewrite assumes.  Defaults to the newest
        readable checkpoint; an explicit value above what any readable
        checkpoint covers is refused (the result would be
        unrecoverable).
    max_segment_bytes:
        Rotation threshold for the rewritten segments.
    fault:
        Test-only injected crash point (see :data:`FAULT_POINTS`).
    """
    start = time.perf_counter()
    directory = Path(directory)
    if not directory.is_dir():
        raise WalError(f"no WAL directory at {directory}")
    if fault is not None and fault not in FAULT_POINTS:
        raise ValueError(
            f"fault must be one of {FAULT_POINTS}, got {fault!r}"
        )

    def maybe_crash(point: str) -> None:
        if fault == point:
            raise CompactionInterrupted(f"injected crash at {point!r}")

    repair_compaction(directory)
    newest = CheckpointStore(directory).load_latest()
    covered = newest.lsn if newest is not None else 0
    if checkpoint_lsn is None:
        checkpoint_lsn = covered
    elif checkpoint_lsn > covered:
        raise WalError(
            f"cannot compact against checkpoint lsn {checkpoint_lsn}: "
            f"the newest readable checkpoint covers only lsn {covered}"
        )
    scan = read_wal(directory, repair=True)
    comp_dir = directory / COMPACT_DIRNAME
    before_segments = list_segments(directory) + list_segments(comp_dir)
    report = CompactionReport(
        directory=str(directory),
        checkpoint_lsn=int(checkpoint_lsn),
        last_lsn=scan.last_lsn,
        records_before=len(scan.records),
        bytes_before=sum(p.stat().st_size for p in before_segments),
        segments_before=len(before_segments),
    )
    if scan.last_lsn == 0:
        # Never held a record: nothing to rewrite.
        report.seconds = time.perf_counter() - start
        return report

    live, dropped = _select_live(scan.records, checkpoint_lsn)
    report.dropped_by_type = dropped
    report.records_after = len(live)

    tmp = directory / COMPACT_TMP_DIRNAME
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir()
    segment_names: list[str] = []
    fh = None
    segment_bytes = 0
    for record in live:
        frame = _encode_frame(record)
        if (
            fh is not None
            and segment_bytes + len(frame) > max_segment_bytes
            and segment_bytes > len(SEGMENT_MAGIC)
        ):
            _close_synced(fh)
            fh = None
        if fh is None:
            name = f"{SEGMENT_PREFIX}{record.lsn:020d}{SEGMENT_SUFFIX}"
            segment_names.append(name)
            fh = open(tmp / name, "wb")
            fh.write(SEGMENT_MAGIC)
            segment_bytes = len(SEGMENT_MAGIC)
        fh.write(frame)
        segment_bytes += len(frame)
    if fh is not None:
        _close_synced(fh)
    maybe_crash("before-manifest")
    manifest = {
        "format": 1,
        "checkpoint_lsn": int(checkpoint_lsn),
        "last_lsn": int(scan.last_lsn),
        "segments": segment_names,
        "retired": [p.name for p in list_segments(directory)],
    }
    with open(tmp / COMPACT_MANIFEST, "w", encoding="utf-8") as mfh:
        json.dump(manifest, mfh, sort_keys=True)
        mfh.flush()
        os.fsync(mfh.fileno())
    _fsync_dir(tmp)
    maybe_crash("before-commit")
    _commit_compaction(directory, crash=maybe_crash)

    report.bytes_after = sum(
        (comp_dir / name).stat().st_size for name in segment_names
    )
    report.segments_after = len(segment_names)
    report.seconds = time.perf_counter() - start
    _LOGGER.info("%s", report.summary())
    return report
