"""Serialisable record formats for the durable ingestion subsystem.

Everything the write-ahead log persists is one of a small set of typed
records.  The hot-path record — an accepted micro-batch — is encoded as
:class:`WorkItem`, a compact columnar binary layout (no JSON, no
pickle); the low-rate control records (campaign registration, ledger
charges, user-table growth, service configuration) are UTF-8 JSON.

:class:`WorkItem` doubles as the service's serialisable work-item
format: it is exactly one shard work item — ``(campaign_id,
user_slots, object_slots, values)`` — so the same encoding can carry
items across a process or RPC boundary (the ROADMAP's multi-process
shard evolution) as well as onto disk.

Binary layout of a :class:`WorkItem` (all little-endian)::

    u16  campaign-id byte length
    ...  campaign id (UTF-8)
    u8   flags (bit 0: slot columns are i32; bit 1: u16)
    u32  claim count n
    n *  i64/i32/u16 user slots
    n *  i64/i32/u16 object slots
    n *  f64 values

Slot columns are written in the narrowest of u16/i32/i64 that fits
(u16 almost always does — slots index bounded user tables and object
universes), which cuts the log to 12 bytes per claim; values are
always f64 so replayed aggregation is bit-for-bit identical.  Wider
encodings remain readable, so logs written by older versions replay
unchanged.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass

import numpy as np

# ---------------------------------------------------------------------------
# Record types.  Values are stable on-disk identifiers — never renumber.

#: Service configuration + ledger caps, written once per attach (JSON).
CONFIG = 1
#: Campaign registration spec (JSON).
REGISTER = 2
#: Campaign removal (JSON).
UNREGISTER = 3
#: New user-slot assignments for a campaign (JSON).
USERS = 4
#: One accepted micro-batch (binary :class:`WorkItem`).
BATCH = 5
#: One admitted privacy-budget charge (JSON).
CHARGE = 6
#: A read-forced aggregator refresh (JSON); replayed so the streaming
#: backend folds staged claims at the same points it did live.
REFRESH = 7

RECORD_TYPES = (CONFIG, REGISTER, UNREGISTER, USERS, BATCH, CHARGE, REFRESH)

_JSON_TYPES = frozenset(
    (CONFIG, REGISTER, UNREGISTER, USERS, CHARGE, REFRESH)
)

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")

#: WorkItem flag: slot columns encoded as i32.
_FLAG_NARROW_SLOTS = 0x01
#: WorkItem flag: slot columns encoded as u16 (takes precedence).
_FLAG_U16_SLOTS = 0x02


class RecordError(ValueError):
    """A record payload failed to encode or decode."""


@dataclass(frozen=True)
class WorkItem:
    """One serialisable shard work item: a campaign's claim columns."""

    campaign_id: str
    user_slots: np.ndarray
    object_slots: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        user_slots = np.asarray(self.user_slots, dtype=np.int64)
        object_slots = np.asarray(self.object_slots, dtype=np.int64)
        values = np.asarray(self.values, dtype=np.float64)
        if not (user_slots.shape == object_slots.shape == values.shape):
            raise ValueError("work-item columns must share a shape")
        if user_slots.ndim != 1:
            raise ValueError("work-item columns must be 1-D")
        if user_slots.size == 0:
            raise ValueError("work item must carry at least one claim")
        object.__setattr__(self, "user_slots", user_slots)
        object.__setattr__(self, "object_slots", object_slots)
        object.__setattr__(self, "values", values)

    @property
    def size(self) -> int:
        return self.values.size

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Columnar binary encoding (see the module docstring)."""
        cid = self.campaign_id.encode("utf-8")
        if len(cid) > 0xFFFF:
            raise RecordError(
                f"campaign id of {len(cid)} bytes exceeds the 64KiB limit"
            )
        # Slots are non-negative small integers in practice; narrow
        # them to the smallest width that fits (u16 covers bounded
        # user tables and object universes) — every logged index byte
        # is a byte written, CRC'd, and fsynced on the hot path.
        high = max(
            self.user_slots.max(initial=0),
            self.object_slots.max(initial=0),
        )
        low = min(
            self.user_slots.min(initial=0),
            self.object_slots.min(initial=0),
        )
        if 0 <= low and high < 2**16:
            flags = _FLAG_U16_SLOTS
            slot_dtype = "<u2"
        elif -(2**31) <= low and high < 2**31:
            flags = _FLAG_NARROW_SLOTS
            slot_dtype = "<i4"
        else:
            flags = 0
            slot_dtype = "<i8"
        parts = [
            _U16.pack(len(cid)),
            cid,
            _U8.pack(flags),
            _U32.pack(self.size),
            np.ascontiguousarray(
                self.user_slots.astype(slot_dtype, copy=False)
            ).tobytes(),
            np.ascontiguousarray(
                self.object_slots.astype(slot_dtype, copy=False)
            ).tobytes(),
            np.ascontiguousarray(self.values, dtype="<f8").tobytes(),
        ]
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "WorkItem":
        """Decode :meth:`to_bytes` output.

        The value column is a read-only view into ``payload`` (no copy
        on the recovery path); callers that need to mutate it must
        copy.
        """
        try:
            (cid_len,) = _U16.unpack_from(payload, 0)
            offset = _U16.size
            cid = payload[offset:offset + cid_len].decode("utf-8")
            offset += cid_len
            (flags,) = _U8.unpack_from(payload, offset)
            offset += _U8.size
            (n,) = _U32.unpack_from(payload, offset)
            offset += _U32.size
            if flags & _FLAG_U16_SLOTS:
                slot_dtype, slot_bytes = "<u2", 2
            elif flags & _FLAG_NARROW_SLOTS:
                slot_dtype, slot_bytes = "<i4", 4
            else:
                slot_dtype, slot_bytes = "<i8", 8
            expected = offset + n * (2 * slot_bytes + 8)
            if len(payload) != expected:
                raise RecordError(
                    f"work item of {n} claims needs {expected} bytes, "
                    f"got {len(payload)}"
                )
            user_slots = np.frombuffer(payload, dtype=slot_dtype, count=n,
                                       offset=offset)
            offset += n * slot_bytes
            object_slots = np.frombuffer(payload, dtype=slot_dtype, count=n,
                                         offset=offset)
            offset += n * slot_bytes
            values = np.frombuffer(payload, dtype="<f8", count=n,
                                   offset=offset)
        except (struct.error, UnicodeDecodeError, ValueError) as exc:
            if isinstance(exc, RecordError):
                raise
            raise RecordError(f"malformed work item: {exc}") from exc
        return cls(
            campaign_id=cid,
            user_slots=user_slots,
            object_slots=object_slots,
            values=values,
        )


def campaign_id_prefix(campaign_id: str) -> bytes:
    """The length-prefixed campaign-id header of a :class:`WorkItem`.

    Computed once per campaign (at registration) so the per-batch
    encoder never re-encodes or re-measures the id on the hot path.
    """
    cid = campaign_id.encode("utf-8")
    if len(cid) > 0xFFFF:
        raise RecordError(
            f"campaign id of {len(cid)} bytes exceeds the 64KiB limit"
        )
    return _U16.pack(len(cid)) + cid


def encode_batch_parts(
    cid_prefix: bytes,
    user_slots: np.ndarray,
    object_slots: np.ndarray,
    values: np.ndarray,
) -> tuple:
    """Hot-path :class:`WorkItem` encoding for pre-validated columns.

    Returns the record payload as a tuple of buffers — concatenated
    they are byte-identical to ``WorkItem(...).to_bytes()`` for slots
    that fit u16 — skipping the dataclass construction, the column
    re-checks, the per-batch width detection, and (because the value
    column is handed over as a memoryview, not serialised) every
    payload copy: the write-ahead log CRCs and writes the buffers
    directly.  Callers must guarantee what the ingest pipeline already
    enforces: aligned 1-D columns, at least one claim, slots in
    ``[0, 65535]`` (true whenever the campaign's user capacity and
    object universe are at most 65536, checked once at registration),
    and that the columns are not mutated after the call — the service
    pipeline never touches a batch again once it is logged and
    aggregated.
    """
    header = b"".join(
        (cid_prefix, _U8.pack(_FLAG_U16_SLOTS), _U32.pack(values.size))
    )
    return (
        header,
        memoryview(user_slots.astype("<u2", copy=False)).cast("B"),
        memoryview(object_slots.astype("<u2", copy=False)).cast("B"),
        memoryview(np.ascontiguousarray(values, dtype="<f8")).cast("B"),
    )


@dataclass(frozen=True)
class WalRecord:
    """One decoded write-ahead-log entry."""

    lsn: int
    rtype: int
    payload: bytes

    def decode(self):
        """Typed view of the payload: a :class:`WorkItem` or a dict."""
        if self.rtype == BATCH:
            return WorkItem.from_bytes(self.payload)
        if self.rtype in _JSON_TYPES:
            try:
                return json.loads(self.payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise RecordError(
                    f"malformed JSON record (type {self.rtype}): {exc}"
                ) from exc
        raise RecordError(f"unknown record type {self.rtype}")


def encode_json_payload(obj: dict) -> bytes:
    """Compact UTF-8 JSON encoding for control records."""
    try:
        return json.dumps(
            obj, separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise RecordError(
            f"record payload is not JSON-serialisable: {exc}"
        ) from exc
