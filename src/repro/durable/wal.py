"""Segmented, CRC-checked, append-only write-ahead log.

The log is a directory of segment files named ``wal-<first-lsn>.seg``
(zero-padded so lexicographic order is LSN order).  Each segment starts
with an 8-byte magic and holds a sequence of frames::

    u32  body length
    u32  CRC-32 of the body
    ...  body = u8 record type | u64 LSN | payload

LSNs (log sequence numbers) are assigned by the writer, strictly
increasing across segments; checkpoints reference them to mark how much
of the log they cover, and recovery replays only records with larger
LSNs.

Commit semantics
----------------

Durability policy (``fsync=``):

* ``"never"`` — frames are flushed to the OS at sync points but never
  fsynced: survives process crashes, not power loss;
* ``"batch"`` — group commit: :meth:`WriteAheadLog.sync` (called by the
  service after each pump) flushes and fsyncs once per group;
* ``"always"`` — every appended frame is flushed and fsynced before
  :meth:`WriteAheadLog.append` returns.

With ``async_commit=True`` the write+fsync work leaves the appending
thread entirely: :meth:`WriteAheadLog.append` stages ``(type, LSN,
payload)`` in an in-memory buffer and returns; a dedicated background
writer thread builds the frames and drains staged records in groups —
one batched write plus (under ``batch``/``always``) one ``fdatasync``
per group.  Groups form at sync points (:meth:`WriteAheadLog.sync` /
:meth:`WriteAheadLog.request_sync` / :meth:`WriteAheadLog.wait_durable`)
and whenever the staged bytes cross a high-water mark, which bounds
staging memory and keeps the writer draining in the background between
sync points.  Durability is tracked by a monotone watermark,
:attr:`WriteAheadLog.durable_lsn`, and acknowledged through
:meth:`WriteAheadLog.wait_durable`:

* ``always`` + async — callers *ack after durable*: a sync point
  commits everything staged since the last one in a handful of grouped
  syncs and blocks until the watermark passes, instead of paying one
  synchronous fdatasync per appended frame.  The per-record guarantee
  becomes "durable before the caller's next sync point acknowledges
  it" — the ingestion service acks at every pump;
* ``batch`` + async — :meth:`WriteAheadLog.request_sync` (the service's
  pump hook) is non-blocking: it schedules a group commit and returns,
  so group-commit latency disappears from the ingest thread;
* ``never`` + async — groups are written and flushed without fsync.

Writer-thread IO failures are sticky: they surface as
:class:`WalError` on the next ``append``/``sync``/``wait_durable``/
``close`` call.  ``close()`` drains every staged frame before
returning.  Every mode records per-group commit latencies
(:attr:`WriteAheadLog.commit_latencies`, plus ``groups_committed`` /
``commit_seconds`` accumulators) for observability.

Compaction
----------

:func:`repro.durable.compaction.compact_directory` (or
:meth:`WriteAheadLog.compact` on a live writer) rewrites the log's
*live* records into fresh segments under a ``compacted/``
subdirectory, committed by an atomic temp-dir + rename +
directory-fsync swap with a ``MANIFEST.json`` commit point.  The
manifest records the checkpoint LSN the rewrite assumed
(``checkpoint_lsn``): records at or below it may legitimately be
missing from a compacted log (their state lives in the checkpoint), so
:func:`read_wal` enforces LSN contiguity only above that floor and
:class:`~repro.durable.recovery.RecoveryManager` refuses to replay a
compacted log without a checkpoint covering it.
:func:`repair_compaction` rolls a crash-interrupted swap forward (the
temp generation's manifest is complete) or back (it is not) and is run
automatically by :func:`read_wal` and the :class:`WriteAheadLog`
constructor.

Reading tolerates a torn tail — a partial frame or CRC mismatch at the
end of the *last* top-level segment, the signature of a crash mid-write
— by truncating it (``repair=True``).  The same damage in an earlier
segment or in a compacted segment (those are fully fsynced before the
swap commits) is real corruption and raises
:class:`WalCorruptionError`.
"""

from __future__ import annotations

import json
import os
import shutil
import struct
import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.chaos import points as _chaos
from repro.durable.records import RECORD_TYPES, WalRecord
from repro.utils.logging import get_logger

_LOGGER = get_logger("durable.wal")

SEGMENT_MAGIC = b"RPWAL001"
SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".seg"

#: Subdirectory holding the committed compacted generation.
COMPACT_DIRNAME = "compacted"
#: Staging directory a compaction writes into before the atomic swap.
COMPACT_TMP_DIRNAME = "compact.tmp"
#: Where the previous generation is parked during the swap.
COMPACT_OLD_DIRNAME = "compact.old"
#: The compacted generation's commit point (see repair_compaction).
COMPACT_MANIFEST = "MANIFEST.json"

#: Accepted values for the writer's ``fsync`` policy.
FSYNC_POLICIES = ("never", "batch", "always")

_FRAME_HEADER = struct.Struct("<II")  # body length, CRC-32
_BODY_HEADER = struct.Struct("<BQ")  # record type, LSN

#: Hard ceiling on a single frame body; anything larger in a file is
#: treated as corruption rather than an allocation request.
MAX_BODY_BYTES = 1 << 30

_fdatasync = getattr(os, "fdatasync", os.fsync)


def _buffer_len(part) -> int:
    """Byte length of a payload part (len() of a typed memoryview is
    its element count, not its size)."""
    if isinstance(part, memoryview):
        return part.nbytes
    return len(part)


def _fsync_dir(directory: Path) -> None:
    """Make a create/rename in ``directory`` itself durable.

    File data reaches the disk via fdatasync, but a freshly created
    file's *directory entry* needs its own fsync or power loss can
    leave the data unreachable.  Best-effort: platforms that cannot
    fsync a directory just skip it.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


class WalError(RuntimeError):
    """Base class for write-ahead-log failures."""


class WalCorruptionError(WalError):
    """The log is damaged somewhere recovery cannot safely skip."""


def segment_path(directory: Path, first_lsn: int) -> Path:
    return directory / f"{SEGMENT_PREFIX}{first_lsn:020d}{SEGMENT_SUFFIX}"


def list_segments(directory: Union[str, Path]) -> list[Path]:
    """Top-level segment files in LSN order (compacted ones excluded)."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(
        p
        for p in directory.iterdir()
        if p.name.startswith(SEGMENT_PREFIX)
        and p.name.endswith(SEGMENT_SUFFIX)
    )


def _segment_first_lsn(path: Path) -> int:
    stem = path.name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
    try:
        return int(stem)
    except ValueError as exc:
        raise WalCorruptionError(
            f"segment {path.name} has a malformed name"
        ) from exc


# ---------------------------------------------------------------------------
# Compaction manifests and crash repair.  The rewrite itself lives in
# repro.durable.compaction (it needs record semantics); the on-disk swap
# protocol and its repair live here because every reader and writer must
# agree on them before touching a directory.


def _read_manifest_file(path: Path) -> Optional[dict]:
    """Parsed, structurally valid manifest at ``path``; None otherwise."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except (OSError, UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(manifest, dict):
        return None
    try:
        manifest["checkpoint_lsn"] = int(manifest["checkpoint_lsn"])
        manifest["last_lsn"] = int(manifest["last_lsn"])
        manifest["segments"] = [str(s) for s in manifest["segments"]]
        manifest["retired"] = [str(s) for s in manifest["retired"]]
    except (KeyError, TypeError, ValueError):
        return None
    return manifest


def load_compaction_manifest(
    directory: Union[str, Path]
) -> Optional[dict]:
    """The committed compacted generation's manifest (None when absent).

    A ``compacted/`` directory without a readable manifest is
    corruption: the manifest is written and fsynced before the swap
    commits, so it cannot be legitimately missing.
    """
    comp = Path(directory) / COMPACT_DIRNAME
    if not comp.is_dir():
        return None
    manifest = _read_manifest_file(comp / COMPACT_MANIFEST)
    if manifest is None:
        raise WalCorruptionError(
            f"compacted generation {comp} has a missing or malformed "
            f"{COMPACT_MANIFEST}"
        )
    return manifest


def _cleanup_after_commit(directory: Path, manifest: dict) -> None:
    """Finish a committed swap: drop retired segments and the old gen."""
    removed = False
    for name in manifest["retired"]:
        stale = directory / name
        if stale.exists():
            stale.unlink()
            removed = True
    old = directory / COMPACT_OLD_DIRNAME
    if old.is_dir():
        shutil.rmtree(old)
        removed = True
    if removed:
        _fsync_dir(directory)


def _commit_compaction(directory: Path, *, crash=None) -> None:
    """Swap a fully written temp generation into place and clean up.

    Re-entrant from any crash point: :func:`repair_compaction` resumes
    here whenever a complete temp generation exists.  ``crash`` is a
    test-only fault hook called with the name of each crash point.
    """
    tmp = directory / COMPACT_TMP_DIRNAME
    cur = directory / COMPACT_DIRNAME
    old = directory / COMPACT_OLD_DIRNAME
    if cur.is_dir():
        if old.is_dir():
            # Garbage from an even earlier interrupted swap; the
            # current generation superseded it (rule: cur + old
            # coexisting means the swap that created cur completed).
            shutil.rmtree(old)
        os.rename(cur, old)
        _fsync_dir(directory)
    if crash is not None:
        crash("after-old-rename")
    os.rename(tmp, cur)
    if crash is not None:
        crash("after-rename")
    _fsync_dir(directory)
    manifest = load_compaction_manifest(directory)
    _cleanup_after_commit(directory, manifest)


def repair_compaction(directory: Union[str, Path]) -> None:
    """Roll an interrupted compaction forward or back (idempotent).

    The commit point is the temp generation's manifest: segments are
    written and fsynced *before* the manifest, so a complete manifest
    means the new generation is durable and the swap is resumed (roll
    forward); an absent or torn manifest means the attempt never
    committed and is discarded (roll back, restoring the previous
    generation if the crash landed mid-rename).  Safe to call on any
    directory, compacted or not.
    """
    directory = Path(directory)
    tmp = directory / COMPACT_TMP_DIRNAME
    cur = directory / COMPACT_DIRNAME
    old = directory / COMPACT_OLD_DIRNAME
    if tmp.is_dir():
        if _read_manifest_file(tmp / COMPACT_MANIFEST) is not None:
            _LOGGER.warning(
                "resuming interrupted compaction swap in %s", directory
            )
            _commit_compaction(directory)
            return
        _LOGGER.warning(
            "discarding uncommitted compaction attempt in %s", directory
        )
        shutil.rmtree(tmp)
    if cur.is_dir():
        # The committed generation is authoritative; finish any
        # interrupted cleanup behind it.
        _cleanup_after_commit(directory, load_compaction_manifest(directory))
    elif old.is_dir():
        # Crash after the old generation was moved aside but before a
        # complete replacement existed: the old generation is still the
        # truth.
        _LOGGER.warning(
            "rolling back interrupted compaction swap in %s", directory
        )
        os.rename(old, cur)
        _fsync_dir(directory)


class WriteAheadLog:
    """Appender for a WAL directory.

    Parameters
    ----------
    directory:
        Log directory (created if missing).  A writer never appends
        into pre-existing segments: its first append starts a fresh
        segment, which keeps resuming after recovery trivially safe.
    fsync:
        Durability policy; see the module docstring.
    max_segment_bytes:
        Rotation threshold; a segment is sealed once it reaches this
        size and the next append opens a new one.
    start_lsn:
        First LSN this writer assigns (``last recovered LSN + 1`` when
        resuming).
    async_commit:
        Move write+fsync work onto a background writer thread (see the
        module docstring).  ``append()`` then stages frames and
        returns; durability is acknowledged via :attr:`durable_lsn` /
        :meth:`wait_durable`, and ``close()`` drains.
    commit_latency_window:
        Per-group commit-latency samples retained in
        :attr:`commit_latencies` (a bounded deque).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        fsync: str = "batch",
        max_segment_bytes: int = 64 * 1024 * 1024,
        start_lsn: int = 1,
        async_commit: bool = False,
        commit_latency_window: int = 4096,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if max_segment_bytes < len(SEGMENT_MAGIC) + _FRAME_HEADER.size:
            raise ValueError(
                f"max_segment_bytes {max_segment_bytes} cannot hold a frame"
            )
        if start_lsn < 1:
            raise ValueError(f"start_lsn must be >= 1, got {start_lsn}")
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        repair_compaction(self._dir)
        floor = 0
        manifest = load_compaction_manifest(self._dir)
        if manifest is not None:
            floor = manifest["last_lsn"]
        existing = list_segments(self._dir)
        if existing:
            last = existing[-1]
            floor = max(floor, _segment_first_lsn(last) - 1)
            data = last.read_bytes()
            if data.startswith(SEGMENT_MAGIC):
                for _offset, _body_start, body in _iter_frames(data):
                    _rtype, lsn = _BODY_HEADER.unpack_from(body, 0)
                    floor = max(floor, lsn)
        if start_lsn <= floor:
            raise WalError(
                f"start_lsn {start_lsn} collides with existing records "
                f"up to lsn {floor} in {self._dir}; recover first"
            )
        self._fsync = fsync
        self._max_segment_bytes = max_segment_bytes
        self._next_lsn = start_lsn
        self._fh = None
        self._segment_bytes = 0
        self._dirty = False
        # Appends arrive from producer threads (budget charges) as well
        # as the pump thread (batches); one lock keeps LSNs monotonic
        # and frames contiguous.  In async mode it doubles as the
        # producer barrier compact() takes to quiesce appends.
        self._io_lock = threading.Lock()
        self.bytes_written = 0
        self.records_written = 0
        self.syncs = 0
        #: Wall seconds of each group commit (write + flush + fsync),
        #: newest last; bounded so long-running services stay O(1).
        self.commit_latencies: deque[float] = deque(
            maxlen=commit_latency_window
        )
        self.groups_committed = 0
        self.commit_seconds = 0.0
        self._durable_lsn = start_lsn - 1
        self._closed = False
        self._async = bool(async_commit)
        self._writer_error: Optional[BaseException] = None
        # Called with the new durable watermark after every group
        # commit (replication senders wake on this).  Async mode calls
        # from the writer thread, sync mode from the committing thread;
        # listeners must be cheap and must never raise.
        self._commit_listeners: list = []
        if self._async:
            self._commit_cv = threading.Condition()
            # Double-buffered staging: producers fill one record list
            # while the writer drains the other; the two lists swap at
            # each group boundary so neither side ever copies.  Frame
            # construction (headers, CRC, concatenation) happens on the
            # writer thread — the appending thread only stages.
            self._staging: list[tuple[int, int, bytes]] = []
            self._staged_bytes = 0
            self._staged_last_lsn = self._durable_lsn
            # Cross this and the writer drains without waiting for a
            # sync point: bounds staging memory and keeps background
            # commits flowing between pumps (so the blocking drain at a
            # sync point only covers the most recent suffix).
            self._stage_high_water = max(
                min(self._max_segment_bytes, 1024 * 1024), 1
            )
            self._commit_requested = False
            self._stop = False
            self._writer = threading.Thread(
                target=self._writer_loop,
                name=f"wal-writer-{self._dir.name}",
                daemon=True,
            )
            self._writer.start()

    # ------------------------------------------------------------------
    @property
    def directory(self) -> Path:
        return self._dir

    @property
    def fsync_policy(self) -> str:
        return self._fsync

    @property
    def async_commit(self) -> bool:
        """Whether a background writer thread owns write+fsync work."""
        return self._async

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    @property
    def last_lsn(self) -> int:
        """Highest LSN assigned so far (``start_lsn - 1`` when none)."""
        return self._next_lsn - 1

    @property
    def durable_lsn(self) -> int:
        """Monotone watermark: records at or below it are committed.

        "Committed" is relative to the fsync policy — fdatasynced under
        ``batch``/``always``, flushed to the OS under ``never``.  With
        ``async_commit`` the watermark trails :attr:`last_lsn` by the
        staged-but-unwritten suffix; :meth:`wait_durable` closes the
        gap.
        """
        return self._durable_lsn

    def add_commit_listener(self, listener) -> None:
        """Register ``listener(durable_lsn)`` to run after each group
        commit, once the records at or below the watermark are on disk
        (fdatasynced unless the policy is ``never``).

        Listeners run on the committing thread (the background writer
        in async mode) and must be cheap — typically just waking a
        shipping thread.  Exceptions are swallowed and logged so a
        misbehaving listener can never poison the commit path.
        """
        self._commit_listeners.append(listener)

    def remove_commit_listener(self, listener) -> None:
        """Unregister a listener added via :meth:`add_commit_listener`."""
        try:
            self._commit_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_commit(self, durable_lsn: int) -> None:
        for listener in list(self._commit_listeners):
            try:
                listener(durable_lsn)
            except Exception:  # pragma: no cover - defensive
                _LOGGER.exception("WAL commit listener failed")

    # ------------------------------------------------------------------
    def append(self, rtype: int, payload) -> int:
        """Write one record; returns its LSN.

        ``payload`` is the record body: ``bytes``, or a tuple/list of
        buffer-likes (bytes / memoryviews) written back to back — the
        zero-copy path the hot batch encoder uses; buffers must not be
        mutated until the record is durable.

        Synchronous mode: under ``fsync="always"`` the record is
        durable on return; under the other policies it becomes durable
        at the next :meth:`sync`.  Async mode: the record is staged for
        the background writer and its durability is acknowledged by
        :attr:`durable_lsn` / :meth:`wait_durable`; a previously failed
        writer raises here.
        """
        if rtype not in RECORD_TYPES:
            raise ValueError(f"unknown record type {rtype}")
        parts = (
            (payload,)
            if isinstance(payload, (bytes, bytearray, memoryview))
            else tuple(payload)
        )
        payload_len = sum(_buffer_len(part) for part in parts)
        if payload_len + _BODY_HEADER.size > MAX_BODY_BYTES:
            raise WalError(
                f"record body of {payload_len} bytes is too large"
            )
        if self._async:
            return self._append_async(rtype, parts, payload_len)
        with self._io_lock:
            if self._closed:
                raise WalError("log is closed")
            frame_len = self._write_frame(
                rtype, self._next_lsn, parts, payload_len
            )
            self._segment_bytes += frame_len
            self.bytes_written += frame_len
            self.records_written += 1
            self._dirty = True
            lsn = self._next_lsn
            self._next_lsn += 1
            if self._fsync == "always":
                self._flush(force_fsync=True)
        return lsn

    def _write_frame(
        self, rtype: int, lsn: int, parts: tuple, payload_len: int
    ) -> int:
        """Frame one record into the current segment; returns its size.

        The CRC is computed incrementally and the headers are written
        separately from the payload buffers, so a large batch record is
        never copied into a concatenated frame — every payload byte
        crosses to the file buffer exactly once.  Rotation happens here
        when the frame would overflow the segment.
        """
        fault = _chaos.fire("wal.write")
        if fault is not None:
            raise OSError(
                f"chaos: injected WAL write error at lsn {lsn} "
                f"(#{fault.index})"
            )
        body_len = _BODY_HEADER.size + payload_len
        frame_len = _FRAME_HEADER.size + body_len
        if (
            self._fh is not None
            and self._segment_bytes + frame_len > self._max_segment_bytes
            and self._segment_bytes > len(SEGMENT_MAGIC)
        ):
            self._seal()
        if self._fh is None:
            self._open_segment(lsn)
        body_header = _BODY_HEADER.pack(rtype, lsn)
        crc = zlib.crc32(body_header)
        for part in parts:
            crc = zlib.crc32(part, crc)
        torn = _chaos.fire("wal.torn_tail")
        if torn is not None:
            # Simulated power loss mid-write: a frame header plus a
            # truncated body reaches the disk, then the writer "dies".
            # The record was never durable (the watermark does not
            # advance), so the scan-time torn-tail repair must truncate
            # it on the next recovery.  The log is unusable afterwards,
            # exactly like a real torn write.
            self._fh.write(
                _FRAME_HEADER.pack(body_len, crc) + body_header[:3]
            )
            self._fh.flush()
            self._closed = True
            raise OSError(
                f"chaos: torn WAL tail injected at lsn {lsn} "
                f"(#{torn.index})"
            )
        self._fh.write(_FRAME_HEADER.pack(body_len, crc) + body_header)
        for part in parts:
            self._fh.write(part)
        return frame_len

    def _append_async(
        self, rtype: int, parts: tuple, payload_len: int
    ) -> int:
        with self._io_lock:
            with self._commit_cv:
                self._raise_writer_error()
                if self._closed:
                    raise WalError("log is closed")
                lsn = self._next_lsn
                self._next_lsn += 1
                self.records_written += 1
                self._staging.append((rtype, lsn, parts, payload_len))
                self._staged_bytes += (
                    payload_len + _BODY_HEADER.size + _FRAME_HEADER.size
                )
                self._staged_last_lsn = lsn
                if self._staged_bytes >= self._stage_high_water:
                    # Bound staging memory even if no sync point comes;
                    # groups otherwise form at sync points, which is
                    # what makes the ``always`` durable-ack *grouped*
                    # (one fdatasync per sync interval, not per frame).
                    self._commit_requested = True
                    self._commit_cv.notify_all()
        return lsn

    def sync(self) -> None:
        """Blocking group-commit point.

        On return, every record appended so far is committed to the
        fsync policy's level (fdatasynced unless ``never``).  In async
        mode this waits for the background writer to drain and commit
        the staged suffix, surfacing any writer failure.
        """
        if not self._async:
            with self._io_lock:
                if not self._dirty:
                    return
                self._flush(force_fsync=self._fsync != "never")
                self.syncs += 1
            return
        with self._commit_cv:
            self._raise_writer_error()
            target = self._next_lsn - 1
            if self._durable_lsn >= target and not self._staging:
                return
        self.wait_durable(target)
        self.syncs += 1

    def request_sync(self) -> None:
        """Non-blocking commit request (async mode).

        Schedules a group commit of everything staged and returns
        immediately; in synchronous mode this is just :meth:`sync`.
        A previous writer failure raises here.
        """
        if not self._async:
            self.sync()
            return
        with self._commit_cv:
            self._raise_writer_error()
            if self._staging:
                self._commit_requested = True
                self._commit_cv.notify_all()

    def wait_durable(
        self, lsn: int, *, timeout: Optional[float] = None
    ) -> bool:
        """Block until records up to ``lsn`` are committed (durable-ack).

        Returns True once :attr:`durable_lsn` >= ``lsn``; False when
        ``timeout`` (seconds) elapses first.  The wait arms a commit
        request, so callers never deadlock waiting for a group the
        writer was not asked to commit; a failed writer raises
        :class:`WalError` instead of blocking forever.  In synchronous
        mode a lagging watermark forces a :meth:`sync`.
        """
        if not self._async:
            if self._durable_lsn < lsn:
                self.sync()
            return self._durable_lsn >= lsn
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._commit_cv:
            while self._durable_lsn < lsn:
                self._raise_writer_error()
                if self._closed:
                    raise WalError("log is closed")
                self._commit_requested = True
                self._commit_cv.notify_all()
                if deadline is None:
                    self._commit_cv.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    self._commit_cv.wait(remaining)
            return True

    def retain(self, lsn: int) -> list[Path]:
        """Delete sealed segments fully covered by a checkpoint at ``lsn``.

        A segment is removable when the *next* segment starts at or
        below ``lsn + 1`` — every record it holds then has an LSN
        ``<= lsn``.  The active segment is never removed.  Returns the
        deleted paths.  (Claim-granular retirement *within* segments is
        compaction's job; see :meth:`compact`.)
        """
        segments = list_segments(self._dir)
        removed: list[Path] = []
        for current, successor in zip(segments, segments[1:]):
            if _segment_first_lsn(successor) <= lsn + 1:
                current.unlink()
                removed.append(current)
            else:
                break
        if removed:
            _LOGGER.debug(
                "retention at lsn %d removed %d segment(s)", lsn, len(removed)
            )
        return removed

    def compact(self, *, checkpoint_lsn: Optional[int] = None):
        """Rewrite the log to its live records; returns the report.

        Safe on a live writer: appends are blocked for the duration,
        the async writer (if any) is drained to durability first, the
        current segment is sealed, and the next append starts a fresh
        segment above the compacted generation.  See
        :func:`repro.durable.compaction.compact_directory` for the
        rewrite itself and the crash-safety protocol.
        """
        from repro.durable.compaction import compact_directory

        with self._io_lock:
            if self._async:
                with self._commit_cv:
                    self._raise_writer_error()
                    target = self._next_lsn - 1
                self.wait_durable(target)
            if self._fh is not None:
                self._flush(force_fsync=self._fsync != "never")
                self._fh.close()
                self._fh = None
                self._segment_bytes = 0
            return compact_directory(
                self._dir,
                checkpoint_lsn=checkpoint_lsn,
                max_segment_bytes=self._max_segment_bytes,
            )

    def close(self) -> None:
        """Drain, flush, and close the log (the directory stays
        recoverable).  In async mode every staged frame is committed
        before the file handle closes; a writer failure raises after
        the handle is released.  Idempotent: only the *first* close
        surfaces a sticky writer error — repeated closes (common in
        ``finally`` blocks unwinding after that first raise) are
        no-ops."""
        if self._async:
            # Mark closed while holding the producer lock: an append
            # racing close() either completes its staging before the
            # writer is told to stop (and is drained) or observes
            # _closed and raises — it can never return an LSN the
            # dying writer will silently drop.
            with self._io_lock:
                with self._commit_cv:
                    first_close = not self._closed
                    self._closed = True
                    self._stop = True
                    self._commit_cv.notify_all()
            if first_close:
                self._writer.join()
            with self._io_lock:
                if self._fh is not None:
                    self._fh.close()
                    self._fh = None
            if first_close:
                self._raise_writer_error()
            return
        with self._io_lock:
            self._closed = True
            if self._fh is not None:
                self._flush(force_fsync=self._fsync != "never")
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _raise_writer_error(self) -> None:
        if self._writer_error is not None:
            raise WalError(
                "background WAL writer failed; staged records may not be "
                "durable"
            ) from self._writer_error

    def _writer_loop(self) -> None:
        """Background committer: drain staged groups until stopped."""
        spare: list[tuple] = []
        try:
            while True:
                with self._commit_cv:
                    while not self._stop and not self._drain_ready():
                        self._commit_cv.wait()
                    staged = self._staging
                    group_last = self._staged_last_lsn
                    if staged:
                        self._staging = spare
                        self._staged_bytes = 0
                    self._commit_requested = False
                    if not staged and self._stop:
                        break
                start = time.perf_counter()
                self._write_group(staged)
                elapsed = time.perf_counter() - start
                staged.clear()
                spare = staged
                with self._commit_cv:
                    self._durable_lsn = group_last
                    self.groups_committed += 1
                    self.commit_seconds += elapsed
                    self.commit_latencies.append(elapsed)
                    self._commit_cv.notify_all()
                self._notify_commit(group_last)
        except Exception as exc:
            # Sticky: surfaces on the next append/sync/wait/close.
            with self._commit_cv:
                self._writer_error = exc
                self._commit_cv.notify_all()

    def _drain_ready(self) -> bool:
        if not self._staging:
            return False
        return (
            self._commit_requested
            or self._staged_bytes >= self._stage_high_water
        )

    def _write_group(self, staged: list[tuple]) -> None:
        """One group commit: frame and write every staged record, then
        one flush (plus one fdatasync unless ``never``) for the whole
        group — all off the appending thread."""
        for rtype, lsn, parts, payload_len in staged:
            frame_len = self._write_frame(rtype, lsn, parts, payload_len)
            self._segment_bytes += frame_len
            self.bytes_written += frame_len
        self._fh.flush()
        if self._fsync != "never":
            fault = _chaos.fire("wal.fsync")
            if fault is not None:
                raise OSError(
                    f"chaos: injected fsync error (#{fault.index})"
                )
            _fdatasync(self._fh.fileno())

    # ------------------------------------------------------------------
    def _open_segment(self, first_lsn: int) -> None:
        path = segment_path(self._dir, first_lsn)
        if path.exists():
            # A frame-less leftover (crash between rotation and the
            # first frame surviving) carries no records and may be
            # replaced; anything with content is a real collision.
            if path.stat().st_size > len(SEGMENT_MAGIC):
                raise WalError(f"segment {path.name} already exists")
        self._fh = open(path, "wb")
        self._fh.write(SEGMENT_MAGIC)
        self._segment_bytes = len(SEGMENT_MAGIC)
        if self._fsync != "never":
            # The new directory entry must survive power loss too, or
            # every "durable" frame in this segment is unreachable.
            self._fh.flush()
            _fdatasync(self._fh.fileno())
            _fsync_dir(self._dir)

    def _seal(self) -> None:
        self._flush(force_fsync=self._fsync != "never")
        self._fh.close()
        self._fh = None
        self._segment_bytes = 0

    def _flush(self, *, force_fsync: bool) -> None:
        if self._fh is None:
            return
        was_dirty = self._dirty
        start = time.perf_counter() if was_dirty else 0.0
        self._fh.flush()
        if force_fsync:
            fault = _chaos.fire("wal.fsync")
            if fault is not None:
                raise OSError(
                    f"chaos: injected fsync error (#{fault.index})"
                )
            # fdatasync skips the metadata flush (mtime etc.) where the
            # platform offers it; the file length change that matters
            # for replay is part of the data journal either way.
            _fdatasync(self._fh.fileno())
        if was_dirty:
            elapsed = time.perf_counter() - start
            self.groups_committed += 1
            self.commit_seconds += elapsed
            self.commit_latencies.append(elapsed)
            if not self._async:
                self._durable_lsn = self._next_lsn - 1
                self._notify_commit(self._durable_lsn)
        self._dirty = False


# ---------------------------------------------------------------------------
# Reading.


@dataclass
class WalScan:
    """Outcome of one full log read."""

    records: list[WalRecord] = field(default_factory=list)
    segments: int = 0
    compacted_segments: int = 0
    #: Checkpoint LSN a compaction assumed (0 when never compacted).
    #: Records at or below it may legitimately be missing; recovery
    #: must hold a checkpoint covering at least this LSN.
    compaction_lsn: int = 0
    #: End of a checkpoint-retention gap between the compacted
    #: generation and the surviving top-level segments (0 when none):
    #: ``retain()`` prunes whole post-compaction segments once a
    #: checkpoint covers them, so records up to this LSN are missing
    #: and recovery must hold a checkpoint covering at least it.
    retired_gap_end: int = 0
    truncated_bytes: int = 0
    truncated_segment: Optional[str] = None
    first_lsn: int = 0
    last_lsn: int = 0

    @property
    def torn_tail(self) -> bool:
        return self.truncated_bytes > 0


def _iter_frames(data: bytes) -> Iterator[tuple[int, int, bytes]]:
    """Yield ``(offset, body_offset, body)`` for intact frames.

    Stops at the first malformed frame; the caller decides whether that
    is a torn tail or corruption based on which segment it is.
    """
    offset = len(SEGMENT_MAGIC)
    size = len(data)
    while offset < size:
        if offset + _FRAME_HEADER.size > size:
            break
        length, crc = _FRAME_HEADER.unpack_from(data, offset)
        body_start = offset + _FRAME_HEADER.size
        if length < _BODY_HEADER.size or length > MAX_BODY_BYTES:
            break
        if body_start + length > size:
            break
        body = data[body_start:body_start + length]
        if zlib.crc32(body) != crc:
            break
        yield offset, body_start, body
        offset = body_start + length


def _scan_segment(
    path: Path,
    scan: WalScan,
    after_lsn: int,
    floor: int,
    expected_lsn: Optional[int],
    *,
    tolerate_tail: bool,
    repair: bool,
    first_gap_ok: bool = False,
) -> Optional[int]:
    """Read one segment into ``scan``; returns the updated expected LSN.

    ``floor`` is the compaction checkpoint LSN: gaps whose skipped
    records all sit at or below it are legitimate (compaction dropped
    them); any other gap means lost records.  ``first_gap_ok`` marks
    the first top-level segment after a compacted generation: segment
    retention may have pruned checkpoint-covered segments between the
    two, so a gap before this segment's first frame is recorded
    (``scan.retired_gap_end``) rather than treated as corruption —
    recovery verifies a checkpoint covers it.  ``tolerate_tail`` marks
    the final top-level segment, the only place a torn tail is a crash
    signature rather than corruption.
    """
    data = path.read_bytes()
    if len(data) < len(SEGMENT_MAGIC) or not data.startswith(SEGMENT_MAGIC):
        if tolerate_tail and len(data) < len(SEGMENT_MAGIC):
            # Crash between segment creation and the magic landing.
            scan.truncated_bytes += len(data)
            scan.truncated_segment = path.name
            if repair:
                path.unlink()
            return expected_lsn
        raise WalCorruptionError(f"segment {path.name} has a bad header")
    consumed = len(SEGMENT_MAGIC)
    frames = 0
    for offset, body_start, body in _iter_frames(data):
        rtype, lsn = _BODY_HEADER.unpack_from(body, 0)
        if expected_lsn is not None:
            if lsn <= expected_lsn:
                raise WalCorruptionError(
                    f"LSN order violation in {path.name}: got {lsn} "
                    f"after {expected_lsn}"
                )
            if lsn != expected_lsn + 1 and lsn > floor + 1:
                if frames == 0 and first_gap_ok:
                    # Checkpoint retention pruned the segments between
                    # the compacted generation and this one; the gap is
                    # fine iff a checkpoint covers it, which recovery
                    # checks against retired_gap_end.
                    scan.retired_gap_end = lsn - 1
                else:
                    # Contiguity, not just monotonicity: a gap above
                    # the compaction floor means records were lost (a
                    # deleted or skipped segment) and replaying past it
                    # would silently produce wrong state.
                    raise WalCorruptionError(
                        f"LSN gap in {path.name}: got {lsn} after "
                        f"{expected_lsn}"
                    )
        expected_lsn = lsn
        if scan.first_lsn == 0:
            scan.first_lsn = lsn
        scan.last_lsn = max(scan.last_lsn, lsn)
        consumed = body_start + len(body)
        frames += 1
        if lsn > after_lsn:
            scan.records.append(
                WalRecord(
                    lsn=lsn,
                    rtype=rtype,
                    payload=body[_BODY_HEADER.size:],
                )
            )
    if consumed < len(data):
        if not tolerate_tail:
            raise WalCorruptionError(
                f"corrupt frame mid-log in {path.name} "
                f"(offset {consumed})"
            )
        scan.truncated_bytes = len(data) - consumed
        scan.truncated_segment = path.name
    if tolerate_tail and repair:
        if frames == 0:
            # No intact frame survived: the whole segment is noise
            # (crash right after rotation).  Remove it so a resumed
            # writer can reuse the LSN range it claims in its name.
            path.unlink()
            if scan.truncated_bytes:
                _LOGGER.warning(
                    "removed frame-less torn segment %s", path.name
                )
        elif scan.truncated_bytes:
            with open(path, "rb+") as fh:
                fh.truncate(consumed)
            _LOGGER.warning(
                "truncated torn tail of %s: %d byte(s) dropped",
                path.name,
                scan.truncated_bytes,
            )
    return expected_lsn


def read_wal(
    directory: Union[str, Path],
    *,
    after_lsn: int = 0,
    repair: bool = True,
) -> WalScan:
    """Read every intact record with LSN ``> after_lsn``, in order.

    Compacted directories read the committed ``compacted/`` generation
    first, then the top-level tail; an interrupted compaction swap is
    repaired up front (rolled forward or back) when ``repair`` is
    true, and read through its still-committed previous generation
    when it is not.  A torn tail on the final top-level segment is
    truncated in place when ``repair`` is true (so a subsequent writer
    restart cannot be confused by it) and reported in the returned
    :class:`WalScan`.  Damage anywhere else — including inside the
    fully-fsynced compacted generation — raises
    :class:`WalCorruptionError`.
    """
    directory = Path(directory)
    if repair and directory.is_dir():
        repair_compaction(directory)
    comp_dir = directory / COMPACT_DIRNAME
    if not comp_dir.is_dir() and not repair:
        old = directory / COMPACT_OLD_DIRNAME
        if old.is_dir():
            # Read-only view of a mid-swap crash: the previous
            # generation is still the committed one.
            comp_dir = old
    manifest = None
    comp_segments: list[Path] = []
    if comp_dir.is_dir():
        manifest = _read_manifest_file(comp_dir / COMPACT_MANIFEST)
        if manifest is None:
            raise WalCorruptionError(
                f"compacted generation {comp_dir} has a missing or "
                f"malformed {COMPACT_MANIFEST}"
            )
        for name in manifest["segments"]:
            seg = comp_dir / name
            if not seg.is_file():
                raise WalCorruptionError(
                    f"compacted segment {name} is missing from {comp_dir}"
                )
            comp_segments.append(seg)
    retired = set(manifest["retired"]) if manifest is not None else set()
    floor = manifest["checkpoint_lsn"] if manifest is not None else 0
    top_segments = [
        p for p in list_segments(directory) if p.name not in retired
    ]
    scan = WalScan(
        segments=len(top_segments),
        compacted_segments=len(comp_segments),
        compaction_lsn=floor,
    )
    expected: Optional[int] = None
    for seg in comp_segments:
        expected = _scan_segment(
            seg, scan, after_lsn, floor, expected,
            tolerate_tail=False, repair=False,
        )
    for index, seg in enumerate(top_segments):
        is_last = index == len(top_segments) - 1
        expected = _scan_segment(
            seg, scan, after_lsn, floor, expected,
            tolerate_tail=is_last, repair=repair and is_last,
            # Only the compacted-to-top-level boundary may carry a
            # retention gap; top-level segments retire strictly from
            # the head, so later boundaries stay contiguous.
            first_gap_ok=index == 0 and manifest is not None,
        )
    if manifest is not None:
        # Trailing records at or below the floor may have been dropped
        # by compaction; the manifest still remembers the true end of
        # the log so a resumed writer never reuses their LSNs.
        scan.last_lsn = max(scan.last_lsn, manifest["last_lsn"])
    return scan
