"""Segmented, CRC-checked, append-only write-ahead log.

The log is a directory of segment files named ``wal-<first-lsn>.seg``
(zero-padded so lexicographic order is LSN order).  Each segment starts
with an 8-byte magic and holds a sequence of frames::

    u32  body length
    u32  CRC-32 of the body
    ...  body = u8 record type | u64 LSN | payload

LSNs (log sequence numbers) are assigned by the writer, strictly
increasing across segments; checkpoints reference them to mark how much
of the log they cover, and recovery replays only records with larger
LSNs.

Durability policy (``fsync=``):

* ``"never"`` — frames are flushed to the OS at sync points but never
  fsynced: survives process crashes, not power loss;
* ``"batch"`` — group commit: :meth:`WriteAheadLog.sync` (called by the
  service after each pump) flushes and fsyncs once per group;
* ``"always"`` — every appended frame is flushed and fsynced before
  :meth:`WriteAheadLog.append` returns.

Reading tolerates a torn tail — a partial frame or CRC mismatch at the
end of the *last* segment, the signature of a crash mid-write — by
truncating it (``repair=True``).  The same damage in an earlier segment
is real corruption and raises :class:`WalCorruptionError`.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.durable.records import RECORD_TYPES, WalRecord
from repro.utils.logging import get_logger

_LOGGER = get_logger("durable.wal")

SEGMENT_MAGIC = b"RPWAL001"
SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".seg"

#: Accepted values for the writer's ``fsync`` policy.
FSYNC_POLICIES = ("never", "batch", "always")

_FRAME_HEADER = struct.Struct("<II")  # body length, CRC-32
_BODY_HEADER = struct.Struct("<BQ")  # record type, LSN

#: Hard ceiling on a single frame body; anything larger in a file is
#: treated as corruption rather than an allocation request.
MAX_BODY_BYTES = 1 << 30

_fdatasync = getattr(os, "fdatasync", os.fsync)


def _fsync_dir(directory: Path) -> None:
    """Make a create/rename in ``directory`` itself durable.

    File data reaches the disk via fdatasync, but a freshly created
    file's *directory entry* needs its own fsync or power loss can
    leave the data unreachable.  Best-effort: platforms that cannot
    fsync a directory just skip it.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


class WalError(RuntimeError):
    """Base class for write-ahead-log failures."""


class WalCorruptionError(WalError):
    """The log is damaged somewhere recovery cannot safely skip."""


def segment_path(directory: Path, first_lsn: int) -> Path:
    return directory / f"{SEGMENT_PREFIX}{first_lsn:020d}{SEGMENT_SUFFIX}"


def list_segments(directory: Union[str, Path]) -> list[Path]:
    """Segment files in LSN order (empty when the directory is fresh)."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(
        p
        for p in directory.iterdir()
        if p.name.startswith(SEGMENT_PREFIX)
        and p.name.endswith(SEGMENT_SUFFIX)
    )


def _segment_first_lsn(path: Path) -> int:
    stem = path.name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
    try:
        return int(stem)
    except ValueError as exc:
        raise WalCorruptionError(
            f"segment {path.name} has a malformed name"
        ) from exc


class WriteAheadLog:
    """Appender for a WAL directory.

    Parameters
    ----------
    directory:
        Log directory (created if missing).  A writer never appends
        into pre-existing segments: its first append starts a fresh
        segment, which keeps resuming after recovery trivially safe.
    fsync:
        Durability policy; see the module docstring.
    max_segment_bytes:
        Rotation threshold; a segment is sealed once it reaches this
        size and the next append opens a new one.
    start_lsn:
        First LSN this writer assigns (``last recovered LSN + 1`` when
        resuming).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        fsync: str = "batch",
        max_segment_bytes: int = 64 * 1024 * 1024,
        start_lsn: int = 1,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if max_segment_bytes < len(SEGMENT_MAGIC) + _FRAME_HEADER.size:
            raise ValueError(
                f"max_segment_bytes {max_segment_bytes} cannot hold a frame"
            )
        if start_lsn < 1:
            raise ValueError(f"start_lsn must be >= 1, got {start_lsn}")
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        existing = list_segments(self._dir)
        if existing:
            last = existing[-1]
            floor = _segment_first_lsn(last) - 1
            data = last.read_bytes()
            if data.startswith(SEGMENT_MAGIC):
                for _offset, _body_start, body in _iter_frames(data):
                    _rtype, lsn = _BODY_HEADER.unpack_from(body, 0)
                    floor = lsn
            if start_lsn <= floor:
                raise WalError(
                    f"start_lsn {start_lsn} collides with existing records "
                    f"up to lsn {floor} in {last.name}; recover first"
                )
        self._fsync = fsync
        self._max_segment_bytes = max_segment_bytes
        self._next_lsn = start_lsn
        self._fh = None
        self._segment_bytes = 0
        self._dirty = False
        # Appends arrive from producer threads (budget charges) as well
        # as the pump thread (batches); one lock keeps LSNs monotonic
        # and frames contiguous.
        self._io_lock = threading.Lock()
        self.bytes_written = 0
        self.records_written = 0
        self.syncs = 0

    # ------------------------------------------------------------------
    @property
    def directory(self) -> Path:
        return self._dir

    @property
    def fsync_policy(self) -> str:
        return self._fsync

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    @property
    def last_lsn(self) -> int:
        """Highest LSN assigned so far (``start_lsn - 1`` when none)."""
        return self._next_lsn - 1

    # ------------------------------------------------------------------
    def append(self, rtype: int, payload: bytes) -> int:
        """Write one record; returns its LSN.

        Under ``fsync="always"`` the record is durable on return; under
        the other policies it becomes durable at the next :meth:`sync`.
        """
        if rtype not in RECORD_TYPES:
            raise ValueError(f"unknown record type {rtype}")
        if len(payload) + _BODY_HEADER.size > MAX_BODY_BYTES:
            raise WalError(
                f"record body of {len(payload)} bytes is too large"
            )
        with self._io_lock:
            body = _BODY_HEADER.pack(rtype, self._next_lsn) + payload
            frame = (
                _FRAME_HEADER.pack(len(body), zlib.crc32(body)) + body
            )
            if (
                self._fh is not None
                and self._segment_bytes + len(frame)
                > self._max_segment_bytes
                and self._segment_bytes > len(SEGMENT_MAGIC)
            ):
                self._seal()
            if self._fh is None:
                self._open_segment()
            self._fh.write(frame)
            self._segment_bytes += len(frame)
            self.bytes_written += len(frame)
            self.records_written += 1
            self._dirty = True
            lsn = self._next_lsn
            self._next_lsn += 1
            if self._fsync == "always":
                self._flush(force_fsync=True)
        return lsn

    def sync(self) -> None:
        """Group-commit point: flush (and fsync unless ``never``)."""
        with self._io_lock:
            if not self._dirty:
                return
            self._flush(force_fsync=self._fsync != "never")
            self.syncs += 1

    def retain(self, lsn: int) -> list[Path]:
        """Delete sealed segments fully covered by a checkpoint at ``lsn``.

        A segment is removable when the *next* segment starts at or
        below ``lsn + 1`` — every record it holds then has an LSN
        ``<= lsn``.  The active segment is never removed.  Returns the
        deleted paths.
        """
        segments = list_segments(self._dir)
        removed: list[Path] = []
        for current, successor in zip(segments, segments[1:]):
            if _segment_first_lsn(successor) <= lsn + 1:
                current.unlink()
                removed.append(current)
            else:
                break
        if removed:
            _LOGGER.debug(
                "retention at lsn %d removed %d segment(s)", lsn, len(removed)
            )
        return removed

    def close(self) -> None:
        with self._io_lock:
            if self._fh is not None:
                self._flush(force_fsync=self._fsync != "never")
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _open_segment(self) -> None:
        path = segment_path(self._dir, self._next_lsn)
        if path.exists():
            # A frame-less leftover (crash between rotation and the
            # first frame surviving) carries no records and may be
            # replaced; anything with content is a real collision.
            if path.stat().st_size > len(SEGMENT_MAGIC):
                raise WalError(f"segment {path.name} already exists")
        self._fh = open(path, "wb")
        self._fh.write(SEGMENT_MAGIC)
        self._segment_bytes = len(SEGMENT_MAGIC)
        if self._fsync != "never":
            # The new directory entry must survive power loss too, or
            # every "durable" frame in this segment is unreachable.
            self._fh.flush()
            _fdatasync(self._fh.fileno())
            _fsync_dir(self._dir)

    def _seal(self) -> None:
        self._flush(force_fsync=self._fsync != "never")
        self._fh.close()
        self._fh = None
        self._segment_bytes = 0

    def _flush(self, *, force_fsync: bool) -> None:
        if self._fh is None:
            return
        self._fh.flush()
        if force_fsync:
            # fdatasync skips the metadata flush (mtime etc.) where the
            # platform offers it; the file length change that matters
            # for replay is part of the data journal either way.
            _fdatasync(self._fh.fileno())
        self._dirty = False


# ---------------------------------------------------------------------------
# Reading.


@dataclass
class WalScan:
    """Outcome of one full log read."""

    records: list[WalRecord] = field(default_factory=list)
    segments: int = 0
    truncated_bytes: int = 0
    truncated_segment: Optional[str] = None
    first_lsn: int = 0
    last_lsn: int = 0

    @property
    def torn_tail(self) -> bool:
        return self.truncated_bytes > 0


def _iter_frames(data: bytes) -> Iterator[tuple[int, int, bytes]]:
    """Yield ``(offset, body_offset, body)`` for intact frames.

    Stops at the first malformed frame; the caller decides whether that
    is a torn tail or corruption based on which segment it is.
    """
    offset = len(SEGMENT_MAGIC)
    size = len(data)
    while offset < size:
        if offset + _FRAME_HEADER.size > size:
            break
        length, crc = _FRAME_HEADER.unpack_from(data, offset)
        body_start = offset + _FRAME_HEADER.size
        if length < _BODY_HEADER.size or length > MAX_BODY_BYTES:
            break
        if body_start + length > size:
            break
        body = data[body_start:body_start + length]
        if zlib.crc32(body) != crc:
            break
        yield offset, body_start, body
        offset = body_start + length


def read_wal(
    directory: Union[str, Path],
    *,
    after_lsn: int = 0,
    repair: bool = True,
) -> WalScan:
    """Read every intact record with LSN ``> after_lsn``, in order.

    A torn tail on the final segment is truncated in place when
    ``repair`` is true (so a subsequent writer restart cannot be
    confused by it) and reported in the returned :class:`WalScan`.
    Damage anywhere else raises :class:`WalCorruptionError`.
    """
    segments = list_segments(directory)
    scan = WalScan(segments=len(segments))
    expected_lsn: Optional[int] = None
    for index, path in enumerate(segments):
        is_last = index == len(segments) - 1
        data = path.read_bytes()
        if len(data) < len(SEGMENT_MAGIC) or not data.startswith(
            SEGMENT_MAGIC
        ):
            if is_last and len(data) < len(SEGMENT_MAGIC):
                # Crash between segment creation and the magic landing.
                scan.truncated_bytes += len(data)
                scan.truncated_segment = path.name
                if repair:
                    path.unlink()
                break
            raise WalCorruptionError(f"segment {path.name} has a bad header")
        consumed = len(SEGMENT_MAGIC)
        frames = 0
        for offset, body_start, body in _iter_frames(data):
            rtype, lsn = _BODY_HEADER.unpack_from(body, 0)
            if expected_lsn is not None and lsn != expected_lsn + 1:
                # Contiguity, not just monotonicity: a gap means
                # records were lost (a deleted or skipped segment) and
                # replaying past it would silently produce wrong state.
                raise WalCorruptionError(
                    f"LSN gap in {path.name}: got {lsn} after "
                    f"{expected_lsn}"
                )
            expected_lsn = lsn
            if scan.first_lsn == 0:
                scan.first_lsn = lsn
            scan.last_lsn = lsn
            consumed = body_start + len(body)
            frames += 1
            if lsn > after_lsn:
                scan.records.append(
                    WalRecord(
                        lsn=lsn,
                        rtype=rtype,
                        payload=body[_BODY_HEADER.size:],
                    )
                )
        if consumed < len(data):
            if not is_last:
                raise WalCorruptionError(
                    f"corrupt frame mid-log in {path.name} "
                    f"(offset {consumed})"
                )
            scan.truncated_bytes = len(data) - consumed
            scan.truncated_segment = path.name
        if is_last and repair:
            if frames == 0:
                # No intact frame survived: the whole segment is noise
                # (crash right after rotation).  Remove it so a resumed
                # writer can reuse the LSN range it claims in its name.
                path.unlink()
                if scan.truncated_bytes:
                    _LOGGER.warning(
                        "removed frame-less torn segment %s", path.name
                    )
            elif scan.truncated_bytes:
                with open(path, "rb+") as fh:
                    fh.truncate(consumed)
                _LOGGER.warning(
                    "truncated torn tail of %s: %d byte(s) dropped",
                    path.name,
                    scan.truncated_bytes,
                )
    return scan
