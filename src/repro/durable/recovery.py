"""Crash recovery: rebuild an ingestion service from its durability dir.

:class:`RecoveryManager` performs the standard WAL recovery protocol:

1. load the newest readable checkpoint (unreadable ones are skipped);
2. rebuild the service — configuration, campaigns, user tables,
   aggregator state, privacy-budget ledger — from the checkpoint (or,
   with no checkpoint, from the log's CONFIG/REGISTER records);
3. replay the log suffix (records with LSN above the checkpoint's) in
   order: registrations, user-slot assignments, micro-batches straight
   into the campaign aggregators, and ledger charges;
4. truncate any torn tail left by the crash.

Replay feeds each logged batch through the same
``IncrementalAggregator.ingest`` call the live shard used, so the
recovered aggregation state is a pure function of the logged batch
sequence — bit-for-bit identical to a service that ingested exactly
those batches.  Claims that were accepted but still buffered in a
micro-batcher at crash time were never logged and are lost; their
budget charges, which *were* logged at admission, stay spent (the
privacy-safe direction).  Under ``async_commit`` the same applies one
level down: records staged for the background writer but never
committed (beyond the durable-ack watermark) are a lost *suffix* —
everything at or below the watermark replays.

Compacted logs (see :mod:`repro.durable.compaction`) recover through
the same protocol — an interrupted compaction swap is rolled forward
or back by ``read_wal`` before replay — with one extra guard: a
compacted log requires a checkpoint covering the records compaction
dropped, and recovery refuses (rather than silently rebuilding wrong
truths) when every such checkpoint is unreadable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.durable import records as rec
from repro.durable.checkpoint import Checkpoint, CheckpointStore
from repro.durable.manager import (
    DurabilityConfig,
    DurabilityManager,
    _ShadowCounters,
)
from repro.durable.wal import WalScan, read_wal
from repro.privacy.ldp import LDPGuarantee
from repro.truthdiscovery.streaming import ClaimBatch
from repro.utils.logging import get_logger

_LOGGER = get_logger("durable.recovery")


class RecoveryError(RuntimeError):
    """The durability directory cannot be turned back into a service."""


@dataclass
class RecoveryReport:
    """What one recovery pass did (for logs, tests, and the CLI)."""

    directory: str
    checkpoint_lsn: int = 0
    last_lsn: int = 0
    records_replayed: int = 0
    registers_replayed: int = 0
    batches_replayed: int = 0
    claims_replayed: int = 0
    charges_replayed: int = 0
    batches_skipped: int = 0
    truncated_bytes: int = 0
    campaigns: list[str] = field(default_factory=list)
    seconds: float = 0.0

    def as_dict(self) -> dict:
        """JSON-friendly summary (CLI / benchmark output)."""
        return {
            "directory": self.directory,
            "checkpoint_lsn": self.checkpoint_lsn,
            "last_lsn": self.last_lsn,
            "records_replayed": self.records_replayed,
            "registers_replayed": self.registers_replayed,
            "batches_replayed": self.batches_replayed,
            "claims_replayed": self.claims_replayed,
            "charges_replayed": self.charges_replayed,
            "batches_skipped": self.batches_skipped,
            "truncated_bytes": self.truncated_bytes,
            "campaigns": list(self.campaigns),
            "seconds": self.seconds,
        }

    def summary(self) -> str:
        """One-paragraph human rendering."""
        return (
            f"recovered {len(self.campaigns)} campaign(s) from "
            f"{self.directory}: checkpoint at lsn {self.checkpoint_lsn}, "
            f"replayed {self.batches_replayed} batch(es) / "
            f"{self.claims_replayed} claim(s) / "
            f"{self.charges_replayed} charge(s) up to lsn {self.last_lsn}"
            + (
                f", truncated {self.truncated_bytes} torn byte(s)"
                if self.truncated_bytes
                else ""
            )
            + f" in {self.seconds * 1e3:.1f} ms"
        )


@dataclass
class RecoveredService:
    """A rebuilt service plus the recovery report (and optional logger)."""

    service: "IngestService"  # noqa: F821 - forward ref, see recover()
    report: RecoveryReport
    durability: Optional[DurabilityManager] = None
    #: Registration specs of every live campaign (what a resumed or
    #: promoted logger needs to seed its bookkeeping).
    specs: dict = field(default_factory=dict)


class RecordApplier:
    """Applies WAL records to a live service, one at a time.

    This is the single definition of replay semantics: crash recovery
    drives it over a full log scan, and a replication standby drives it
    continuously as records arrive off the wire — both produce state
    that is a pure function of the record sequence, which is what makes
    recovered and promoted truths bitwise-equal to the primary's.
    """

    def __init__(
        self,
        service,
        *,
        specs: Optional[dict] = None,
        report: Optional[RecoveryReport] = None,
    ) -> None:
        self.service = service
        self.specs: dict[str, dict] = specs if specs is not None else {}
        self.report = (
            report
            if report is not None
            else RecoveryReport(directory="")
        )

    def apply(self, record: rec.WalRecord) -> None:
        """Apply one decoded record (CONFIG records are no-ops)."""
        service = self.service
        if record.rtype == rec.CONFIG:
            return
        self.report.records_replayed += 1
        if record.rtype == rec.REGISTER:
            spec = record.decode()
            register_from_spec(service, spec)
            self.specs[spec["campaign_id"]] = spec
            self.report.registers_replayed += 1
        elif record.rtype == rec.UNREGISTER:
            campaign_id = record.decode()["campaign_id"]
            if service.has_campaign(campaign_id):
                service.unregister_campaign(campaign_id)
            self.specs.pop(campaign_id, None)
        elif record.rtype == rec.USERS:
            self._apply_users(record.decode())
        elif record.rtype == rec.REFRESH:
            campaign_id = record.decode()["campaign_id"]
            if service.has_campaign(campaign_id):
                state = service.campaign_state(campaign_id)
                state.aggregator.refresh()
        elif record.rtype == rec.BATCH:
            self._apply_batch(record.decode())
        elif record.rtype == rec.CHARGE:
            body = record.decode()
            if service.ledger is not None:
                service.ledger.record_spent(
                    body["user_id"],
                    LDPGuarantee(
                        epsilon=body["epsilon"], delta=body["delta"]
                    ),
                )
            self.report.charges_replayed += 1

    def _apply_users(self, body: dict) -> None:
        service = self.service
        campaign_id = body["campaign_id"]
        if not service.has_campaign(campaign_id):
            return
        state = service.campaign_state(campaign_id)
        for offset, user_id in enumerate(body["user_ids"]):
            slot = int(body["start"]) + offset
            if slot < len(state.user_table):
                # The checkpointed user table already covers this slot
                # (it is captured live and may run ahead of the log).
                continue
            if slot != len(state.user_table):
                raise RecoveryError(
                    f"user-table gap for {campaign_id!r}: record starts at "
                    f"slot {slot}, table has {len(state.user_table)}"
                )
            state.user_table.append(user_id)
            state.user_index[user_id] = slot

    def _apply_batch(self, item: rec.WorkItem) -> None:
        service = self.service
        if not service.has_campaign(item.campaign_id):
            # A batch for a campaign the log never registered (or that
            # a later checkpoint no longer knows): nothing to feed.
            self.report.batches_skipped += 1
            _LOGGER.warning(
                "skipping logged batch for unknown campaign %r",
                item.campaign_id,
            )
            return
        state = service.campaign_state(item.campaign_id)
        top_slot = int(item.user_slots.max())
        if top_slot >= state.capacity:
            raise RecoveryError(
                f"logged batch for {item.campaign_id!r} references slot "
                f"{top_slot} beyond capacity {state.capacity}"
            )
        # Belt and braces: a USERS record always precedes its batch in
        # the log, but placeholder ids keep replay total if one is lost.
        state.ensure_placeholder_slots(top_slot)
        state.aggregator.ingest(
            ClaimBatch(
                users=item.user_slots,
                objects=item.object_slots,
                values=item.values,
            )
        )
        state.claims_accepted += item.size
        state.claims_by_slot += np.bincount(
            item.user_slots, minlength=state.capacity
        )
        self.report.batches_replayed += 1
        self.report.claims_replayed += item.size


def attach_resumed_durability(
    service,
    specs: dict,
    last_lsn: int,
    directory: Union[str, Path],
    durability_config: Optional[DurabilityConfig] = None,
) -> DurabilityManager:
    """Give a replayed service a fresh logger continuing after ``last_lsn``.

    This is the promotion step shared by crash recovery's ``resume``
    path and a replication standby's ``promote()``: a new
    :class:`DurabilityManager` starts at ``last_lsn + 1``, its shadow
    counters are seeded from the live campaign state (so checkpoints
    stay truthful without a re-scan), and a post-attach checkpoint
    bounds the next crash's replay.
    """
    if durability_config is None:
        durability_config = DurabilityConfig(directory=Path(directory))
    manager = DurabilityManager(
        durability_config, start_lsn=last_lsn + 1
    )
    shadows = {}
    users_synced = {}
    for campaign_id in specs:
        state = service.campaign_state(campaign_id)
        shadows[campaign_id] = _ShadowCounters(
            claims=state.claims_accepted,
            by_slot=state.claims_by_slot.copy(),
        )
        users_synced[campaign_id] = len(state.user_table)
    manager.seed_recovered_state(
        specs=specs, shadows=shadows, users_synced=users_synced
    )
    service.attach_durability(manager)
    # A fresh checkpoint bounds the next crash's replay and lets
    # retention drop the pre-crash segments.
    manager.checkpoint()
    return manager


class RecoveryManager:
    """Rebuilds :class:`~repro.service.ingest.IngestService` state.

    Parameters
    ----------
    directory:
        The durability directory a :class:`DurabilityManager` wrote.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self._dir = Path(directory)

    # ------------------------------------------------------------------
    def recover(
        self,
        *,
        config=None,
        accountant=None,
        resume: bool = False,
        durability_config: Optional[DurabilityConfig] = None,
        repair: bool = True,
    ) -> RecoveredService:
        """Run the full recovery protocol; returns the rebuilt service.

        Parameters
        ----------
        config:
            Optional :class:`~repro.service.ingest.ServiceConfig`
            override; by default the persisted configuration is used.
        accountant:
            Optional audit accountant to wire into the recovered
            ledger (event history is not persisted, only totals).
        resume:
            When true, attach a fresh :class:`DurabilityManager` to the
            recovered service (continuing LSNs after the recovered
            tail) and write a post-recovery checkpoint so old segments
            can be retired.
        durability_config:
            Policies for the resumed manager (defaults to this
            directory with default policies).  Ignored unless
            ``resume``.
        repair:
            Truncate a torn WAL tail in place (disable for read-only
            inspection of a damaged directory).
        """
        from repro.service.ingest import IngestService, ServiceConfig

        start = time.perf_counter()
        if not self._dir.is_dir():
            raise RecoveryError(f"no durability directory at {self._dir}")
        checkpoint = CheckpointStore(self._dir).load_latest()
        after_lsn = checkpoint.lsn if checkpoint is not None else 0
        scan = read_wal(self._dir, after_lsn=after_lsn, repair=repair)
        if scan.compaction_lsn > after_lsn:
            # Compaction dropped records at or below its checkpoint LSN
            # on the promise that a checkpoint covering them exists.
            # Without one, replaying the compacted log would silently
            # rebuild wrong truths (the dropped batches are gone).
            raise RecoveryError(
                f"log was compacted against a checkpoint at lsn "
                f"{scan.compaction_lsn} but the newest readable "
                f"checkpoint covers only lsn {after_lsn}; the records "
                f"compaction dropped cannot be replayed"
            )
        if scan.retired_gap_end > after_lsn:
            # Same promise, made by segment retention after a
            # compaction: the pruned post-compaction segments were
            # covered by a checkpoint when retain() dropped them.
            raise RecoveryError(
                f"segment retention pruned records up to lsn "
                f"{scan.retired_gap_end} but the newest readable "
                f"checkpoint covers only lsn {after_lsn}; the retired "
                f"records cannot be replayed"
            )
        if scan.first_lsn > after_lsn + 1:
            # The log's oldest surviving record sits beyond what the
            # checkpoint covers: records in between are gone (e.g. the
            # newest checkpoint was lost after retention already pruned
            # the segments it covered).  Replaying past the gap would
            # silently drop claims and budget charges.
            raise RecoveryError(
                f"log gap: checkpoint covers up to lsn {after_lsn} but "
                f"the oldest surviving record is lsn {scan.first_lsn}; "
                f"records in between are lost"
            )
        report = RecoveryReport(
            directory=str(self._dir),
            checkpoint_lsn=after_lsn,
            last_lsn=max(scan.last_lsn, after_lsn),
            truncated_bytes=scan.truncated_bytes,
        )

        service_config, ledger = self._bootstrap(
            checkpoint, scan, accountant
        )
        if config is not None:
            service_config = config
        if service_config is None:
            service_config = ServiceConfig()
        service = IngestService(service_config, ledger=ledger)

        specs: dict[str, dict] = {}
        if checkpoint is not None:
            self._restore_checkpoint(service, checkpoint, specs)
        self._replay(service, scan, specs, report)
        report.campaigns = service.campaign_ids
        report.seconds = time.perf_counter() - start
        _LOGGER.info("%s", report.summary())

        durability = None
        if resume:
            durability = self._resume(
                service, specs, report, durability_config
            )
        return RecoveredService(
            service=service,
            report=report,
            durability=durability,
            specs=specs,
        )

    # ------------------------------------------------------------------
    def _bootstrap(self, checkpoint, scan, accountant):
        """Service config + ledger from checkpoint or CONFIG record."""
        from repro.service.ingest import ServiceConfig
        from repro.service.ledger import BudgetLedger

        if checkpoint is not None:
            payload = checkpoint.payload
            service_config = ServiceConfig(**payload["service_config"])
            ledger_state = payload.get("ledger")
            ledger = None
            if ledger_state is not None:
                ledger = BudgetLedger.from_records(
                    ledger_state["records"],
                    epsilon_cap=ledger_state["epsilon_cap"],
                    delta_cap=ledger_state["delta_cap"],
                    accountant=accountant,
                )
            return service_config, ledger
        for record in scan.records:
            if record.rtype == rec.CONFIG:
                body = record.decode()
                service_config = ServiceConfig(**body["service_config"])
                caps = body.get("ledger")
                ledger = None
                if caps is not None:
                    ledger = BudgetLedger(
                        caps["epsilon_cap"],
                        delta_cap=caps["delta_cap"],
                        accountant=accountant,
                    )
                return service_config, ledger
        return None, None

    def _restore_checkpoint(
        self, service, checkpoint: Checkpoint, specs: dict
    ) -> None:
        for entry in checkpoint.payload.get("campaigns", []):
            spec = entry["spec"]
            campaign_id = spec["campaign_id"]
            self._register_from_spec(service, spec)
            specs[campaign_id] = spec
            state = service.campaign_state(campaign_id)
            user_table = list(entry["user_table"])
            if len(user_table) > state.capacity:
                raise RecoveryError(
                    f"checkpointed user table for {campaign_id!r} exceeds "
                    f"capacity {state.capacity}"
                )
            state.user_table = user_table
            state.user_index = {u: i for i, u in enumerate(user_table)}
            by_slot = np.asarray(
                entry["claims_by_slot"], dtype=np.int64
            ).copy()
            if by_slot.shape != (state.capacity,):
                raise RecoveryError(
                    f"checkpointed claim counters for {campaign_id!r} have "
                    f"shape {by_slot.shape}, expected ({state.capacity},)"
                )
            state.claims_by_slot = by_slot
            state.claims_accepted = int(entry["claims_accepted"])
            state.aggregator.load_state(entry["aggregator"])

    def _replay(
        self, service, scan: WalScan, specs: dict, report: RecoveryReport
    ) -> None:
        applier = RecordApplier(service, specs=specs, report=report)
        for record in scan.records:
            applier.apply(record)

    def _resume(
        self, service, specs, report, durability_config
    ) -> DurabilityManager:
        return attach_resumed_durability(
            service,
            specs,
            report.last_lsn,
            self._dir,
            durability_config,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _register_from_spec(service, spec: dict) -> None:
        register_from_spec(service, spec)


def register_from_spec(service, spec: dict) -> None:
    """Re-register a campaign from its persisted REGISTER spec."""
    cost = spec.get("cost")
    if service.has_campaign(spec["campaign_id"]):
        raise RecoveryError(
            f"duplicate registration for {spec['campaign_id']!r} in log"
        )
    from repro.service.aggregator import _streaming_unsupported_kwargs

    method = spec.get("method", "crh")
    aggregator = spec.get("aggregator", "auto")
    method_kwargs = dict(spec.get("method_kwargs") or {})
    if aggregator == "auto":
        # Format-v1 logs stored the unresolved kind; since then the
        # auto rule changed (GTM/CATD now stream at scale) and
        # registration persists the resolved kind instead.  Replay
        # must rebuild the backend the live v1 service actually ran
        # — the checkpointed aggregator state and the logged-batch
        # semantics both depend on it — so re-apply the v1 rule
        # here: stream only large plain-CRH campaigns (v1 never
        # considered method kwargs).
        config = service.config
        cells = int(spec["max_users"]) * len(spec["object_ids"])
        if config.decay < 1.0:
            aggregator = "streaming"
        elif cells <= config.full_refit_max_cells or method != "crh":
            aggregator = "full"
        else:
            aggregator = "streaming"
    if aggregator == "streaming":
        # v1 never forwarded method kwargs into its streaming
        # backend, so v1 logs can pair a streaming campaign with
        # batch-only knobs; drop what the estimator cannot accept,
        # exactly as the v1 construction did.  v2 registrations
        # validated this up front and carry nothing unsupported.
        for key in _streaming_unsupported_kwargs(method, method_kwargs):
            method_kwargs.pop(key)
    service.register_campaign(
        spec["campaign_id"],
        list(spec["object_ids"]),
        max_users=int(spec["max_users"]),
        user_ids=spec.get("user_ids") or None,
        method=method,
        aggregator=aggregator,
        cost=(
            None
            if cost is None
            else LDPGuarantee(
                epsilon=cost["epsilon"], delta=cost["delta"]
            )
        ),
        **method_kwargs,
    )
