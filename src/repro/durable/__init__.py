"""Durable ingestion: write-ahead log, checkpoints, crash recovery.

The serving layer (:mod:`repro.service`) holds campaign state in
memory; this package makes that state survive a crash:

* :class:`WriteAheadLog` — segmented, CRC-checked, append-only log of
  every accepted micro-batch (plus campaign registrations, user-slot
  assignments, and privacy-budget charges), with ``never`` / ``batch``
  / ``always`` fsync policies, segment rotation, and retention;
* :class:`CheckpointStore` — atomic snapshots of per-campaign
  aggregator state and the :class:`~repro.service.ledger.BudgetLedger`,
  bounding how much log a restart must replay;
* :class:`DurabilityManager` — the hook an
  :class:`~repro.service.ingest.IngestService` attaches
  (``durability=``): it logs each flushed micro-batch *before* the
  aggregator sees it and drives group commit and automatic
  checkpoints;
* :class:`RecoveryManager` — rebuilds the service after a crash from
  the latest valid checkpoint plus the log suffix, truncating any torn
  tail, with bit-for-bit identical truths on the replayed batches;
* :class:`WorkItem` — the serialisable work-item format the log (and a
  future multi-process shard deployment) moves around;
* :func:`run_durability_bench` — the logged-vs-unlogged throughput and
  recovery-time benchmark behind ``repro durable-bench``.
"""

from repro.durable.bench import format_durability_summary, run_durability_bench
from repro.durable.checkpoint import (
    Checkpoint,
    CheckpointError,
    CheckpointStore,
)
from repro.durable.manager import (
    DurabilityConfig,
    DurabilityManager,
    FORMAT_VERSION,
)
from repro.durable.records import RecordError, WalRecord, WorkItem
from repro.durable.recovery import (
    RecoveredService,
    RecoveryError,
    RecoveryManager,
    RecoveryReport,
)
from repro.durable.wal import (
    FSYNC_POLICIES,
    WalCorruptionError,
    WalError,
    WalScan,
    WriteAheadLog,
    read_wal,
)

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "CheckpointStore",
    "DurabilityConfig",
    "DurabilityManager",
    "FORMAT_VERSION",
    "FSYNC_POLICIES",
    "RecordError",
    "RecoveredService",
    "RecoveryError",
    "RecoveryManager",
    "RecoveryReport",
    "WalCorruptionError",
    "WalError",
    "WalRecord",
    "WalScan",
    "WorkItem",
    "WriteAheadLog",
    "format_durability_summary",
    "read_wal",
    "run_durability_bench",
]
