"""Durable ingestion: write-ahead log, checkpoints, crash recovery.

The serving layer (:mod:`repro.service`) holds campaign state in
memory; this package makes that state survive a crash:

* :class:`WriteAheadLog` — segmented, CRC-checked, append-only log of
  every accepted micro-batch (plus campaign registrations, user-slot
  assignments, and privacy-budget charges), with ``never`` / ``batch``
  / ``always`` fsync policies, segment rotation, and retention.  With
  ``async_commit`` a background writer thread owns all write+fsync
  work: appends stage frames in a double-buffered queue, the writer
  commits them in groups (one write + one fdatasync each), and the
  monotone ``durable_lsn`` watermark plus ``wait_durable(lsn)`` give
  callers a durable-ack primitive — ``always`` means "acknowledged
  after durable" via grouped syncs instead of one fdatasync per frame,
  and ``batch`` group-commit latency leaves the ingest thread
  entirely;
* :func:`compact_directory` /
  :meth:`~repro.durable.manager.DurabilityManager.compact` —
  claim-granular log compaction: rewrite the live records (the
  post-checkpoint suffix, current registrations, all budget charges)
  into fresh segments behind an atomic temp-dir + rename +
  directory-fsync swap, so disk usage is bounded by live state rather
  than segment boundaries; a crash at any point mid-swap is rolled
  forward or back on the next open;
* :class:`CompactionPolicy` / :class:`CompactionDaemon` — background
  policy engine (disk-usage and segment-age thresholds) that requests
  compactions; the work itself runs at the manager's pump-side quiesce
  point, never from the daemon thread;
* :class:`CheckpointStore` — atomic snapshots of per-campaign
  aggregator state and the :class:`~repro.service.ledger.BudgetLedger`,
  bounding how much log a restart must replay;
* :class:`DurabilityManager` — the hook an
  :class:`~repro.service.ingest.IngestService` attaches
  (``durability=``): it logs each flushed micro-batch *before* the
  aggregator sees it and drives group commit and automatic
  checkpoints;
* :class:`RecoveryManager` — rebuilds the service after a crash from
  the latest valid checkpoint plus the log suffix, truncating any torn
  tail, with bit-for-bit identical truths on the replayed batches
  (including after async-commit crashes and mid-compaction crashes);
* :class:`WorkItem` — the serialisable work-item format the log (and
  the multi-process shard workers) move around;
* :func:`run_durability_bench` — the logged-vs-unlogged throughput,
  commit-latency, compaction, and recovery benchmark behind
  ``repro durable-bench``.
"""

from repro.durable.bench import format_durability_summary, run_durability_bench
from repro.durable.checkpoint import (
    Checkpoint,
    CheckpointError,
    CheckpointStore,
)
from repro.durable.compaction import (
    CompactionInterrupted,
    CompactionReport,
    compact_directory,
)
from repro.durable.daemon import CompactionDaemon, CompactionPolicy
from repro.durable.manager import (
    DurabilityConfig,
    DurabilityManager,
    FORMAT_VERSION,
)
from repro.durable.records import RecordError, WalRecord, WorkItem
from repro.durable.recovery import (
    RecordApplier,
    RecoveredService,
    RecoveryError,
    RecoveryManager,
    RecoveryReport,
    attach_resumed_durability,
)
from repro.durable.stream import TailGapError, WalTailReader
from repro.durable.wal import (
    FSYNC_POLICIES,
    WalCorruptionError,
    WalError,
    WalScan,
    WriteAheadLog,
    load_compaction_manifest,
    read_wal,
    repair_compaction,
)

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "CheckpointStore",
    "CompactionDaemon",
    "CompactionInterrupted",
    "CompactionPolicy",
    "CompactionReport",
    "DurabilityConfig",
    "DurabilityManager",
    "FORMAT_VERSION",
    "FSYNC_POLICIES",
    "RecordApplier",
    "RecordError",
    "RecoveredService",
    "RecoveryError",
    "RecoveryManager",
    "RecoveryReport",
    "TailGapError",
    "WalCorruptionError",
    "WalError",
    "WalRecord",
    "WalScan",
    "WalTailReader",
    "WorkItem",
    "WriteAheadLog",
    "attach_resumed_durability",
    "compact_directory",
    "format_durability_summary",
    "load_compaction_manifest",
    "read_wal",
    "repair_compaction",
    "run_durability_bench",
]
