"""Durability benchmark: logged vs unlogged throughput, recovery time.

Shared by the ``repro durable-bench`` CLI subcommand and
``benchmarks/bench_durability.py``.  Four measured quantities:

* **unlogged** — the bulk columnar ingest path with no durability, the
  PR-1 baseline;
* **logged** — the same traffic with a write-ahead log attached, one
  run per fsync policy (``never`` / ``batch`` / ``always``; the
  ``always`` run uses a reduced claim count because an fsync per
  micro-batch is orders of magnitude slower and only its *rate*
  matters);
* **recovery** — time to rebuild the service by replaying the full log
  produced by the ``batch`` run, and — in a separate checkpointed run —
  by loading the latest checkpoint plus the log suffix;
* **fidelity** — whether the recovered truths are bit-for-bit equal to
  the live service's truths at the moment the log was closed.

Traffic is materialised before any clock starts, and the same chunk
sequence is fed to every run, so ratios isolate the durability cost.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path
from typing import Optional

import numpy as np

from repro.durable.manager import DurabilityConfig, DurabilityManager
from repro.durable.recovery import RecoveryManager
from repro.durable.wal import FSYNC_POLICIES, list_segments
from repro.service.ingest import IngestService, ServiceConfig
from repro.service.loadgen import LoadGenerator


def _make_traffic(
    *,
    total_claims: int,
    num_campaigns: int,
    users_per_campaign: int,
    objects_per_campaign: int,
    chunk_size: int,
    seed: int,
) -> tuple[list, list]:
    """Pre-materialise campaigns and chunk traffic shared by all runs."""
    campaigns = []
    chunks = []
    per_campaign = max(total_claims // num_campaigns, 1)
    for c in range(num_campaigns):
        gen = LoadGenerator(
            f"durable-c{c}",
            num_users=users_per_campaign,
            num_objects=objects_per_campaign,
            random_state=seed + c,
        )
        campaigns.append(gen)
        chunks.extend(gen.column_chunks(per_campaign, chunk_size=chunk_size))
    return campaigns, chunks


def _register_all(service: IngestService, campaigns: list) -> None:
    for gen in campaigns:
        service.register_campaign(
            gen.campaign_id,
            gen.object_ids,
            max_users=gen.num_users,
            user_ids=gen.user_ids,
        )


def _run_ingest(service: IngestService, chunks: list) -> float:
    start = time.perf_counter()
    for i, chunk in enumerate(chunks):
        service.submit_columns(
            chunk.campaign_id,
            chunk.user_slots,
            chunk.object_slots,
            chunk.values,
        )
        # Pump (= group-commit, when a WAL is attached) every 32 chunks:
        # a bulk-load cadence, applied identically to the unlogged
        # baseline so the ratio isolates the durability cost.
        if i % 32 == 31:
            service.pump()
    service.flush()
    return time.perf_counter() - start


def _final_truths(service: IngestService, campaigns: list) -> dict:
    return {
        gen.campaign_id: service.snapshot(gen.campaign_id).truths
        for gen in campaigns
    }


def _logged_run(
    *,
    directory: Path,
    fsync: str,
    config: ServiceConfig,
    campaigns: list,
    chunks: list,
    checkpoint_every_claims: int = 0,
    reps: int = 1,
) -> tuple[dict, dict]:
    """WAL-attached ingest runs (best of ``reps``); returns (metrics,
    final truths).

    fsync latency is noisy on most filesystems, so each policy is
    measured ``reps`` times into sibling directories and the fastest
    run is reported; ``directory`` keeps the log of the reported run
    (the content is identical across reps — the pipeline is
    deterministic), so recovery measurements read a real artefact.
    """
    best = None
    for rep in range(max(reps, 1)):
        rep_dir = directory if rep == 0 else Path(
            f"{directory}-rep{rep}"
        )
        # A re-run with a persistent --dir would otherwise collide with
        # the previous run's segments (WalError: recover first); these
        # subdirectories are bench artefacts, so regenerate them.
        if rep_dir.exists():
            shutil.rmtree(rep_dir)
        manager = DurabilityManager(
            DurabilityConfig(
                directory=rep_dir,
                fsync=fsync,
                checkpoint_every_claims=checkpoint_every_claims,
            )
        )
        service = IngestService(config, durability=manager)
        _register_all(service, campaigns)
        elapsed = _run_ingest(service, chunks)
        truths = _final_truths(service, campaigns)
        manager.sync()
        wal_bytes = manager.wal.bytes_written
        metrics = {
            "claims": int(service.stats.claims_accepted),
            "seconds": elapsed,
            "claims_per_sec": service.stats.claims_accepted
            / max(elapsed, 1e-9),
            "wal_bytes": int(wal_bytes),
            "wal_records": int(manager.wal.records_written),
            "wal_syncs": int(manager.wal.syncs),
            "wal_segments": len(list_segments(rep_dir)),
            "checkpoints_written": int(manager.checkpoints_written),
            "bytes_per_claim": wal_bytes
            / max(service.stats.claims_accepted, 1),
        }
        manager.close()
        if rep > 0:
            shutil.rmtree(rep_dir, ignore_errors=True)
        if best is None or metrics["seconds"] < best[0]["seconds"]:
            best = (metrics, truths)
    return best


def _recover_run(directory: Path, campaigns: list, live_truths: dict) -> dict:
    start = time.perf_counter()
    recovered = RecoveryManager(directory).recover()
    elapsed = time.perf_counter() - start
    matches = all(
        np.array_equal(
            live_truths[gen.campaign_id],
            recovered.service.snapshot(gen.campaign_id).truths,
        )
        for gen in campaigns
    )
    report = recovered.report
    return {
        "seconds": elapsed,
        "claims_per_sec": report.claims_replayed / max(elapsed, 1e-9),
        "checkpoint_lsn": report.checkpoint_lsn,
        "records_replayed": report.records_replayed,
        "claims_replayed": report.claims_replayed,
        "truths_match_bitwise": bool(matches),
    }


def run_durability_bench(
    *,
    total_claims: int = 200_000,
    always_claims: Optional[int] = None,
    num_campaigns: int = 4,
    users_per_campaign: int = 200,
    objects_per_campaign: int = 48,
    num_shards: int = 4,
    max_batch: int = 2048,
    chunk_size: int = 2048,
    fsync_modes: tuple = FSYNC_POLICIES,
    seed: int = 2020,
    directory: Optional[str] = None,
    reps: int = 3,
    smoke: bool = False,
) -> dict:
    """Run every measured path; returns a JSON-serialisable summary.

    Each throughput path is measured ``reps`` times (best run
    reported) because fsync latency is noisy.  ``smoke`` shrinks the
    workload to a few thousand claims so CI can exercise the full code
    path in a couple of seconds.
    """
    if smoke:
        total_claims = min(total_claims, 12_000)
        always_claims = min(always_claims or 2_000, 2_000)
        num_campaigns = min(num_campaigns, 2)
        reps = min(reps, 2)
    if always_claims is None:
        always_claims = max(total_claims // 10, 1)

    config = ServiceConfig(num_shards=num_shards, max_batch=max_batch)
    campaigns, chunks = _make_traffic(
        total_claims=total_claims,
        num_campaigns=num_campaigns,
        users_per_campaign=users_per_campaign,
        objects_per_campaign=objects_per_campaign,
        chunk_size=chunk_size,
        seed=seed,
    )

    base_dir = Path(
        directory
        if directory is not None
        else tempfile.mkdtemp(prefix="repro-durable-bench-")
    )
    base_dir.mkdir(parents=True, exist_ok=True)
    try:
        # Unlogged baseline (best of reps, like the logged runs).
        unlogged = None
        for _ in range(max(reps, 1)):
            service = IngestService(config)
            _register_all(service, campaigns)
            elapsed = _run_ingest(service, chunks)
            metrics = {
                "claims": int(service.stats.claims_accepted),
                "seconds": elapsed,
                "claims_per_sec": service.stats.claims_accepted
                / max(elapsed, 1e-9),
            }
            if unlogged is None or metrics["seconds"] < unlogged["seconds"]:
                unlogged = metrics

        logged = {}
        batch_truths = None
        for mode in fsync_modes:
            mode_chunks = chunks
            if mode == "always" and always_claims < total_claims:
                # Per-record fsync: measure the rate on a slice.
                keep = max(always_claims // chunk_size, 1)
                mode_chunks = chunks[:keep]
            metrics, truths = _logged_run(
                directory=base_dir / f"wal-{mode}",
                fsync=mode,
                config=config,
                campaigns=campaigns,
                chunks=mode_chunks,
                reps=reps,
            )
            metrics["retention_vs_unlogged"] = metrics[
                "claims_per_sec"
            ] / max(unlogged["claims_per_sec"], 1e-9)
            logged[mode] = metrics
            if mode == "batch":
                batch_truths = truths

        recovery = {}
        if batch_truths is not None:
            recovery["replay_only"] = _recover_run(
                base_dir / "wal-batch", campaigns, batch_truths
            )
            ckpt_metrics, ckpt_truths = _logged_run(
                directory=base_dir / "wal-checkpointed",
                fsync="batch",
                config=config,
                campaigns=campaigns,
                chunks=chunks,
                checkpoint_every_claims=max(total_claims // 4, 1),
            )
            recovery["checkpointed"] = _recover_run(
                base_dir / "wal-checkpointed", campaigns, ckpt_truths
            )
            recovery["checkpointed"]["checkpoints_written"] = ckpt_metrics[
                "checkpoints_written"
            ]
    finally:
        if directory is None:
            shutil.rmtree(base_dir, ignore_errors=True)

    return {
        "config": {
            "total_claims": total_claims,
            "always_claims": always_claims,
            "num_campaigns": num_campaigns,
            "users_per_campaign": users_per_campaign,
            "objects_per_campaign": objects_per_campaign,
            "num_shards": num_shards,
            "max_batch": max_batch,
            "chunk_size": chunk_size,
            "fsync_modes": list(fsync_modes),
            "seed": seed,
            "reps": reps,
            "smoke": smoke,
        },
        "unlogged": unlogged,
        "logged": logged,
        "recovery": recovery,
    }


def format_durability_summary(report: dict) -> str:
    """Human-readable rendering of :func:`run_durability_bench` output."""
    lines = [
        "durability benchmark",
        "--------------------",
        (
            f"unlogged:        "
            f"{report['unlogged']['claims_per_sec']:>12,.0f} claims/s  "
            f"({report['unlogged']['claims']:,} claims)"
        ),
    ]
    for mode, metrics in report["logged"].items():
        lines.append(
            f"fsync={mode:<7} "
            f"{metrics['claims_per_sec']:>13,.0f} claims/s  "
            f"({metrics['retention_vs_unlogged']:.0%} of unlogged, "
            f"{metrics['bytes_per_claim']:.1f} B/claim, "
            f"{metrics['wal_segments']} segment(s))"
        )
    for kind, metrics in report.get("recovery", {}).items():
        lines.append(
            f"recovery {kind:<13}"
            f"{metrics['claims_per_sec']:>10,.0f} claims/s replayed "
            f"({metrics['seconds'] * 1e3:.0f} ms, "
            f"ckpt lsn {metrics['checkpoint_lsn']}, bitwise "
            f"{'OK' if metrics['truths_match_bitwise'] else 'MISMATCH'})"
        )
    return "\n".join(lines)
