"""Durability benchmark: logged vs unlogged throughput, recovery time.

Shared by the ``repro durable-bench`` CLI subcommand and
``benchmarks/bench_durability.py``.  Measured quantities:

* **unlogged** — the bulk columnar ingest path with no durability, the
  PR-1 baseline;
* **logged** / **logged_async** — the same traffic with a write-ahead
  log attached, one run per fsync policy (``never`` / ``batch`` /
  ``always``) for both commit modes: synchronous (flush+fsync on the
  ingest thread) and ``async_commit`` (background writer thread,
  durable-ack watermark).  Each run reports per-group commit-latency
  percentiles (p50/p99) and its throughput retention versus the
  matching unlogged baseline.  The ``always`` runs use a reduced,
  claim-accurate traffic slice (a synchronous fsync per frame is
  orders of magnitude slower and only its *rate* matters; the slice
  interleaves campaigns round-robin so every campaign is exercised)
  and a fine micro-batch (``always_max_batch``): per-record durability
  is the policy's point, so it is measured at the fine-grained,
  latency-oriented operating point where one frame is a few hundred
  claims, against an unlogged baseline at the same batch size
  (``unlogged_always``).  That is exactly the regime where the
  durable-ack watermark pays: the async writer turns one fdatasync per
  frame into one per group;
* **recovery** — time to rebuild the service by replaying the full log
  of the ``batch`` run (sync and async commit), and — in a separate
  checkpointed run — by loading the latest checkpoint plus the log
  suffix;
* **compaction** — the checkpointed run's log rewritten down to live
  records (bytes/records before and after), then recovered;
* **fidelity** — whether every recovered service's truths are
  bit-for-bit equal to the live service's truths at the moment its log
  was closed.

Traffic is materialised before any clock starts, and the same chunk
sequence is fed to every run, so ratios isolate the durability cost.
The timed window of a logged run ends at full durability (a blocking
``sync()``), so async commit cannot cheat by leaving staged frames
uncommitted when the clock stops.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from itertools import zip_longest
from pathlib import Path
from typing import Optional

import numpy as np

from repro.durable.compaction import compact_directory
from repro.durable.manager import DurabilityConfig, DurabilityManager
from repro.durable.recovery import RecoveryManager
from repro.durable.wal import FSYNC_POLICIES, list_segments
from repro.service.ingest import IngestService, ServiceConfig
from repro.service.loadgen import ColumnChunk, LoadGenerator
from repro.service.topology import Topology


def _make_traffic(
    *,
    total_claims: int,
    num_campaigns: int,
    users_per_campaign: int,
    objects_per_campaign: int,
    chunk_size: int,
    seed: int,
) -> tuple[list, list]:
    """Pre-materialise campaigns and chunk traffic shared by all runs.

    Chunks are interleaved round-robin across campaigns so any *prefix*
    of the list carries every campaign — the reduced fsync=always run
    measures a prefix and must not starve late campaigns.
    """
    campaigns = []
    per_campaign_chunks = []
    per_campaign = max(total_claims // num_campaigns, 1)
    for c in range(num_campaigns):
        gen = LoadGenerator(
            f"durable-c{c}",
            num_users=users_per_campaign,
            num_objects=objects_per_campaign,
            random_state=seed + c,
        )
        campaigns.append(gen)
        per_campaign_chunks.append(
            list(gen.column_chunks(per_campaign, chunk_size=chunk_size))
        )
    chunks = [
        chunk
        for group in zip_longest(*per_campaign_chunks)
        for chunk in group
        if chunk is not None
    ]
    return campaigns, chunks


def _slice_claims(chunks: list, budget: int) -> list:
    """Claim-accurate prefix: whole chunks plus one truncated tail.

    Replaces the old chunk-granular slice (``budget // chunk_size``
    whole chunks off a campaign-ordered list), which measured fewer
    claims than configured and starved the last campaigns entirely.
    """
    out: list = []
    taken = 0
    for chunk in chunks:
        if taken >= budget:
            break
        if taken + chunk.size <= budget:
            out.append(chunk)
            taken += chunk.size
        else:
            keep = budget - taken
            out.append(
                ColumnChunk(
                    campaign_id=chunk.campaign_id,
                    user_slots=chunk.user_slots[:keep],
                    object_slots=chunk.object_slots[:keep],
                    values=chunk.values[:keep],
                )
            )
            taken = budget
    return out


def _register_all(service: IngestService, campaigns: list) -> None:
    for gen in campaigns:
        service.register_campaign(
            gen.campaign_id,
            gen.object_ids,
            max_users=gen.num_users,
            user_ids=gen.user_ids,
        )


def _run_ingest(service: IngestService, chunks: list) -> float:
    start = time.perf_counter()
    for i, chunk in enumerate(chunks):
        service.submit_columns(
            chunk.campaign_id,
            chunk.user_slots,
            chunk.object_slots,
            chunk.values,
        )
        # Pump (= group-commit, when a WAL is attached) every 32 chunks:
        # a bulk-load cadence, applied identically to the unlogged
        # baseline so the ratio isolates the durability cost.
        if i % 32 == 31:
            service.pump()
    service.flush()
    if service.durability is not None:
        # Stop the clock only at full durability: under async commit
        # the background writer may still be draining staged groups
        # when flush() returns.
        service.durability.sync()
    return time.perf_counter() - start


def _final_truths(service: IngestService, campaigns: list) -> dict:
    return {
        gen.campaign_id: service.snapshot(gen.campaign_id).truths
        for gen in campaigns
    }


def _logged_run(
    *,
    directory: Path,
    fsync: str,
    config: ServiceConfig,
    campaigns: list,
    chunks: list,
    checkpoint_every_claims: int = 0,
    reps: int = 1,
    async_commit: bool = False,
    metrics_server=None,
) -> tuple[dict, dict]:
    """WAL-attached ingest runs (best of ``reps``); returns (metrics,
    final truths).

    fsync latency is noisy on most filesystems, so each policy is
    measured ``reps`` times into sibling directories and the fastest
    run is reported; ``directory`` keeps the log of the reported run
    (the content is identical across reps — the pipeline is
    deterministic, and group boundaries never change record bytes or
    LSNs), so recovery measurements read a real artefact.
    """
    best = None
    for rep in range(max(reps, 1)):
        rep_dir = directory if rep == 0 else Path(
            f"{directory}-rep{rep}"
        )
        # A re-run with a persistent --dir would otherwise collide with
        # the previous run's segments (WalError: recover first); these
        # subdirectories are bench artefacts, so regenerate them.
        if rep_dir.exists():
            shutil.rmtree(rep_dir)
        manager = DurabilityManager(
            DurabilityConfig(
                directory=rep_dir,
                fsync=fsync,
                checkpoint_every_claims=checkpoint_every_claims,
                async_commit=async_commit,
            )
        )
        service = IngestService(
            config, topology=Topology.in_process(durability=manager)
        )
        if metrics_server is not None:
            metrics_server.set_provider(service.metrics_snapshot)
        _register_all(service, campaigns)
        elapsed = _run_ingest(service, chunks)
        truths = _final_truths(service, campaigns)
        manager.sync()
        if metrics_server is not None:
            metrics_server.freeze()
        wal = manager.wal
        latencies = np.asarray(wal.commit_latencies, dtype=float)
        metrics = {
            "claims": int(service.stats.claims_accepted),
            "seconds": elapsed,
            "claims_per_sec": service.stats.claims_accepted
            / max(elapsed, 1e-9),
            "async_commit": bool(async_commit),
            "wal_bytes": int(wal.bytes_written),
            "wal_records": int(wal.records_written),
            "wal_syncs": int(wal.syncs),
            "wal_segments": len(list_segments(rep_dir)),
            "commit_groups": int(wal.groups_committed),
            "commit_seconds": float(wal.commit_seconds),
            "commit_p50_ms": (
                float(np.percentile(latencies, 50) * 1e3)
                if latencies.size
                else 0.0
            ),
            "commit_p99_ms": (
                float(np.percentile(latencies, 99) * 1e3)
                if latencies.size
                else 0.0
            ),
            "checkpoints_written": int(manager.checkpoints_written),
            "bytes_per_claim": wal.bytes_written
            / max(service.stats.claims_accepted, 1),
        }
        manager.close()
        if rep > 0:
            shutil.rmtree(rep_dir, ignore_errors=True)
        if best is None or metrics["seconds"] < best[0]["seconds"]:
            best = (metrics, truths)
    return best


def _recover_run(directory: Path, campaigns: list, live_truths: dict) -> dict:
    start = time.perf_counter()
    recovered = RecoveryManager(directory).recover()
    elapsed = time.perf_counter() - start
    matches = all(
        np.array_equal(
            live_truths[gen.campaign_id],
            recovered.service.snapshot(gen.campaign_id).truths,
        )
        for gen in campaigns
    )
    report = recovered.report
    return {
        "seconds": elapsed,
        "claims_per_sec": report.claims_replayed / max(elapsed, 1e-9),
        "checkpoint_lsn": report.checkpoint_lsn,
        "records_replayed": report.records_replayed,
        "claims_replayed": report.claims_replayed,
        "truths_match_bitwise": bool(matches),
    }


def run_durability_bench(
    *,
    total_claims: int = 200_000,
    always_claims: Optional[int] = None,
    num_campaigns: int = 4,
    users_per_campaign: int = 200,
    objects_per_campaign: int = 48,
    num_shards: int = 4,
    max_batch: int = 2048,
    always_max_batch: int = 256,
    chunk_size: int = 2048,
    fsync_modes: tuple = FSYNC_POLICIES,
    seed: int = 2020,
    directory: Optional[str] = None,
    reps: int = 3,
    smoke: bool = False,
    trace_output: Optional[str] = None,
    metrics_port: Optional[int] = None,
) -> dict:
    """Run every measured path; returns a JSON-serialisable summary.

    Each throughput path is measured ``reps`` times (best run
    reported) because fsync latency is noisy.  ``smoke`` shrinks the
    workload to a few thousand claims so CI can exercise the full code
    path in a couple of seconds.  ``trace_output`` adds one extra
    small WAL-attached run with submission tracing enabled and dumps
    the collected traces (all five stage timestamps, including the
    durable-ack watermark stamp) to that path as JSON.
    ``metrics_port`` serves live metrics on ``127.0.0.1`` for the
    whole benchmark (same contract as ``service-bench``): each
    WAL-attached service becomes the provider while it runs, and a
    frozen snapshot of the last one covers the gaps, so an external
    scraper always gets an answer.
    """
    if smoke:
        total_claims = min(total_claims, 12_000)
        always_claims = min(always_claims or 2_000, 2_000)
        num_campaigns = min(num_campaigns, 2)
        reps = min(reps, 2)
    if always_claims is None:
        always_claims = max(total_claims // 10, 1)

    config = ServiceConfig(num_shards=num_shards, max_batch=max_batch)
    campaigns, chunks = _make_traffic(
        total_claims=total_claims,
        num_campaigns=num_campaigns,
        users_per_campaign=users_per_campaign,
        objects_per_campaign=objects_per_campaign,
        chunk_size=chunk_size,
        seed=seed,
    )

    base_dir = Path(
        directory
        if directory is not None
        else tempfile.mkdtemp(prefix="repro-durable-bench-")
    )
    base_dir.mkdir(parents=True, exist_ok=True)
    metrics_server = None
    if metrics_port is not None:
        from repro.obs.exposition import MetricsServer

        metrics_server = MetricsServer(port=metrics_port)
    try:
        def _unlogged_baseline(run_config, run_chunks):
            best = None
            for _ in range(max(reps, 1)):
                service = IngestService(run_config)
                _register_all(service, campaigns)
                elapsed = _run_ingest(service, run_chunks)
                metrics = {
                    "claims": int(service.stats.claims_accepted),
                    "seconds": elapsed,
                    "claims_per_sec": service.stats.claims_accepted
                    / max(elapsed, 1e-9),
                }
                if best is None or metrics["seconds"] < best["seconds"]:
                    best = metrics
            return best

        always_config = ServiceConfig(
            num_shards=num_shards, max_batch=always_max_batch
        )
        always_chunks = (
            _slice_claims(chunks, always_claims)
            if always_claims < total_claims
            else chunks
        )
        unlogged = _unlogged_baseline(config, chunks)
        unlogged_always = _unlogged_baseline(always_config, always_chunks)

        logged: dict = {}
        logged_async: dict = {}
        batch_truths = None
        async_batch_truths = None
        for mode in fsync_modes:
            if mode == "always":
                mode_chunks = always_chunks
                mode_config = always_config
                baseline = unlogged_always
            else:
                mode_chunks = chunks
                mode_config = config
                baseline = unlogged
            for async_commit, section in (
                (False, logged),
                (True, logged_async),
            ):
                suffix = "-async" if async_commit else ""
                metrics, truths = _logged_run(
                    directory=base_dir / f"wal-{mode}{suffix}",
                    fsync=mode,
                    config=mode_config,
                    campaigns=campaigns,
                    chunks=mode_chunks,
                    reps=reps,
                    async_commit=async_commit,
                    metrics_server=metrics_server,
                )
                metrics["retention_vs_unlogged"] = metrics[
                    "claims_per_sec"
                ] / max(baseline["claims_per_sec"], 1e-9)
                section[mode] = metrics
                if mode == "batch":
                    if async_commit:
                        async_batch_truths = truths
                    else:
                        batch_truths = truths
        if "always" in logged and "always" in logged_async:
            # The headline durable-ack win: grouped background syncs
            # versus one synchronous fdatasync per appended frame.
            logged_async["always"]["speedup_vs_sync_always"] = logged_async[
                "always"
            ]["claims_per_sec"] / max(
                logged["always"]["claims_per_sec"], 1e-9
            )

        recovery = {}
        compaction = None
        if batch_truths is not None:
            recovery["replay_only"] = _recover_run(
                base_dir / "wal-batch", campaigns, batch_truths
            )
            if async_batch_truths is not None:
                # The async-commit log must replay to the same truths:
                # grouping and background writes change no record.
                recovery["async_commit"] = _recover_run(
                    base_dir / "wal-batch-async",
                    campaigns,
                    async_batch_truths,
                )
            ckpt_dir = base_dir / "wal-checkpointed"
            ckpt_metrics, ckpt_truths = _logged_run(
                directory=ckpt_dir,
                fsync="batch",
                config=config,
                campaigns=campaigns,
                chunks=chunks,
                checkpoint_every_claims=max(total_claims // 4, 1),
                metrics_server=metrics_server,
            )
            recovery["checkpointed"] = _recover_run(
                ckpt_dir, campaigns, ckpt_truths
            )
            recovery["checkpointed"]["checkpoints_written"] = ckpt_metrics[
                "checkpoints_written"
            ]
            # Claim-granular compaction of the checkpointed log, then
            # prove the rewritten directory still recovers bitwise.
            report = compact_directory(ckpt_dir)
            compaction = report.as_dict()
            compaction["shrunk"] = bool(
                report.records_after < report.records_before
                and report.bytes_after < report.bytes_before
            )
            compaction["recovery"] = _recover_run(
                ckpt_dir, campaigns, ckpt_truths
            )

        trace = None
        if trace_output is not None:
            trace_dir = base_dir / "wal-traced"
            if trace_dir.exists():
                shutil.rmtree(trace_dir)
            traced_manager = DurabilityManager(
                DurabilityConfig(directory=trace_dir, fsync="batch")
            )
            # Bulk traffic is chunk-granular (one submission per column
            # chunk), so sample densely enough for a useful artifact.
            traced_config = ServiceConfig(
                num_shards=num_shards,
                max_batch=max_batch,
                trace_sample_every=2,
            )
            service = IngestService(
                traced_config,
                topology=Topology.in_process(durability=traced_manager),
            )
            if metrics_server is not None:
                metrics_server.set_provider(service.metrics_snapshot)
            _register_all(service, campaigns)
            _run_ingest(
                service, _slice_claims(chunks, min(total_claims, 20_000))
            )
            # One pump after the final sync: drains the last committed
            # group and resolves pending traces against the durable-ack
            # watermark before the dump.
            service.pump()
            service.telemetry.traces.dump(trace_output)
            trace = {
                "path": str(trace_output),
                "traces_sampled": len(service.telemetry.traces),
            }
            if metrics_server is not None:
                metrics_server.freeze()
            service.close()
            traced_manager.close()
        metrics_url = metrics_server.url if metrics_server else None
    finally:
        if metrics_server is not None:
            metrics_server.close()
        if directory is None:
            shutil.rmtree(base_dir, ignore_errors=True)

    return {
        "config": {
            "total_claims": total_claims,
            "always_claims": always_claims,
            "num_campaigns": num_campaigns,
            "users_per_campaign": users_per_campaign,
            "objects_per_campaign": objects_per_campaign,
            "num_shards": num_shards,
            "max_batch": max_batch,
            "always_max_batch": always_max_batch,
            "chunk_size": chunk_size,
            "fsync_modes": list(fsync_modes),
            "seed": seed,
            "reps": reps,
            "smoke": smoke,
            # Honest context for the async-commit ratios: on a 1-CPU
            # container the background writer's CPU share (encode,
            # CRC, page-cache copies) cannot overlap the ingest
            # thread, only its fsync waits can — multi-core hardware
            # hides both.
            "available_cpus": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else (os.cpu_count() or 1),
        },
        "unlogged": unlogged,
        "unlogged_always": unlogged_always,
        "logged": logged,
        "logged_async": logged_async,
        "recovery": recovery,
        "compaction": compaction,
        "trace": trace,
        **({"metrics_url": metrics_url} if metrics_url else {}),
    }


def format_durability_summary(report: dict) -> str:
    """Human-readable rendering of :func:`run_durability_bench` output."""
    lines = [
        "durability benchmark",
        "--------------------",
        (
            f"unlogged:            "
            f"{report['unlogged']['claims_per_sec']:>12,.0f} claims/s  "
            f"({report['unlogged']['claims']:,} claims)"
        ),
    ]
    fine = report.get("unlogged_always")
    if fine:
        lines.append(
            f"unlogged (fine):     "
            f"{fine['claims_per_sec']:>12,.0f} claims/s  "
            f"({fine['claims']:,} claims; the always-mode baseline)"
        )

    def mode_line(mode: str, metrics: dict) -> str:
        tag = f"{mode}+async" if metrics.get("async_commit") else mode
        return (
            f"fsync={tag:<13} "
            f"{metrics['claims_per_sec']:>13,.0f} claims/s  "
            f"({metrics['retention_vs_unlogged']:.0%} of unlogged, "
            f"{metrics['bytes_per_claim']:.1f} B/claim, "
            f"commit p50/p99 {metrics['commit_p50_ms']:.2f}/"
            f"{metrics['commit_p99_ms']:.2f} ms)"
        )

    for mode, metrics in report["logged"].items():
        lines.append(mode_line(mode, metrics))
    for mode, metrics in report.get("logged_async", {}).items():
        lines.append(mode_line(mode, metrics))
    always_async = report.get("logged_async", {}).get("always", {})
    if "speedup_vs_sync_always" in always_async:
        lines.append(
            f"durable-ack always:  "
            f"{always_async['speedup_vs_sync_always']:.1f}x the "
            f"per-frame-sync claims/s"
        )
    for kind, metrics in report.get("recovery", {}).items():
        lines.append(
            f"recovery {kind:<13}"
            f"{metrics['claims_per_sec']:>10,.0f} claims/s replayed "
            f"({metrics['seconds'] * 1e3:.0f} ms, "
            f"ckpt lsn {metrics['checkpoint_lsn']}, bitwise "
            f"{'OK' if metrics['truths_match_bitwise'] else 'MISMATCH'})"
        )
    compaction = report.get("compaction")
    if compaction:
        lines.append(
            f"compaction:          "
            f"{compaction['records_before']} -> "
            f"{compaction['records_after']} records, "
            f"{compaction['bytes_before']:,} -> "
            f"{compaction['bytes_after']:,} bytes, recovery bitwise "
            + (
                "OK"
                if compaction["recovery"]["truths_match_bitwise"]
                else "MISMATCH"
            )
        )
    return "\n".join(lines)
