"""Atomic checkpoint storage for the durable ingestion subsystem.

A checkpoint captures everything needed to rebuild the service without
replaying the whole log: per-campaign aggregator state, user tables and
claim counters, the privacy-budget ledger, and the LSN up to which the
write-ahead log is covered.

Storage format: one ``.npz`` file per checkpoint, written to a
temporary name and atomically renamed into place (a crash mid-write
leaves at most a ``*.tmp`` orphan, never a half checkpoint under the
real name).  The checkpoint payload is an arbitrary JSON-able dict in
which NumPy arrays may appear anywhere; arrays are hoisted out into
binary npz entries and replaced by ``{"__nd__": key}`` placeholders in
the JSON manifest, so bulk state (the streaming CRH cell statistics)
stays binary and bit-exact while the structure stays readable.

Loading walks checkpoints newest-first and silently skips unreadable
files, so a torn checkpoint can never block recovery — it just falls
back to the previous one plus a longer log replay.
"""

from __future__ import annotations

import json
import os
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.durable.wal import _fsync_dir
from repro.utils.logging import get_logger

_LOGGER = get_logger("durable.checkpoint")

CHECKPOINT_PREFIX = "ckpt-"
CHECKPOINT_SUFFIX = ".npz"
_ARRAY_KEY = "__nd__"
_MANIFEST_KEY = "manifest"


class CheckpointError(RuntimeError):
    """A checkpoint could not be written or decoded."""


def _hoist_arrays(obj, arrays: dict, path: str):
    """Replace ndarrays in ``obj`` with placeholders; collect them."""
    if isinstance(obj, np.ndarray):
        key = f"a{len(arrays)}"
        arrays[key] = obj
        return {_ARRAY_KEY: key}
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, dict):
        if _ARRAY_KEY in obj:
            raise CheckpointError(
                f"payload dict at {path!r} uses the reserved key "
                f"{_ARRAY_KEY!r}"
            )
        return {
            str(k): _hoist_arrays(v, arrays, f"{path}.{k}")
            for k, v in obj.items()
        }
    if isinstance(obj, (list, tuple)):
        return [
            _hoist_arrays(v, arrays, f"{path}[{i}]")
            for i, v in enumerate(obj)
        ]
    return obj


def _lower_arrays(obj, npz):
    """Inverse of :func:`_hoist_arrays` against a loaded npz mapping."""
    if isinstance(obj, dict):
        if set(obj.keys()) == {_ARRAY_KEY}:
            return npz[obj[_ARRAY_KEY]]
        return {k: _lower_arrays(v, npz) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_lower_arrays(v, npz) for v in obj]
    return obj


def pack_payload(payload) -> bytes:
    """Encode a dict-with-arrays payload to in-memory npz bytes.

    The exact encoding checkpoints use on disk, minus the file: binary,
    bit-exact, pickle-free.  The worker protocol's state RPCs
    (:func:`repro.workers.protocol.pack_state`) and the fabric's
    checkpoint hand-off both delegate here, so a state blob is one
    format everywhere — what a worker ships over a socket is what a
    checkpoint stores.
    """
    import io

    arrays: dict[str, np.ndarray] = {}
    manifest = _hoist_arrays(payload, arrays, "payload")
    try:
        manifest_json = json.dumps(manifest, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise CheckpointError(
            f"payload is not JSON-encodable outside its arrays: {exc}"
        ) from exc
    buf = io.BytesIO()
    np.savez(buf, **{_MANIFEST_KEY: np.array(manifest_json)}, **arrays)
    return buf.getvalue()


def unpack_payload(blob: bytes):
    """Inverse of :func:`pack_payload`."""
    import io

    try:
        with np.load(io.BytesIO(blob), allow_pickle=False) as npz:
            manifest = json.loads(str(npz[_MANIFEST_KEY][()]))
            return _lower_arrays(manifest, npz)
    except (OSError, KeyError, ValueError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"malformed payload blob: {exc}") from exc


@dataclass(frozen=True)
class Checkpoint:
    """One loaded checkpoint: covered LSN plus the state payload."""

    lsn: int
    payload: dict
    path: Optional[Path] = None


class CheckpointStore:
    """Reads and writes the checkpoints of one durability directory.

    Parameters
    ----------
    directory:
        Where checkpoint files live (shared with the WAL segments).
    keep:
        Completed checkpoints to retain; older ones are pruned after
        each successful save.  At least 1.
    """

    def __init__(
        self, directory: Union[str, Path], *, keep: int = 3
    ) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self._dir = Path(directory)
        self._keep = keep

    # ------------------------------------------------------------------
    @property
    def directory(self) -> Path:
        return self._dir

    def paths(self) -> list[Path]:
        """Checkpoint files, oldest first."""
        if not self._dir.is_dir():
            return []
        return sorted(
            p
            for p in self._dir.iterdir()
            if p.name.startswith(CHECKPOINT_PREFIX)
            and p.name.endswith(CHECKPOINT_SUFFIX)
        )

    # ------------------------------------------------------------------
    def save(self, lsn: int, payload: dict) -> Path:
        """Persist one checkpoint atomically; prune old ones."""
        if lsn < 0:
            raise ValueError(f"lsn must be >= 0, got {lsn}")
        self._dir.mkdir(parents=True, exist_ok=True)
        arrays: dict[str, np.ndarray] = {}
        manifest = _hoist_arrays(payload, arrays, "payload")
        try:
            manifest_json = json.dumps(
                {"lsn": lsn, "payload": manifest}, sort_keys=True
            )
        except (TypeError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint payload is not JSON-serialisable: {exc}"
            ) from exc
        path = self._dir / f"{CHECKPOINT_PREFIX}{lsn:020d}{CHECKPOINT_SUFFIX}"
        tmp = path.with_suffix(".tmp")
        with open(tmp, "wb") as fh:
            np.savez(fh, **{_MANIFEST_KEY: np.array(manifest_json)}, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        # The rename itself must survive power loss, or the crash
        # silently rolls back to the previous checkpoint.
        _fsync_dir(self._dir)
        self._prune()
        _LOGGER.debug("checkpoint saved at lsn %d (%s)", lsn, path.name)
        return path

    def load(self, path: Path) -> Checkpoint:
        """Decode one checkpoint file (raises :class:`CheckpointError`)."""
        try:
            with np.load(path, allow_pickle=False) as npz:
                manifest = json.loads(str(npz[_MANIFEST_KEY][()]))
                payload = _lower_arrays(manifest["payload"], npz)
                lsn = int(manifest["lsn"])
        except (
            OSError,
            KeyError,
            ValueError,
            zipfile.BadZipFile,
            json.JSONDecodeError,
        ) as exc:
            raise CheckpointError(
                f"unreadable checkpoint {path.name}: {exc}"
            ) from exc
        return Checkpoint(lsn=lsn, payload=payload, path=path)

    def load_latest(self) -> Optional[Checkpoint]:
        """Newest readable checkpoint, or None.

        Unreadable files (torn by a crash, bit rot) are skipped with a
        warning; recovery then replays a longer WAL suffix instead.
        """
        for path in reversed(self.paths()):
            try:
                return self.load(path)
            except CheckpointError as exc:
                _LOGGER.warning("skipping %s: %s", path.name, exc)
        return None

    # ------------------------------------------------------------------
    def _prune(self) -> None:
        paths = self.paths()
        for stale in paths[: max(len(paths) - self._keep, 0)]:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - race with manual cleanup
                pass
