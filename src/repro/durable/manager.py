"""The durability hook wiring the ingestion service to WAL + checkpoints.

:class:`DurabilityManager` is the single object the service layer talks
to.  The contract mirrors the ingest pipeline's own events:

* ``bind(service)`` — called once when a service attaches; records the
  service configuration and ledger caps so recovery can rebuild the
  same service from an empty directory;
* ``log_register`` / ``log_unregister`` — campaign lifecycle;
* ``log_batch`` — called by a shard for *every* micro-batch immediately
  before it reaches the aggregator; this is the write-ahead property:
  a batch is never aggregated without first being in the log buffer
  (and, under ``fsync="always"``, on disk);
* ``log_charge`` — every admitted privacy-budget charge, so spent
  epsilon survives a restart (the safe direction: charges for claims
  that never became durable stay spent);
* ``after_pump`` — the group-commit point: syncs the log under the
  ``batch`` fsync policy and triggers automatic checkpoints.  With
  ``async_commit`` enabled the write+fsync work runs on the WAL's
  background writer thread instead: ``after_pump`` just *requests* a
  group commit under ``batch``/``never`` (no commit latency on the
  ingest thread), and under ``always`` waits on the durable-ack
  watermark (``wait_durable``) so a completed pump still guarantees
  its batches are on disk — grouped syncs instead of one fdatasync
  per frame.

The manager also keeps *shadow counters* per campaign — claims and
per-slot claim counts at logged-batch granularity.  Live
``CampaignState`` counters advance at pump time and include claims
still buffered in a micro-batcher; checkpoints must not include those
(their batches, if they survive, appear later in the log), so the
shadow counters are what checkpoints store and what recovery restores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.durable import records as rec
from repro.durable.checkpoint import CheckpointStore
from repro.durable.daemon import CompactionDaemon, CompactionPolicy
from repro.durable.wal import FSYNC_POLICIES, WriteAheadLog
from repro.privacy.ldp import LDPGuarantee
from repro.utils.logging import get_logger
from repro.utils.validation import ensure_int

_LOGGER = get_logger("durable.manager")

#: On-disk layout version stamped into CONFIG records and checkpoints.
#: v1: REGISTER records could store aggregator="auto" (recovery
#: re-applies the v1 auto rule for them).  v2: registrations persist
#: the resolved backend kind, so replay is independent of the
#: auto-selection rules in force at recovery time.
FORMAT_VERSION = 2


@dataclass(frozen=True)
class DurabilityConfig:
    """Tuning knobs of the durability subsystem.

    Parameters
    ----------
    directory:
        Where WAL segments and checkpoints live.
    fsync:
        ``"never"`` / ``"batch"`` / ``"always"`` — see
        :mod:`repro.durable.wal`.
    max_segment_bytes:
        WAL segment rotation threshold.
    checkpoint_every_claims:
        Automatic checkpoint cadence in logged claims (0 disables
        automatic checkpoints; call :meth:`DurabilityManager.checkpoint`
        manually).
    keep_checkpoints:
        Completed checkpoints retained on disk.
    async_commit:
        Run WAL write+fsync on a background writer thread (see
        :mod:`repro.durable.wal`): ``after_pump`` becomes non-blocking
        under ``batch``/``never`` and a grouped durable-ack under
        ``always``.  Control records (registrations, checkpoints) and
        read-path syncs still block until durable.
    compaction:
        A :class:`~repro.durable.daemon.CompactionPolicy` enabling the
        background compaction daemon: a thread watches the directory's
        disk usage and segment age, and :meth:`DurabilityManager.compact`
        runs from ``after_pump`` when a threshold trips.  None (the
        default) keeps compaction operator-driven.
    """

    directory: Union[str, Path]
    fsync: str = "batch"
    max_segment_bytes: int = 64 * 1024 * 1024
    checkpoint_every_claims: int = 0
    keep_checkpoints: int = 3
    async_commit: bool = False
    compaction: Optional[CompactionPolicy] = None

    def __post_init__(self) -> None:
        if self.fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {self.fsync!r}"
            )
        ensure_int(self.max_segment_bytes, "max_segment_bytes", minimum=64)
        ensure_int(
            self.checkpoint_every_claims,
            "checkpoint_every_claims",
            minimum=0,
        )
        ensure_int(self.keep_checkpoints, "keep_checkpoints", minimum=1)


@dataclass
class _ShadowCounters:
    """Per-campaign counters at logged-batch granularity."""

    claims: int = 0
    by_slot: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))


class DurabilityManager:
    """Write-ahead logging and checkpointing for one ingestion service.

    Parameters
    ----------
    config:
        A :class:`DurabilityConfig`, or a bare directory path to use
        the default policies.
    start_lsn:
        First LSN to assign; recovery passes ``last recovered LSN + 1``
        when resuming into an existing directory.
    """

    def __init__(
        self,
        config: Union[DurabilityConfig, str, Path],
        *,
        start_lsn: int = 1,
    ) -> None:
        if not isinstance(config, DurabilityConfig):
            config = DurabilityConfig(directory=config)
        self._config = config
        self._wal = WriteAheadLog(
            config.directory,
            fsync=config.fsync,
            max_segment_bytes=config.max_segment_bytes,
            start_lsn=start_lsn,
            async_commit=config.async_commit,
        )
        self._checkpoints = CheckpointStore(
            config.directory, keep=config.keep_checkpoints
        )
        self._service = None
        self._specs: dict[str, dict] = {}
        self._shadow: dict[str, _ShadowCounters] = {}
        self._users_synced: dict[str, int] = {}
        # Hot-path encoding caches, derived from the spec once per
        # registration: the length-prefixed campaign-id header, and
        # whether every slot the campaign can ever emit fits u16 (then
        # log_batch takes the fast columnar encoder).
        self._cid_prefix: dict[str, bytes] = {}
        self._u16_slots: dict[str, bool] = {}
        self._claims_since_checkpoint = 0
        self._replication = None
        self._compaction_daemon: Optional[CompactionDaemon] = None
        self.claims_logged = 0
        self.batches_logged = 0
        self.charges_logged = 0
        self.checkpoints_written = 0

    # ------------------------------------------------------------------
    @property
    def config(self) -> DurabilityConfig:
        return self._config

    @property
    def directory(self) -> Path:
        return self._wal.directory

    @property
    def last_lsn(self) -> int:
        return self._wal.last_lsn

    @property
    def wal(self) -> WriteAheadLog:
        return self._wal

    @property
    def checkpoints(self) -> CheckpointStore:
        return self._checkpoints

    @property
    def known_campaigns(self) -> set:
        """Campaign ids this manager has registration specs for."""
        return set(self._specs)

    # ------------------------------------------------------------------
    def bind(self, service) -> None:
        """Attach to an :class:`~repro.service.ingest.IngestService`.

        Writes a CONFIG record so a log replayed from scratch knows how
        to rebuild the service (shard count, batch size, ledger caps).
        """
        from dataclasses import asdict

        self._service = service
        ledger = service.ledger
        self._wal.append(
            rec.CONFIG,
            rec.encode_json_payload(
                {
                    "version": FORMAT_VERSION,
                    "service_config": asdict(service.config),
                    "ledger": (
                        None
                        if ledger is None
                        else {
                            "epsilon_cap": ledger.epsilon_cap,
                            "delta_cap": ledger.delta_cap,
                        }
                    ),
                }
            ),
        )
        if (
            self._config.compaction is not None
            and self._compaction_daemon is None
        ):
            # The daemon only watches the filesystem; the compactions it
            # requests run on the pump thread (see after_pump), which
            # exists only once a service is bound — hence starting here,
            # not in __init__.
            self._compaction_daemon = CompactionDaemon(
                self.directory, self._config.compaction
            )
            self._compaction_daemon.start()

    # ------------------------------------------------------------------
    def log_register(self, spec: dict) -> int:
        """Persist a campaign registration; returns the record's LSN.

        The record is written (and synced) before any bookkeeping
        mutates: if the spec fails to encode, the caller aborts its
        registration and this manager must not be left tracking a
        campaign the service never created.
        """
        campaign_id = spec["campaign_id"]
        lsn = self._wal.append(rec.REGISTER, rec.encode_json_payload(spec))
        # Control-plane records are rare and must not sit in a buffer: a
        # crash must never replay claims into a campaign whose
        # registration (or removal) it forgot.
        self._wal.sync()
        self._specs[campaign_id] = spec
        self._shadow[campaign_id] = _ShadowCounters(
            claims=0,
            by_slot=np.zeros(int(spec["max_users"]), dtype=np.int64),
        )
        self._users_synced[campaign_id] = len(spec.get("user_ids") or [])
        self._seed_encoding_cache(campaign_id, spec)
        return lsn

    def _seed_encoding_cache(self, campaign_id: str, spec: dict) -> None:
        self._cid_prefix[campaign_id] = rec.campaign_id_prefix(campaign_id)
        self._u16_slots[campaign_id] = (
            int(spec["max_users"]) <= 0x10000
            and len(spec["object_ids"]) <= 0x10000
        )

    def log_unregister(self, campaign_id: str) -> int:
        lsn = self._wal.append(
            rec.UNREGISTER,
            rec.encode_json_payload({"campaign_id": campaign_id}),
        )
        self._wal.sync()
        self._specs.pop(campaign_id, None)
        self._shadow.pop(campaign_id, None)
        self._users_synced.pop(campaign_id, None)
        self._cid_prefix.pop(campaign_id, None)
        self._u16_slots.pop(campaign_id, None)
        return lsn

    def log_batch(self, state, batch) -> int:
        """Log one micro-batch about to be aggregated; returns its LSN.

        ``state`` is the owning
        :class:`~repro.service.shard.CampaignState`; new user-slot
        assignments since the last logged batch are written first (as a
        USERS record at a lower LSN), so any batch that survives a
        crash can name its contributors on replay.
        """
        campaign_id = state.campaign_id
        synced = self._users_synced.get(campaign_id, 0)
        # Read the length once and slice only up to it: producers may
        # append to the table while we log, and re-reading its length
        # after the slice would mark those late users synced without
        # ever writing them.  (The bounded slice also keeps this hot
        # path O(new users), not O(table).)
        table_len = len(state.user_table)
        if table_len > synced:
            self._wal.append(
                rec.USERS,
                rec.encode_json_payload(
                    {
                        "campaign_id": campaign_id,
                        "start": synced,
                        "user_ids": list(
                            state.user_table[synced:table_len]
                        ),
                    }
                ),
            )
            self._users_synced[campaign_id] = table_len
        if self._u16_slots.get(campaign_id):
            # Fast path: slots are bounded by the campaign's capacity
            # and object universe (validated at ingress), so the u16
            # encoding and the cached id prefix apply to every batch —
            # no per-batch width detection, column re-validation, or
            # payload serialisation (the value column is handed to the
            # log as a buffer and written directly).
            payload = rec.encode_batch_parts(
                self._cid_prefix[campaign_id],
                batch.users,
                batch.objects,
                batch.values,
            )
        else:
            payload = rec.WorkItem(
                campaign_id=campaign_id,
                user_slots=batch.users,
                object_slots=batch.objects,
                values=batch.values,
            ).to_bytes()
        lsn = self._wal.append(rec.BATCH, payload)
        shadow = self._shadow.get(campaign_id)
        if shadow is not None:
            shadow.claims += batch.size
            shadow.by_slot += np.bincount(
                batch.users, minlength=shadow.by_slot.size
            )
        self.claims_logged += batch.size
        self.batches_logged += 1
        self._claims_since_checkpoint += batch.size
        return lsn

    def log_refresh(self, campaign_id: str) -> int:
        """Persist a read-forced refresh (its timing affects truths)."""
        return self._wal.append(
            rec.REFRESH,
            rec.encode_json_payload({"campaign_id": campaign_id}),
        )

    def log_charge(
        self, user_id, guarantee: LDPGuarantee, *, label: str = ""
    ) -> int:
        """Persist one admitted privacy-budget charge."""
        self.charges_logged += 1
        return self._wal.append(
            rec.CHARGE,
            rec.encode_json_payload(
                {
                    "user_id": user_id,
                    "epsilon": guarantee.epsilon,
                    "delta": guarantee.delta,
                    "label": label,
                }
            ),
        )

    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Force the log to disk (up to the fsync policy); blocking."""
        self._wal.sync()

    @property
    def durable_lsn(self) -> int:
        """The WAL's durable-ack watermark (see :class:`WriteAheadLog`)."""
        return self._wal.durable_lsn

    def wait_durable(self, lsn: int, *, timeout=None) -> bool:
        """Block until records up to ``lsn`` are durable (durable-ack)."""
        return self._wal.wait_durable(lsn, timeout=timeout)

    def after_pump(self) -> None:
        """Group-commit point, called by the service after each pump.

        Synchronous commit: one blocking flush+fsync (the ``batch``
        policy's group commit).  Async commit: ``batch``/``never`` just
        request a background group commit and return — commit latency
        leaves the ingest thread entirely — while ``always`` waits on
        the durable-ack watermark, so the pump acknowledges its batches
        only once they are on disk (grouped syncs, not one per frame).
        """
        if self._config.async_commit and self._config.fsync != "always":
            self._wal.request_sync()
        else:
            self._wal.sync()
        if self._replication is not None:
            # Semi-sync back-pressure: under that mode the pump blocks
            # until at least one standby acked this pump's last LSN (a
            # no-op in async mode).
            self._replication.after_group_commit(self._wal.last_lsn)
        self.maybe_checkpoint()
        if self._compaction_daemon is not None:
            # Policy-triggered compaction runs here, on the pump thread
            # between batches — the one point where checkpointing cannot
            # race aggregation.  The daemon thread only ever raises the
            # flag.
            reason = self._compaction_daemon.take_request()
            if reason is not None:
                _LOGGER.info("policy-triggered compaction: %s", reason)
                report = self.compact()
                self._compaction_daemon.record_compaction(report)

    def maybe_checkpoint(self) -> Optional[Path]:
        """Checkpoint when the automatic cadence says so."""
        every = self._config.checkpoint_every_claims
        if every > 0 and self._claims_since_checkpoint >= every:
            return self.checkpoint()
        return None

    def checkpoint(self) -> Path:
        """Snapshot the bound service's durable state; prune the log.

        The checkpoint covers every record up to the current last LSN:
        aggregator state is captured *after* those batches were
        aggregated (logging and aggregation are adjacent and
        synchronous), shadow counters match the logged batches exactly,
        and the ledger holds every charge logged so far.  WAL segments
        fully below the checkpoint are deleted.
        """
        from dataclasses import asdict

        if self._service is None:
            raise RuntimeError(
                "no service bound; checkpoint() needs bind() first"
            )
        service = self._service
        ledger = service.ledger
        campaigns = []
        for campaign_id, spec in sorted(list(self._specs.items())):
            state = service.campaign_state(campaign_id)
            shadow = self._shadow[campaign_id]
            campaigns.append(
                {
                    "spec": spec,
                    "user_table": list(state.user_table),
                    "claims_accepted": shadow.claims,
                    "claims_by_slot": shadow.by_slot.copy(),
                    "aggregator": state.aggregator.state_dict(),
                }
            )
        # The ledger snapshot and the covered log position are read
        # under the ledger lock — the same lock producers hold across
        # (admit + log_charge) — so every charge is either in these
        # records (LSN at or below the position) or strictly after the
        # position and replayed from the suffix.  Never both, never
        # neither.
        if ledger is None:
            ledger_state = None
            self._wal.sync()
            lsn = self._wal.last_lsn
        else:
            with ledger.lock:
                ledger_state = {
                    "epsilon_cap": ledger.epsilon_cap,
                    "delta_cap": ledger.delta_cap,
                    "records": ledger.to_records(),
                }
                lsn = self._wal.last_lsn
            # Frames at or below the captured position must be durable
            # before the checkpoint claims to cover them.
            self._wal.sync()
        payload = {
            "version": FORMAT_VERSION,
            "service_config": asdict(service.config),
            "ledger": ledger_state,
            "campaigns": campaigns,
        }
        path = self._checkpoints.save(lsn, payload)
        self._wal.retain(lsn)
        self._claims_since_checkpoint = 0
        self.checkpoints_written += 1
        _LOGGER.debug(
            "checkpoint at lsn %d covering %d campaign(s)",
            lsn,
            len(campaigns),
        )
        return path

    def compact(self, *, checkpoint_first: bool = True):
        """Rewrite the log down to live records; returns the report.

        A fresh checkpoint is written first by default, so the rewrite
        retires everything the service has already aggregated — the
        claim-granular replacement for segment retention.  Appends are
        blocked for the duration (the WAL quiesces its writer thread);
        see :mod:`repro.durable.compaction` for the crash-safety
        protocol.
        """
        if checkpoint_first and self._service is not None:
            self.checkpoint()
        return self._wal.compact()

    def attach_replication(self, sender) -> None:
        """Wire a :class:`~repro.replication.sender.ReplicationSender`
        into the commit path: it hooks the WAL's post-fsync commit
        notifications and, under semi-sync, blocks :meth:`after_pump`
        on the standby ack watermark."""
        if self._replication is not None:
            raise RuntimeError("a replication sender is already attached")
        self._replication = sender
        sender.attach(self)

    @property
    def replication(self):
        """The attached replication sender (None when unreplicated)."""
        return self._replication

    @property
    def compaction_daemon(self) -> Optional[CompactionDaemon]:
        """The background compaction daemon (None unless configured)."""
        return self._compaction_daemon

    def close(self) -> None:
        """Drain, flush, and close the log (the directory stays
        recoverable).  Idempotent — a sticky async-writer error is
        raised by the first close only (see
        :meth:`~repro.durable.wal.WriteAheadLog.close`)."""
        if self._compaction_daemon is not None:
            self._compaction_daemon.stop()
        if self._replication is not None:
            self._replication.close()
        self._wal.close()

    def __enter__(self) -> "DurabilityManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def seed_recovered_state(
        self,
        *,
        specs: dict[str, dict],
        shadows: dict[str, "_ShadowCounters"],
        users_synced: dict[str, int],
    ) -> None:
        """Adopt recovered campaign bookkeeping (used when resuming)."""
        self._specs = dict(specs)
        self._shadow = dict(shadows)
        self._users_synced = dict(users_synced)
        for campaign_id, spec in self._specs.items():
            self._seed_encoding_cache(campaign_id, spec)
