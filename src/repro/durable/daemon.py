"""Policy-driven background compaction.

Compaction (:meth:`DurabilityManager.compact`) rewrites the log down to
live records, but something has to *decide* to run it.  Leaving that to
the operator means the WAL grows until someone notices; wiring it to a
claim counter (the checkpoint cadence) misses the common failure mode —
a quiet service whose old segments sit on disk forever.

:class:`CompactionDaemon` closes that gap.  A daemon thread evaluates a
:class:`CompactionPolicy` against the directory on a fixed cadence —
total segment bytes, and the age of the oldest segment — and, when a
threshold trips, raises a *request flag*.  It never calls ``compact()``
itself: checkpointing captures aggregator state and must not race the
pump thread's aggregation, so the actual work runs inline in
:meth:`DurabilityManager.after_pump`, the natural quiesce point where
the pump thread is between batches.  The daemon only looks at the
filesystem (cheap ``stat`` calls), so its cadence can be tight without
touching the ingest hot path.

The flag-honouring side lives in the manager; this module is the
policy, the clock, and the counters.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.durable.wal import list_segments
from repro.utils.logging import get_logger
from repro.utils.validation import ensure_positive

_LOGGER = get_logger("durable.daemon")


@dataclass(frozen=True)
class CompactionPolicy:
    """When background compaction should trigger.

    Parameters
    ----------
    max_wal_bytes:
        Trigger once live WAL segments exceed this many bytes on disk
        (None disables the size trigger).
    max_record_age_seconds:
        Trigger once the oldest segment file is older than this
        (None disables the age trigger).  Age is measured from the
        segment's mtime — the last append it received — so an idle
        directory eventually compacts down to its checkpoint.
    min_interval_seconds:
        Floor between two policy-triggered compactions, so a directory
        hovering at a threshold does not compact on every evaluation.
    check_interval_seconds:
        How often the daemon thread re-evaluates the policy.
    """

    max_wal_bytes: Optional[int] = 256 * 1024 * 1024
    max_record_age_seconds: Optional[float] = None
    min_interval_seconds: float = 30.0
    check_interval_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.max_wal_bytes is None and self.max_record_age_seconds is None:
            raise ValueError(
                "policy needs max_wal_bytes or max_record_age_seconds "
                "(both None would never trigger)"
            )
        if self.max_wal_bytes is not None:
            ensure_positive(self.max_wal_bytes, "max_wal_bytes")
        if self.max_record_age_seconds is not None:
            ensure_positive(
                self.max_record_age_seconds, "max_record_age_seconds"
            )
        ensure_positive(self.min_interval_seconds, "min_interval_seconds")
        ensure_positive(self.check_interval_seconds, "check_interval_seconds")

    # ------------------------------------------------------------------
    def evaluate(self, directory: Path, now: float) -> Optional[str]:
        """The reason compaction should run now, or None.

        Pure filesystem inspection — callable from any thread.
        """
        segments = list_segments(directory)
        if not segments:
            return None
        total = 0
        oldest_mtime = None
        for segment in segments:
            try:
                stat = segment.stat()
            except OSError:
                continue  # compaction/retention raced us; skip it
            total += stat.st_size
            if oldest_mtime is None or stat.st_mtime < oldest_mtime:
                oldest_mtime = stat.st_mtime
        if self.max_wal_bytes is not None and total > self.max_wal_bytes:
            return f"wal size {total} > {self.max_wal_bytes} bytes"
        if (
            self.max_record_age_seconds is not None
            and oldest_mtime is not None
            and now - oldest_mtime > self.max_record_age_seconds
        ):
            return (
                f"oldest segment {now - oldest_mtime:.0f}s old > "
                f"{self.max_record_age_seconds:.0f}s"
            )
        return None


class CompactionDaemon:
    """Evaluates a :class:`CompactionPolicy` on a background thread.

    The daemon communicates with the pump thread through one flag:
    :meth:`take_request` (called from ``after_pump``) atomically claims
    a pending trigger, and the caller reports back via
    :meth:`record_compaction` so the ``min_interval_seconds`` floor is
    measured from actual compactions, not from requests.
    """

    def __init__(self, directory: Path, policy: CompactionPolicy) -> None:
        self._directory = Path(directory)
        self.policy = policy
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._pending_reason: Optional[str] = None
        self._last_compaction = time.monotonic()
        self.evaluations = 0
        self.policy_triggers = 0
        self.compactions_run = 0
        self.bytes_reclaimed = 0
        self.last_reason: Optional[str] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("compaction daemon already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-compaction", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(10.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.policy.check_interval_seconds):
            self.evaluate_once()

    # ------------------------------------------------------------------
    def evaluate_once(self) -> Optional[str]:
        """One policy evaluation (the thread's beat; tests call it too)."""
        with self._lock:
            self.evaluations += 1
            if self._pending_reason is not None:
                return self._pending_reason  # still waiting on the pump
            if (
                time.monotonic() - self._last_compaction
                < self.policy.min_interval_seconds
            ):
                return None
        reason = self.policy.evaluate(self._directory, time.time())
        if reason is None:
            return None
        with self._lock:
            if self._pending_reason is None:
                self._pending_reason = reason
                self.policy_triggers += 1
                self.last_reason = reason
                _LOGGER.info("compaction requested: %s", reason)
        return reason

    def take_request(self) -> Optional[str]:
        """Claim the pending trigger, if any (pump thread, after_pump)."""
        with self._lock:
            reason = self._pending_reason
            self._pending_reason = None
            return reason

    def record_compaction(self, report) -> None:
        """Note a completed policy-triggered compaction."""
        with self._lock:
            self._last_compaction = time.monotonic()
            self.compactions_run += 1
            reclaimed = getattr(report, "bytes_reclaimed", None)
            if reclaimed is None and isinstance(report, dict):
                reclaimed = report.get("bytes_reclaimed")
            if reclaimed:
                self.bytes_reclaimed += int(reclaimed)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-friendly counters (service scrape / drill report)."""
        with self._lock:
            return {
                "evaluations": self.evaluations,
                "policy_triggers": self.policy_triggers,
                "compactions_run": self.compactions_run,
                "bytes_reclaimed": self.bytes_reclaimed,
                "last_reason": self.last_reason,
                "pending": self._pending_reason is not None,
            }
