"""ASCII chart rendering for experiment results.

Offline-friendly replacement for matplotlib: renders a panel's series on
a character grid with axis ticks and a legend.  Good enough to check the
*shape* claims the reproduction targets (monotonicity, orderings,
plateaus) directly in terminal output and in CI logs.
"""

from __future__ import annotations

import math

from repro.experiments.results import Panel

_MARKERS = "ox+*#@%&"


def _ticks(lo: float, hi: float, count: int) -> list[float]:
    if hi <= lo:
        hi = lo + 1.0
    return [lo + (hi - lo) * i / (count - 1) for i in range(count)]


def ascii_chart(panel: Panel, *, width: int = 68, height: int = 14) -> str:
    """Render ``panel`` as an ASCII chart.

    Each series gets a marker character; overlapping points show the
    later series' marker.  Axes are annotated with min/max ticks.
    """
    if width < 20 or height < 6:
        raise ValueError("chart needs width >= 20 and height >= 6")

    xs = [x for s in panel.series for x in s.x]
    ys = [y for s in panel.series for y in s.y]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if math.isclose(x_lo, x_hi):
        x_lo, x_hi = x_lo - 0.5, x_hi + 0.5
    if math.isclose(y_lo, y_hi):
        y_lo, y_hi = y_lo - 0.5, y_hi + 0.5

    grid = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        frac = (x - x_lo) / (x_hi - x_lo)
        return min(width - 1, max(0, int(round(frac * (width - 1)))))

    def to_row(y: float) -> int:
        frac = (y - y_lo) / (y_hi - y_lo)
        return min(height - 1, max(0, int(round((1.0 - frac) * (height - 1)))))

    for idx, series in enumerate(panel.series):
        marker = _MARKERS[idx % len(_MARKERS)]
        points = sorted(zip(series.x, series.y))
        # Connect consecutive points with linear interpolation so trends
        # read as lines, then stamp the markers on top.
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            steps = max(abs(to_col(x1) - to_col(x0)), 1)
            for step in range(steps + 1):
                t = step / steps
                xi = x0 + (x1 - x0) * t
                yi = y0 + (y1 - y0) * t
                r, c = to_row(yi), to_col(xi)
                if grid[r][c] == " ":
                    grid[r][c] = "."
        for x, y in points:
            grid[to_row(y)][to_col(x)] = marker

    y_lo_label = f"{y_lo:.3g}"
    y_hi_label = f"{y_hi:.3g}"
    gutter = max(len(y_lo_label), len(y_hi_label)) + 1

    lines = []
    for r, row in enumerate(grid):
        if r == 0:
            prefix = y_hi_label.rjust(gutter)
        elif r == height - 1:
            prefix = y_lo_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * gutter + "+" + "-" * width)
    x_axis = f"{x_lo:.3g}".ljust(width - 8) + f"{x_hi:.3g}".rjust(8)
    lines.append(" " * (gutter + 1) + x_axis)
    lines.append(" " * (gutter + 1) + f"x: {panel.x_label}   y: {panel.y_label}")

    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {s.label}"
        for i, s in enumerate(panel.series)
    )
    lines.append(" " * (gutter + 1) + f"legend: {legend}")
    return "\n".join(lines)


def sparkline(values, *, width: int = 32) -> str:
    """Single-line trend summary (used in terse reports)."""
    glyphs = " .:-=+*#%@"
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if math.isclose(lo, hi):
        return glyphs[5] * min(len(vals), width)
    # Resample to width points.
    out = []
    n = min(width, len(vals))
    for i in range(n):
        src = int(i * (len(vals) - 1) / max(n - 1, 1))
        frac = (vals[src] - lo) / (hi - lo)
        out.append(glyphs[min(len(glyphs) - 1, int(frac * (len(glyphs) - 1)))])
    return "".join(out)
