"""Per-figure experiment definitions (one module per paper figure)."""

from repro.experiments.figures import fig2, fig3, fig4, fig5, fig6, fig7, fig8

__all__ = ["fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8"]
