"""Figure 5 — utility-privacy trade-off on synthetic data with GTM.

Identical sweep to Figure 2 but aggregating with the Gaussian Truth
Model, demonstrating the mechanism "can work with any truth discovery
method that can handle continuous data" (Section 3.1).  Expected shape:
same qualitative pattern as Figure 2.
"""

from __future__ import annotations

from repro.experiments.figures import fig2
from repro.experiments.results import FigureResult
from repro.experiments.runner import get_profile


def run(profile="quick", *, base_seed: int = 2020) -> FigureResult:
    """Regenerate Figure 5 (Figure 2's sweep under GTM)."""
    profile = get_profile(profile)
    result = fig2.run(profile, base_seed=base_seed, method="gtm")
    return FigureResult(
        figure_id="fig5",
        title="Utility-Privacy Trade-off on Synthetic Dataset (GTM)",
        panels=result.panels,
        metadata=result.metadata,
    )
