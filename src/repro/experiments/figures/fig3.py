"""Figure 3 — effect of lambda1 (error distribution of the original data).

The paper fixes a privacy target and sweeps lambda1 in (0, 10].  Because
the Lemma 4.7 sensitivity shrinks as data quality improves
(``Delta ~ gamma / lambda1``), the lambda2 required for the same
(epsilon, delta) grows with lambda1 and the added noise falls — and so
does the MAE.  Expected shape: both panels decrease in lambda1.
"""

from __future__ import annotations

import numpy as np

from repro.core.mechanism import PrivateTruthDiscovery
from repro.datasets.synthetic import generate_synthetic
from repro.experiments.results import FigureResult, Panel, Series
from repro.experiments.runner import get_profile, measure_utility
from repro.privacy.ldp import lambda2_for_epsilon
from repro.privacy.sensitivity import lemma47_bound
from repro.utils.rng import derive_seed

#: Fixed privacy target while lambda1 sweeps (paper keeps privacy fixed).
TARGET_EPSILON = 1.0
TARGET_DELTA = 0.3

#: Lemma 4.7 sensitivity parameters (same as Figure 2).
SENSITIVITY_B = 2.0
SENSITIVITY_ETA = 0.9


def lambda1_grid(grid_points: int, *, low: float = 1.0, high: float = 10.0) -> tuple:
    """The paper's lambda1 axis: (0, 10]; we start at 1 where Lemma 4.7's
    ``lambda1 >= 1`` assumption holds."""
    return tuple(np.linspace(low, high, grid_points))


def run(profile="quick", *, base_seed: int = 2020, method: str = "crh") -> FigureResult:
    """Regenerate Figure 3: MAE and average noise vs lambda1."""
    profile = get_profile(profile)
    lambda1s = lambda1_grid(profile.grid_points)
    maes, noises = [], []
    for lambda1 in lambda1s:
        dataset = generate_synthetic(
            num_users=profile.num_users,
            num_objects=profile.num_objects,
            lambda1=lambda1,
            random_state=derive_seed(base_seed, "fig3-data", f"{lambda1:.3f}"),
        )
        sensitivity = lemma47_bound(
            lambda1, b=SENSITIVITY_B, eta=SENSITIVITY_ETA
        ).value
        lambda2 = lambda2_for_epsilon(TARGET_EPSILON, sensitivity, TARGET_DELTA)
        pipeline = PrivateTruthDiscovery(method=method, lambda2=lambda2)
        point = measure_utility(
            dataset.claims,
            pipeline,
            num_trials=profile.num_trials,
            base_seed=base_seed,
            label=f"fig3-l{lambda1:.3f}",
        )
        maes.append(point.mae.mean)
        noises.append(point.noise.mean)

    return FigureResult(
        figure_id="fig3",
        title="Effect of lambda1 (Parameter of Error Distribution in Original Data)",
        panels=(
            Panel(
                title="(a) MAE",
                x_label="lambda1",
                y_label="MAE",
                series=(Series(label="mae", x=lambda1s, y=tuple(maes)),),
            ),
            Panel(
                title="(b) Average of Added Noise",
                x_label="lambda1",
                y_label="avg |noise|",
                series=(Series(label="noise", x=lambda1s, y=tuple(noises)),),
            ),
        ),
        metadata={
            "epsilon": TARGET_EPSILON,
            "delta": TARGET_DELTA,
            "method": method,
            "trials_per_point": profile.num_trials,
            "profile": profile.name,
        },
    )
