"""Figure 7 — weight comparison on the indoor floorplan dataset.

The paper plots, for 7 randomly selected users, the CRH-estimated weight
against the "true weight" (the weight CRH would assign given manually
measured ground truth), both on original data (7a) and on perturbed data
(7b).  Expected observations:

* estimated weights track true weights on both panels;
* a user who sampled a large noise variance has a visibly lower weight
  on the perturbed panel — the mechanism's self-correcting behaviour.

``run`` reproduces both panels and reports population-level correlation
in the metadata.  The x-axis is the user index 1..7, as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.floorplan import generate_floorplan_dataset
from repro.experiments.figures.fig6 import floorplan_shape
from repro.experiments.results import FigureResult, Panel, Series
from repro.experiments.runner import get_profile
from repro.metrics.weights import WeightComparison, true_weights
from repro.privacy.mechanisms import ExponentialVarianceGaussianMechanism
from repro.truthdiscovery.crh import CRH
from repro.utils.rng import as_generator, derive_seed

#: Number of users plotted, as in the paper.
NUM_SHOWN = 7

#: Mechanism parameter for panel (b): sized so the average added noise is
#: comparable to the claim spread (clearly visible weight adjustment).
PERTURB_LAMBDA2 = 0.5


def run(profile="quick", *, base_seed: int = 2020) -> FigureResult:
    """Regenerate Figure 7: true vs estimated weights, both data arms."""
    profile = get_profile(profile)
    num_users, num_segments = floorplan_shape(profile)
    dataset = generate_floorplan_dataset(
        num_users=num_users,
        num_segments=num_segments,
        random_state=derive_seed(base_seed, "fig7-data"),
    )
    method = CRH()

    # --- original data arm (panel a) ---------------------------------
    original_fit = method.fit(dataset.claims)
    original_true = true_weights(method, dataset.claims, dataset.segment_lengths)

    # --- perturbed data arm (panel b) ---------------------------------
    mechanism = ExponentialVarianceGaussianMechanism(PERTURB_LAMBDA2)
    perturbation = mechanism.perturb(
        dataset.claims, random_state=derive_seed(base_seed, "fig7-perturb")
    )
    perturbed_fit = method.fit(perturbation.perturbed)
    perturbed_true = true_weights(
        method, perturbation.perturbed, dataset.segment_lengths
    )

    rng = as_generator(derive_seed(base_seed, "fig7-select"))
    shown = np.sort(
        rng.choice(num_users, size=min(NUM_SHOWN, num_users), replace=False)
    )
    xs = tuple(float(i + 1) for i in range(len(shown)))

    original_panel = Panel(
        title="(a) Original Data",
        x_label="user",
        y_label="weight",
        series=(
            Series(label="true", x=xs, y=tuple(original_true[shown])),
            Series(label="estimated", x=xs, y=tuple(original_fit.weights[shown])),
        ),
    )
    perturbed_panel = Panel(
        title="(b) Perturbed Data",
        x_label="user",
        y_label="weight",
        series=(
            Series(label="true", x=xs, y=tuple(perturbed_true[shown])),
            Series(label="estimated", x=xs, y=tuple(perturbed_fit.weights[shown])),
        ),
    )

    corr_original = WeightComparison.compare(original_fit.weights, original_true)
    corr_perturbed = WeightComparison.compare(perturbed_fit.weights, perturbed_true)
    noisiest = int(np.argmax(perturbation.noise_variances))
    return FigureResult(
        figure_id="fig7",
        title="Weight Comparison",
        panels=(original_panel, perturbed_panel),
        metadata={
            "users_shown": [int(u) for u in shown],
            "pearson_original": f"{corr_original.pearson:.3f}",
            "pearson_perturbed": f"{corr_perturbed.pearson:.3f}",
            "noisiest_user": noisiest,
            "noisiest_user_variance": f"{perturbation.noise_variances[noisiest]:.3f}",
            "noisiest_user_weight_original": f"{original_fit.weights[noisiest]:.3f}",
            "noisiest_user_weight_perturbed": f"{perturbed_fit.weights[noisiest]:.3f}",
            "lambda2": PERTURB_LAMBDA2,
            "profile": profile.name,
        },
    )
