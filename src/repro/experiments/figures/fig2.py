"""Figure 2 — utility-privacy trade-off on synthetic data with CRH.

Paper setup (Section 5.1): 150 users with error variances from
Exp(lambda1), 30 objects; the mechanism's lambda2 is swept (via the
epsilon axis) for delta in {0.2, 0.3, 0.4, 0.5}; CRH aggregates.

Expected shape: added noise decreases in epsilon; MAE decreases slowly
and stays a small fraction (~1/10 in the paper) of the added noise.
"""

from __future__ import annotations

from repro.datasets.synthetic import generate_synthetic
from repro.experiments.figures.common import tradeoff_figure
from repro.experiments.results import FigureResult
from repro.experiments.runner import get_profile
from repro.privacy.sensitivity import lemma47_bound
from repro.utils.rng import derive_seed

#: Error-variance rate for the synthetic campaign; mean error variance
#: 1/4 (std 0.5) gives the mid-quality population of the paper's setup.
DEFAULT_LAMBDA1 = 4.0

#: Lemma 4.7 parameters used to size the public sensitivity bound.
SENSITIVITY_B = 2.0
SENSITIVITY_ETA = 0.9


def run(profile="quick", *, base_seed: int = 2020, method: str = "crh") -> FigureResult:
    """Regenerate Figure 2 (or its GTM twin when ``method='gtm'``)."""
    profile = get_profile(profile)
    dataset = generate_synthetic(
        num_users=profile.num_users,
        num_objects=profile.num_objects,
        lambda1=DEFAULT_LAMBDA1,
        random_state=derive_seed(base_seed, "fig2-data"),
    )
    sensitivity = lemma47_bound(
        DEFAULT_LAMBDA1, b=SENSITIVITY_B, eta=SENSITIVITY_ETA
    ).value
    return tradeoff_figure(
        figure_id="fig2" if method == "crh" else f"fig2-{method}",
        title=f"Utility-Privacy Trade-off on Synthetic Dataset ({method.upper()})",
        claims=dataset.claims,
        method=method,
        sensitivity=sensitivity,
        profile=profile,
        base_seed=derive_seed(base_seed, "fig2-sweep"),
        metadata={"lambda1": DEFAULT_LAMBDA1},
    )
