"""Figure 6 — utility-privacy trade-off on the indoor floorplan dataset.

The paper's real deployment (247 users, 129 hallway segments) is
replaced by the simulator in :mod:`repro.datasets.floorplan` (see
DESIGN.md, substitutions).  The sweep itself is identical to Figure 2's;
the sensitivity bound is estimated from the data because no analytic
lambda1 exists for walking errors: we use twice the mean per-segment
claim standard deviation, a public quantity a server could release.

Expected shape: same pattern as the synthetic figures — noise falls with
epsilon, MAE stays a small fraction of the noise.
"""

from __future__ import annotations

from repro.datasets.floorplan import generate_floorplan_dataset
from repro.experiments.figures.common import tradeoff_figure
from repro.experiments.results import FigureResult
from repro.experiments.runner import get_profile
from repro.utils.rng import derive_seed


def floorplan_shape(profile) -> tuple[int, int]:
    """Campaign shape by profile: paper scale for full, reduced for quick."""
    if profile.name == "quick":
        return 80, 40
    return 247, 129


def estimate_sensitivity(claims) -> float:
    """Public sensitivity bound for distance claims (metres).

    Two standard deviations of same-segment disagreement covers ~95% of
    the spread a single user's claim could move within, matching
    Definition 4.6's "range of information claimed about the same
    object".
    """
    return float(2.0 * claims.object_stds().mean())


def run(profile="quick", *, base_seed: int = 2020, method: str = "crh") -> FigureResult:
    """Regenerate Figure 6: the trade-off on (simulated) floorplan data."""
    profile = get_profile(profile)
    num_users, num_segments = floorplan_shape(profile)
    dataset = generate_floorplan_dataset(
        num_users=num_users,
        num_segments=num_segments,
        random_state=derive_seed(base_seed, "fig6-data"),
    )
    sensitivity = estimate_sensitivity(dataset.claims)
    return tradeoff_figure(
        figure_id="fig6",
        title="Utility-Privacy Trade-off on Indoor Floorplan Dataset",
        claims=dataset.claims,
        method=method,
        sensitivity=sensitivity,
        profile=profile,
        base_seed=derive_seed(base_seed, "fig6-sweep"),
        metadata={"dataset": "floorplan-sim"},
    )
