"""Figure 8 — efficiency study.

The paper fixes the truth discovery convergence threshold, varies the
added noise level, and plots the running time of truth discovery on
perturbed data (dots) against the running time on original data (solid
line).  Expected shape: perturbed-data time slightly above the original
baseline and roughly flat in the noise level — perturbation does not
change the iterative procedure's cost profile.

We time CRH with a fixed :class:`TruthChangeCriterion` threshold on a
floorplan-scale matrix, repeating each measurement and keeping the
median to tame scheduler jitter.
"""

from __future__ import annotations

import time

import numpy as np

from repro.datasets.synthetic import generate_synthetic
from repro.experiments.results import FigureResult, Panel, Series
from repro.experiments.runner import get_profile
from repro.privacy.mechanisms import ExponentialVarianceGaussianMechanism
from repro.privacy.noise import lambda2_for_expected_noise
from repro.truthdiscovery.convergence import TruthChangeCriterion
from repro.truthdiscovery.crh import CRH
from repro.utils.rng import derive_seed

#: Convergence threshold fixed across all runs (the paper's protocol).
CONVERGENCE_TOLERANCE = 1e-6

#: Noise axis: average |noise| from 0.1 to 1.0 (paper's x range).
NOISE_GRID_LOW = 0.1
NOISE_GRID_HIGH = 1.0


def _timed_fit(claims, *, repeats: int) -> float:
    """Median wall-clock seconds for a fresh CRH fit on ``claims``."""
    times = []
    for _ in range(repeats):
        method = CRH(
            convergence=TruthChangeCriterion(tolerance=CONVERGENCE_TOLERANCE)
        )
        start = time.perf_counter()
        method.fit(claims)
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def run(profile="quick", *, base_seed: int = 2020) -> FigureResult:
    """Regenerate Figure 8: truth discovery running time vs noise level."""
    profile = get_profile(profile)
    if profile.name == "quick":
        num_users, num_objects, repeats = 100, 60, 3
    else:
        num_users, num_objects, repeats = 300, 200, 5
    dataset = generate_synthetic(
        num_users=num_users,
        num_objects=num_objects,
        lambda1=4.0,
        random_state=derive_seed(base_seed, "fig8-data"),
    )

    baseline_seconds = _timed_fit(dataset.claims, repeats=repeats)

    noise_targets = np.linspace(
        NOISE_GRID_LOW, NOISE_GRID_HIGH, profile.grid_points
    )
    measured_noise, perturbed_seconds = [], []
    for target in noise_targets:
        lambda2 = lambda2_for_expected_noise(float(target))
        mechanism = ExponentialVarianceGaussianMechanism(lambda2)
        perturbation = mechanism.perturb(
            dataset.claims,
            random_state=derive_seed(base_seed, "fig8-perturb", f"{target:.3f}"),
        )
        measured_noise.append(perturbation.average_absolute_noise)
        perturbed_seconds.append(
            _timed_fit(perturbation.perturbed, repeats=repeats)
        )

    xs = tuple(float(x) for x in measured_noise)
    panel = Panel(
        title="Running Time",
        x_label="average |noise|",
        y_label="seconds",
        series=(
            Series(label="perturbed", x=xs, y=tuple(perturbed_seconds)),
            Series(
                label="original (baseline)",
                x=xs,
                y=tuple(baseline_seconds for _ in xs),
            ),
        ),
    )
    return FigureResult(
        figure_id="fig8",
        title="Efficiency Study",
        panels=(panel,),
        metadata={
            "users": num_users,
            "objects": num_objects,
            "repeats": repeats,
            "tolerance": CONVERGENCE_TOLERANCE,
            "baseline_seconds": f"{baseline_seconds:.4f}",
            "profile": profile.name,
        },
    )
