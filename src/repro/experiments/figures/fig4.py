"""Figure 4 — effect of S (number of users).

Users perturb independently, so the average added noise must be flat in
S (Fig. 4b), while more users give the truth discovery method more
signal to estimate weights, so MAE falls with S (Fig. 4a; Theorem 4.3's
S^2 term is the theoretical counterpart).

The mechanism parameter is held fixed across the sweep (same lambda2
regardless of S), exactly as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.core.mechanism import PrivateTruthDiscovery
from repro.datasets.synthetic import generate_synthetic
from repro.experiments.figures.fig2 import (
    DEFAULT_LAMBDA1,
    SENSITIVITY_B,
    SENSITIVITY_ETA,
)
from repro.experiments.results import FigureResult, Panel, Series
from repro.experiments.runner import get_profile, measure_utility
from repro.privacy.ldp import lambda2_for_epsilon
from repro.privacy.sensitivity import lemma47_bound
from repro.utils.rng import derive_seed

#: Privacy target defining the (fixed) mechanism for the whole sweep.
TARGET_EPSILON = 1.0
TARGET_DELTA = 0.3


def user_grid(grid_points: int, *, low: int = 100, high: int = 600) -> tuple:
    """The paper's S axis: 100 to 600 users."""
    return tuple(int(s) for s in np.linspace(low, high, grid_points))


def run(profile="quick", *, base_seed: int = 2020, method: str = "crh") -> FigureResult:
    """Regenerate Figure 4: MAE and average noise vs number of users."""
    profile = get_profile(profile)
    if profile.name == "quick":
        sizes = user_grid(profile.grid_points, low=40, high=200)
    else:
        sizes = user_grid(profile.grid_points)
    sensitivity = lemma47_bound(
        DEFAULT_LAMBDA1, b=SENSITIVITY_B, eta=SENSITIVITY_ETA
    ).value
    lambda2 = lambda2_for_epsilon(TARGET_EPSILON, sensitivity, TARGET_DELTA)

    # One large pool; each sweep point uses its first S users so that
    # smaller populations are strict subsets (lower variance across the
    # sweep, mirroring how a growing deployment actually behaves).
    pool = generate_synthetic(
        num_users=max(sizes),
        num_objects=profile.num_objects,
        lambda1=DEFAULT_LAMBDA1,
        random_state=derive_seed(base_seed, "fig4-data"),
    )

    maes, noises = [], []
    for size in sizes:
        claims = pool.claims.subset_users(range(size))
        pipeline = PrivateTruthDiscovery(method=method, lambda2=lambda2)
        point = measure_utility(
            claims,
            pipeline,
            num_trials=profile.num_trials,
            base_seed=base_seed,
            label=f"fig4-s{size}",
        )
        maes.append(point.mae.mean)
        noises.append(point.noise.mean)

    xs = tuple(float(s) for s in sizes)
    return FigureResult(
        figure_id="fig4",
        title="Effect of S (Number of Users)",
        panels=(
            Panel(
                title="(a) MAE",
                x_label="S",
                y_label="MAE",
                series=(Series(label="mae", x=xs, y=tuple(maes)),),
            ),
            Panel(
                title="(b) Average of Added Noise",
                x_label="S",
                y_label="avg |noise|",
                series=(Series(label="noise", x=xs, y=tuple(noises)),),
            ),
        ),
        metadata={
            "lambda1": DEFAULT_LAMBDA1,
            "lambda2": f"{lambda2:.4g}",
            "epsilon": TARGET_EPSILON,
            "delta": TARGET_DELTA,
            "method": method,
            "trials_per_point": profile.num_trials,
            "profile": profile.name,
        },
    )
