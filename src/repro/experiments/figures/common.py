"""Shared machinery for the utility-privacy trade-off figures (2, 5, 6).

All three figures have the same structure — two panels over an epsilon
axis, one curve per delta in {0.2, 0.3, 0.4, 0.5}:

* panel (a): MAE between aggregates on original and perturbed data,
* panel (b): average absolute added noise,

differing only in the dataset (synthetic vs floorplan) and the truth
discovery method (CRH vs GTM).  :func:`tradeoff_figure` implements the
sweep once.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.mechanism import PrivateTruthDiscovery
from repro.experiments.results import FigureResult, Panel, Series
from repro.experiments.runner import (
    Profile,
    epsilon_grid,
    measure_utility,
)
from repro.privacy.ldp import lambda2_for_epsilon
from repro.truthdiscovery.claims import ClaimMatrix

#: The paper's delta grid (Figures 2, 5, 6 legends).
PAPER_DELTAS = (0.2, 0.3, 0.4, 0.5)


def tradeoff_figure(
    *,
    figure_id: str,
    title: str,
    claims: ClaimMatrix,
    method: str,
    sensitivity: float,
    profile: Profile,
    base_seed: int,
    deltas: Sequence[float] = PAPER_DELTAS,
    epsilon_low: float = 0.25,
    epsilon_high: float = 3.0,
    metadata: dict | None = None,
) -> FigureResult:
    """Run the epsilon x delta sweep and package both panels.

    For each (epsilon, delta) point the mechanism parameter is derived
    through the Theorem 4.8 accounting
    (``lambda2 = 2 eps ln(1/(1-delta)) / sensitivity^2``), the pipeline
    perturbs and aggregates ``profile.num_trials`` times, and the mean
    MAE / mean added noise are recorded.
    """
    epsilons = epsilon_grid(profile, low=epsilon_low, high=epsilon_high)
    mae_series = []
    noise_series = []
    for delta in deltas:
        maes, noises = [], []
        for epsilon in epsilons:
            lambda2 = lambda2_for_epsilon(epsilon, sensitivity, delta)
            pipeline = PrivateTruthDiscovery(method=method, lambda2=lambda2)
            point = measure_utility(
                claims,
                pipeline,
                num_trials=profile.num_trials,
                base_seed=base_seed,
                label=f"{figure_id}-d{delta}-e{epsilon:.3f}",
            )
            maes.append(point.mae.mean)
            noises.append(point.noise.mean)
        label = f"delta={delta}"
        mae_series.append(Series(label=label, x=epsilons, y=tuple(maes)))
        noise_series.append(Series(label=label, x=epsilons, y=tuple(noises)))

    meta = {
        "method": method,
        "sensitivity": f"{sensitivity:.4g}",
        "users": claims.num_users,
        "objects": claims.num_objects,
        "trials_per_point": profile.num_trials,
        "profile": profile.name,
    }
    if metadata:
        meta.update(metadata)
    return FigureResult(
        figure_id=figure_id,
        title=title,
        panels=(
            Panel(
                title="(a) MAE",
                x_label="epsilon",
                y_label="MAE",
                series=tuple(mae_series),
            ),
            Panel(
                title="(b) Average of Added Noise",
                x_label="epsilon",
                y_label="avg |noise|",
                series=tuple(noise_series),
            ),
        ),
        metadata=meta,
    )


def check_tradeoff_shape(figure: FigureResult) -> list[str]:
    """Assert the paper's qualitative claims on a trade-off figure.

    Returns a list of human-readable violations (empty = all shape
    checks pass):

    * added noise decreases as epsilon grows (weaker privacy = less
      noise), for every delta;
    * at the largest noise point, MAE stays well below the noise itself
      (the headline "MAE is a small fraction of the noise" claim).
    """
    problems = []
    noise_panel = figure.panel("(b) Average of Added Noise")
    mae_panel = figure.panel("(a) MAE")
    for series in noise_panel.series:
        if not all(a >= b for a, b in zip(series.y, series.y[1:])):
            problems.append(
                f"{series.label}: added noise is not non-increasing in epsilon"
            )
    for mae_s, noise_s in zip(mae_panel.series, noise_panel.series):
        max_noise_idx = max(range(len(noise_s.y)), key=lambda i: noise_s.y[i])
        noise = noise_s.y[max_noise_idx]
        mae = mae_s.y[max_noise_idx]
        if noise > 0 and mae > 0.6 * noise:
            problems.append(
                f"{mae_s.label}: MAE {mae:.3g} is not well below noise "
                f"{noise:.3g} at the strongest-privacy point"
            )
    return problems
