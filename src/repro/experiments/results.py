"""Result containers for experiments: series, panels, figures.

Every paper figure is reproduced as a :class:`FigureResult` — a set of
panels, each holding named (x, y) series.  The containers know how to
render themselves as text tables and ASCII charts, which is how the
benchmark harness reports the regenerated figures (no plotting
dependencies are available offline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping


@dataclass(frozen=True)
class Series:
    """One named curve: paired x/y values."""

    label: str
    x: tuple
    y: tuple

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.label!r}: {len(self.x)} x values vs "
                f"{len(self.y)} y values"
            )
        if not self.x:
            raise ValueError(f"series {self.label!r} is empty")
        object.__setattr__(self, "x", tuple(float(v) for v in self.x))
        object.__setattr__(self, "y", tuple(float(v) for v in self.y))


@dataclass(frozen=True)
class Panel:
    """One subplot: several series over shared axes."""

    title: str
    x_label: str
    y_label: str
    series: tuple

    def __post_init__(self) -> None:
        if not self.series:
            raise ValueError(f"panel {self.title!r} has no series")
        labels = [s.label for s in self.series]
        if len(set(labels)) != len(labels):
            raise ValueError(f"panel {self.title!r} has duplicate series labels")

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series {label!r} in panel {self.title!r}")


@dataclass(frozen=True)
class FigureResult:
    """A reproduced figure: identity, panels, and provenance metadata."""

    figure_id: str
    title: str
    panels: tuple
    metadata: Mapping = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.panels:
            raise ValueError("figure needs at least one panel")

    def panel(self, title: str) -> Panel:
        for p in self.panels:
            if p.title == title:
                return p
        raise KeyError(f"no panel {title!r} in {self.figure_id}")

    def to_rows(self) -> list[dict]:
        """Flatten into table rows: one row per (panel, series, point)."""
        rows = []
        for panel in self.panels:
            for series in panel.series:
                for x, y in zip(series.x, series.y):
                    rows.append(
                        {
                            "figure": self.figure_id,
                            "panel": panel.title,
                            "series": series.label,
                            panel.x_label: x,
                            panel.y_label: y,
                        }
                    )
        return rows

    def render(self, *, width: int = 68, height: int = 14) -> str:
        """Tables + ASCII charts for every panel."""
        from repro.experiments.plotting import ascii_chart
        from repro.experiments.reporting import panel_table

        blocks = [f"=== {self.figure_id}: {self.title} ==="]
        for key, value in self.metadata.items():
            blocks.append(f"    {key}: {value}")
        for panel in self.panels:
            blocks.append("")
            blocks.append(f"--- {panel.title} ---")
            blocks.append(panel_table(panel))
            blocks.append(ascii_chart(panel, width=width, height=height))
        return "\n".join(blocks)
