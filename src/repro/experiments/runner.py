"""Multi-trial experiment execution.

Perturbation is random, so every reported point is averaged over
independent trials with derived seeds.  :class:`TrialStats` carries the
mean plus spread so tables can show confidence alongside the headline
number.  A :class:`Profile` scales trial counts and grid densities so the
same experiment code serves quick CI checks and full paper-quality runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.mechanism import PrivateTruthDiscovery
from repro.truthdiscovery.claims import ClaimMatrix
from repro.utils.rng import derive_seed
from repro.utils.validation import ensure_int


@dataclass(frozen=True)
class TrialStats:
    """Mean/std/extremes of one measured quantity across trials."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "TrialStats":
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            raise ValueError("need at least one trial value")
        return cls(
            mean=float(arr.mean()),
            std=float(arr.std(ddof=0)),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
            count=int(arr.size),
        )


@dataclass(frozen=True)
class Profile:
    """Scales experiment cost: grid density and trials per point.

    ``quick`` keeps the full sweep structure at reduced cost so tests and
    benchmark CI runs finish in seconds; ``full`` is the paper-quality
    setting used for EXPERIMENTS.md numbers.
    """

    name: str
    num_trials: int
    grid_points: int
    num_users: int
    num_objects: int

    def __post_init__(self) -> None:
        ensure_int(self.num_trials, "num_trials", minimum=1)
        ensure_int(self.grid_points, "grid_points", minimum=2)
        ensure_int(self.num_users, "num_users", minimum=2)
        ensure_int(self.num_objects, "num_objects", minimum=1)


QUICK = Profile(name="quick", num_trials=3, grid_points=5, num_users=60, num_objects=15)
FULL = Profile(
    name="full", num_trials=10, grid_points=12, num_users=150, num_objects=30
)

_PROFILES = {"quick": QUICK, "full": FULL}


def get_profile(name_or_profile) -> Profile:
    """Resolve a profile by name ('quick' / 'full') or pass one through."""
    if isinstance(name_or_profile, Profile):
        return name_or_profile
    try:
        return _PROFILES[name_or_profile]
    except KeyError:
        raise KeyError(
            f"unknown profile {name_or_profile!r}; available: "
            f"{sorted(_PROFILES)}"
        ) from None


@dataclass(frozen=True)
class UtilityPoint:
    """One averaged measurement of the original-vs-perturbed comparison."""

    mae: TrialStats
    noise: TrialStats
    rmse: TrialStats
    private_seconds: TrialStats
    original_seconds: TrialStats


def measure_utility(
    claims: ClaimMatrix,
    pipeline: PrivateTruthDiscovery,
    *,
    num_trials: int,
    base_seed: int,
    label: str = "",
) -> UtilityPoint:
    """Average the paper's utility comparison over ``num_trials`` seeds.

    Trial ``i`` uses seed ``derive_seed(base_seed, label, i)`` so that
    points in a sweep are independent but individually reproducible.
    """
    ensure_int(num_trials, "num_trials", minimum=1)
    maes, noises, rmses, private_s, original_s = [], [], [], [], []
    for trial in range(num_trials):
        seed = derive_seed(base_seed, "utility", label, trial)
        evaluation = pipeline.evaluate_utility(claims, random_state=seed)
        maes.append(evaluation.accuracy.mae)
        rmses.append(evaluation.accuracy.rmse)
        noises.append(evaluation.average_absolute_noise)
        private_s.append(evaluation.private_seconds)
        original_s.append(evaluation.original_seconds)
    return UtilityPoint(
        mae=TrialStats.from_values(maes),
        noise=TrialStats.from_values(noises),
        rmse=TrialStats.from_values(rmses),
        private_seconds=TrialStats.from_values(private_s),
        original_seconds=TrialStats.from_values(original_s),
    )


def sweep(
    values: Sequence,
    point_fn: Callable[[object], tuple[float, float]],
) -> tuple[tuple, tuple]:
    """Evaluate ``point_fn`` over ``values``; returns (xs, ys) tuples.

    Tiny helper keeping figure modules declarative; ``point_fn`` returns
    ``(x, y)`` so non-identity x mappings (e.g. plotting measured noise
    instead of the swept parameter) stay explicit.
    """
    xs, ys = [], []
    for value in values:
        x, y = point_fn(value)
        xs.append(float(x))
        ys.append(float(y))
    return tuple(xs), tuple(ys)


def epsilon_grid(profile: Profile, *, low: float = 0.25, high: float = 3.0) -> tuple:
    """The epsilon sweep used by Figures 2/5/6 (paper x-axis: 0 to 3)."""
    return tuple(np.linspace(low, high, profile.grid_points))
