"""Experiment harness: regenerates every figure in the paper's evaluation.

``run_experiment("fig2")`` (or the CLI: ``repro-experiments run fig2``)
executes the corresponding sweep and returns a
:class:`~repro.experiments.results.FigureResult` that renders as tables
and ASCII charts.
"""

from typing import Callable

from repro.experiments import ablations, extensions
from repro.experiments.figures import fig2, fig3, fig4, fig5, fig6, fig7, fig8
from repro.experiments.results import FigureResult, Panel, Series
from repro.experiments.runner import (
    FULL,
    QUICK,
    Profile,
    TrialStats,
    UtilityPoint,
    get_profile,
    measure_utility,
)

EXPERIMENTS: dict[str, Callable[..., FigureResult]] = {
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "ablation-methods": ablations.methods_ablation,
    "ablation-mechanisms": ablations.mechanisms_ablation,
    "ablation-scaling": ablations.scaling_experiment,
    "ablation-sparsity": ablations.sparsity_ablation,
    "ext-privacy-audit": extensions.privacy_audit,
    "ext-categorical-rr": extensions.categorical_rr,
    "ext-theory-check": extensions.theory_check,
    "ext-tradeoff-window": extensions.tradeoff_window,
}


def _fig2_with_catd(profile="quick", **kwargs):
    """Figure 2's sweep under CATD — a third method-generality check
    (the paper demonstrates CRH and GTM; CATD extends the claim)."""
    return fig2.run(profile, method="catd", **kwargs)


EXPERIMENTS["fig2-catd"] = _fig2_with_catd


def run_experiment(name: str, profile="quick", **kwargs) -> FigureResult:
    """Run one named experiment and return its figure result."""
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return fn(profile, **kwargs)


def available_experiments() -> list[str]:
    """Sorted names of all runnable experiments."""
    return sorted(EXPERIMENTS)


__all__ = [
    "EXPERIMENTS",
    "FULL",
    "FigureResult",
    "Panel",
    "Profile",
    "QUICK",
    "Series",
    "TrialStats",
    "UtilityPoint",
    "available_experiments",
    "get_profile",
    "measure_utility",
    "run_experiment",
]
