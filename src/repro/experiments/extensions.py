"""Extension experiments beyond the paper's figures.

* :func:`privacy_audit` — empirical distinguishing attacks vs the
  closed-form Laplace-marginal prediction (tests the "noise distribution
  unknown to the server" story quantitatively).
* :func:`categorical_rr` — the categorical analogue of Figure 2:
  label error vs randomized-response epsilon for majority / weighted
  voting / accuracy-EM.
* :func:`theory_check` — Monte Carlo validation of Theorem 4.3: the
  empirical probability of the aggregate moving by >= alpha never
  exceeds the theorem's Chebyshev bound.
"""

from __future__ import annotations

import numpy as np

from repro.core.mechanism import PrivateTruthDiscovery
from repro.datasets.synthetic import generate_synthetic
from repro.experiments.results import FigureResult, Panel, Series
from repro.experiments.runner import get_profile
from repro.metrics.accuracy import mae
from repro.privacy.attacks import (
    audit_mechanism,
    theoretical_marginal_advantage,
)
from repro.privacy.randomized_response import RandomizedResponseMechanism
from repro.theory.tradeoff import lambda2_for_noise_level
from repro.theory.utility import alpha_threshold, utility_failure_bound
from repro.truthdiscovery.categorical import (
    AccuracyEM,
    MajorityVoting,
    WeightedVoting,
    generate_categorical_dataset,
)
from repro.utils.rng import derive_seed

AUDIT_GAP = 1.0
AUDIT_LAMBDAS = (0.1, 0.25, 0.5, 1.0, 2.0, 4.0)
RR_EPSILONS = (0.5, 1.0, 1.5, 2.0, 3.0)
THEORY_NOISE_LEVELS = (0.5, 1.0, 2.0, 4.0)


def privacy_audit(profile="quick", *, base_seed: int = 2020) -> FigureResult:
    """Distinguishing-attack accuracy vs lambda2, against theory."""
    profile = get_profile(profile)
    num_trials = 20_000 if profile.name == "full" else 4_000
    rows: dict[str, list[float]] = {
        "threshold": [],
        "marginal-lr": [],
        "known-variance-lr": [],
        "theory": [],
    }
    for lam in AUDIT_LAMBDAS:
        reports = audit_mechanism(
            lam, 0.0, AUDIT_GAP,
            num_trials=num_trials,
            random_state=derive_seed(base_seed, "audit", f"{lam}"),
        )
        for name in ("threshold", "marginal-lr", "known-variance-lr"):
            rows[name].append(reports[name].accuracy)
        rows["theory"].append(
            0.5 + theoretical_marginal_advantage(lam, AUDIT_GAP)
        )
    xs = tuple(float(l) for l in AUDIT_LAMBDAS)
    return FigureResult(
        figure_id="ext-privacy-audit",
        title="Distinguishing Attack Accuracy vs lambda2 (gap = 1)",
        panels=(
            Panel(
                title="Attack accuracy",
                x_label="lambda2",
                y_label="accuracy",
                series=tuple(
                    Series(label=name, x=xs, y=tuple(values))
                    for name, values in rows.items()
                ),
            ),
        ),
        metadata={"gap": AUDIT_GAP, "trials": num_trials, "profile": profile.name},
    )


def categorical_rr(profile="quick", *, base_seed: int = 2020) -> FigureResult:
    """Label error vs randomized-response epsilon (categorical Figure 2)."""
    profile = get_profile(profile)
    if profile.name == "full":
        num_users, num_objects, trials = 150, 100, 5
    else:
        num_users, num_objects, trials = 60, 40, 2
    claims, truths, _acc = generate_categorical_dataset(
        num_users, num_objects, 4,
        accuracy_low=0.6, accuracy_high=0.95,
        random_state=derive_seed(base_seed, "cat-data"),
    )
    methods = {
        "majority": MajorityVoting,
        "weighted-voting": WeightedVoting,
        "accuracy-em": AccuracyEM,
    }
    errors: dict[str, list[float]] = {name: [] for name in methods}
    for epsilon in RR_EPSILONS:
        mech = RandomizedResponseMechanism(epsilon)
        trial_errors: dict[str, list[float]] = {name: [] for name in methods}
        for trial in range(trials):
            seed = derive_seed(base_seed, "cat-rr", f"{epsilon}", trial)
            perturbed = mech.perturb(claims, random_state=seed).perturbed
            for name, cls in methods.items():
                result = cls().fit(perturbed)
                trial_errors[name].append(
                    float((result.truths != truths).mean())
                )
        for name in methods:
            errors[name].append(float(np.mean(trial_errors[name])))
    xs = tuple(float(e) for e in RR_EPSILONS)
    return FigureResult(
        figure_id="ext-categorical-rr",
        title="Categorical Truth Discovery under Randomized Response",
        panels=(
            Panel(
                title="Label error",
                x_label="epsilon",
                y_label="error rate",
                series=tuple(
                    Series(label=name, x=xs, y=tuple(values))
                    for name, values in errors.items()
                ),
            ),
        ),
        metadata={
            "users": num_users,
            "objects": num_objects,
            "categories": 4,
            "trials": trials,
            "profile": profile.name,
        },
    )


def tradeoff_window(profile="quick", *, base_seed: int = 2020) -> FigureResult:
    """Theorem 4.9's feasible noise-level window as a function of lambda1.

    Plots the privacy lower bound ``c_min`` (Thm 4.8) and the utility
    upper bound ``c_max`` (Thm 4.3) over data quality; the region
    between them is where both guarantees hold simultaneously.  The
    crossing point is Eq. 19's knife edge (solved independently with
    Brent's method and overlaid as a degenerate series for the tables).

    Pure theory — no simulation, so the profile only labels the output.
    """
    from repro.theory.privacy import min_noise_level
    from repro.theory.tradeoff import matched_lambda1
    from repro.theory.utility import max_noise_level

    profile = get_profile(profile)
    alpha, beta, num_users = 0.5, 0.1, 100
    epsilon, delta = 1.0, 0.3
    lambda1s = tuple(float(x) for x in np.linspace(0.05, 2.0, 40))
    c_min = tuple(
        min_noise_level(l1, epsilon, delta) for l1 in lambda1s
    )
    c_max = tuple(
        max(0.0, max_noise_level(l1, alpha, beta, num_users))
        for l1 in lambda1s
    )
    knife_edge = matched_lambda1(
        alpha, beta, num_users, epsilon, delta, bracket=(0.01, 10.0)
    )
    return FigureResult(
        figure_id="ext-tradeoff-window",
        title="Theorem 4.9 Feasible Window vs Data Quality",
        panels=(
            Panel(
                title="Noise-level bounds",
                x_label="lambda1",
                y_label="noise level c",
                series=(
                    Series(label="c_min (privacy, Thm 4.8)", x=lambda1s, y=c_min),
                    Series(label="c_max (utility, Thm 4.3)", x=lambda1s, y=c_max),
                ),
            ),
        ),
        metadata={
            "alpha": alpha,
            "beta": beta,
            "users": num_users,
            "epsilon": epsilon,
            "delta": delta,
            "knife_edge_lambda1": f"{knife_edge:.4f}",
            "profile": profile.name,
        },
    )


def theory_check(profile="quick", *, base_seed: int = 2020) -> FigureResult:
    """Monte Carlo validation of Theorem 4.3's failure-probability bound.

    For each noise level ``c``: generate a dataset per Assumption 4.1,
    run the mechanism many times, and compare the empirical
    ``Pr[mean |x* - xhat*| >= alpha]`` against
    :func:`repro.theory.utility.utility_failure_bound` at
    ``alpha = 1.5 x alpha_threshold``.  The theorem holds iff every
    empirical point sits at or below the bound curve.
    """
    profile = get_profile(profile)
    lambda1 = 4.0
    if profile.name == "full":
        num_users, num_objects, replicates = 100, 40, 200
    else:
        num_users, num_objects, replicates = 50, 20, 60
    empirical, bound, alphas = [], [], []
    for c in THEORY_NOISE_LEVELS:
        alpha = 1.5 * alpha_threshold(lambda1, c)
        alphas.append(alpha)
        lambda2 = lambda2_for_noise_level(lambda1, c)
        dataset = generate_synthetic(
            num_users=num_users,
            num_objects=num_objects,
            lambda1=lambda1,
            random_state=derive_seed(base_seed, "theory-data", f"{c}"),
        )
        pipeline = PrivateTruthDiscovery(method="crh", lambda2=lambda2)
        original = pipeline.method.fit(dataset.claims)
        exceed = 0
        for rep in range(replicates):
            outcome = pipeline.run(
                dataset.claims,
                random_state=derive_seed(base_seed, "theory-rep", f"{c}", rep),
            )
            if mae(original.truths, outcome.truths) >= alpha:
                exceed += 1
        empirical.append(exceed / replicates)
        bound.append(utility_failure_bound(lambda1, c, alpha, num_users))
    xs = tuple(float(c) for c in THEORY_NOISE_LEVELS)
    return FigureResult(
        figure_id="ext-theory-check",
        title="Theorem 4.3 Bound vs Empirical Failure Probability",
        panels=(
            Panel(
                title="Pr[MAE >= alpha]",
                x_label="noise level c",
                y_label="probability",
                series=(
                    Series(label="empirical", x=xs, y=tuple(empirical)),
                    Series(label="theorem bound", x=xs, y=tuple(bound)),
                ),
            ),
        ),
        metadata={
            "lambda1": lambda1,
            "users": num_users,
            "objects": num_objects,
            "replicates": replicates,
            "alphas": [f"{a:.3f}" for a in alphas],
            "profile": profile.name,
        },
    )
