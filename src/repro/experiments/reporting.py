"""Text-table rendering for experiment results."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.experiments.results import FigureResult, Panel


def format_table(rows: Sequence[Mapping], *, float_format: str = "{:.4g}") -> str:
    """Render a list of dict rows as an aligned text table.

    Columns are the union of keys in first-seen order; floats use
    ``float_format``.
    """
    if not rows:
        return "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def fmt(value) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    divider = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.ljust(w) for cell, w in zip(r, widths)) for r in rendered
    ]
    return "\n".join([header, divider, *body])


def panel_table(panel: Panel, *, float_format: str = "{:.4g}") -> str:
    """Wide-format table for a panel: one row per x, one column per series."""
    all_x = sorted({x for s in panel.series for x in s.x})
    rows = []
    for x in all_x:
        row: dict = {panel.x_label: x}
        for series in panel.series:
            lookup = dict(zip(series.x, series.y))
            if x in lookup:
                row[series.label] = lookup[x]
        rows.append(row)
    return format_table(rows, float_format=float_format)


def figure_markdown(figure: FigureResult) -> str:
    """Markdown table block for EXPERIMENTS.md."""
    lines = [f"### {figure.figure_id}: {figure.title}", ""]
    for key, value in figure.metadata.items():
        lines.append(f"- {key}: {value}")
    if figure.metadata:
        lines.append("")
    for panel in figure.panels:
        lines.append(f"**{panel.title}** ({panel.y_label} vs {panel.x_label})")
        lines.append("")
        all_x = sorted({x for s in panel.series for x in s.x})
        header = [panel.x_label] + [s.label for s in panel.series]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "---|" * len(header))
        for x in all_x:
            cells = [f"{x:.4g}"]
            for series in panel.series:
                lookup = dict(zip(series.x, series.y))
                cells.append(f"{lookup[x]:.4g}" if x in lookup else "")
            lines.append("| " + " | ".join(cells) + " |")
        lines.append("")
    return "\n".join(lines)
