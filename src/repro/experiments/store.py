"""Persistence for experiment results.

Figures serialise to a stable JSON schema so that runs can be archived,
diffed across code versions, and re-rendered without re-running sweeps
(full-profile figures take minutes).  :class:`ResultStore` manages a
directory of saved figures keyed by figure id.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.experiments.results import FigureResult, Panel, Series

PathLike = Union[str, Path]

_SCHEMA_VERSION = 1


def figure_to_dict(figure: FigureResult) -> dict:
    """Serialise a figure to plain JSON-compatible types."""
    return {
        "schema_version": _SCHEMA_VERSION,
        "figure_id": figure.figure_id,
        "title": figure.title,
        "metadata": {str(k): _jsonable(v) for k, v in figure.metadata.items()},
        "panels": [
            {
                "title": panel.title,
                "x_label": panel.x_label,
                "y_label": panel.y_label,
                "series": [
                    {"label": s.label, "x": list(s.x), "y": list(s.y)}
                    for s in panel.series
                ],
            }
            for panel in figure.panels
        ],
    }


def figure_from_dict(payload: dict) -> FigureResult:
    """Inverse of :func:`figure_to_dict`."""
    version = payload.get("schema_version")
    if version != _SCHEMA_VERSION:
        raise ValueError(
            f"unsupported result schema version {version!r} "
            f"(expected {_SCHEMA_VERSION})"
        )
    panels = tuple(
        Panel(
            title=p["title"],
            x_label=p["x_label"],
            y_label=p["y_label"],
            series=tuple(
                Series(label=s["label"], x=tuple(s["x"]), y=tuple(s["y"]))
                for s in p["series"]
            ),
        )
        for p in payload["panels"]
    )
    return FigureResult(
        figure_id=payload["figure_id"],
        title=payload["title"],
        panels=panels,
        metadata=payload.get("metadata", {}),
    )


def save_figure(figure: FigureResult, path: PathLike) -> Path:
    """Write one figure to a JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(figure_to_dict(figure), indent=2) + "\n")
    return path


def load_figure(path: PathLike) -> FigureResult:
    """Read a figure written by :func:`save_figure`."""
    payload = json.loads(Path(path).read_text())
    return figure_from_dict(payload)


class ResultStore:
    """A directory of saved figures, keyed by figure id."""

    def __init__(self, directory: PathLike) -> None:
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)

    def _path(self, figure_id: str) -> Path:
        if not figure_id or "/" in figure_id:
            raise ValueError(f"invalid figure id {figure_id!r}")
        return self._dir / f"{figure_id}.json"

    def put(self, figure: FigureResult) -> Path:
        """Save (overwriting any previous run of the same figure)."""
        return save_figure(figure, self._path(figure.figure_id))

    def get(self, figure_id: str) -> FigureResult:
        path = self._path(figure_id)
        if not path.exists():
            raise KeyError(
                f"no saved result for {figure_id!r} in {self._dir} "
                f"(available: {self.list()})"
            )
        return load_figure(path)

    def list(self) -> list[str]:
        """Sorted ids of all saved figures."""
        return sorted(p.stem for p in self._dir.glob("*.json"))

    def __contains__(self, figure_id: str) -> bool:
        return self._path(figure_id).exists()


def _jsonable(value):
    """Coerce metadata values to JSON-compatible types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)
