"""Ablation experiments for the design choices the paper argues for.

* :func:`methods_ablation` — Section 3.2, bullet 2: weighted aggregation
  (CRH/GTM/CATD) "provides better accuracy than traditional aggregation
  methods, such as mean or median" under noise.  Measured as
  ground-truth error of each method's aggregate on perturbed data.
* :func:`mechanisms_ablation` — what the private-variance layer and the
  Gaussian shape buy: the paper's mechanism vs fixed-variance Gaussian
  vs Laplace, all matched at equal expected |noise|.
* :func:`scaling_experiment` — Section 5.3's claim (citing CRH) that
  running time grows linearly in the number of objects.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.datasets.synthetic import generate_synthetic, generate_with_adversaries
from repro.experiments.results import FigureResult, Panel, Series
from repro.experiments.runner import get_profile
from repro.metrics.accuracy import mae
from repro.privacy.mechanisms import (
    ExponentialVarianceGaussianMechanism,
    FixedGaussianMechanism,
    LaplaceMechanism,
)
from repro.privacy.noise import lambda2_for_expected_noise
from repro.truthdiscovery.crh import CRH
from repro.truthdiscovery.registry import create_method
from repro.utils.rng import derive_seed

DEFAULT_METHODS = ("crh", "gtm", "catd", "mean", "median")


def methods_ablation(
    profile="quick",
    *,
    base_seed: int = 2020,
    methods: Sequence[str] = DEFAULT_METHODS,
    adversary_fraction: float = 0.15,
) -> FigureResult:
    """Ground-truth error of each aggregation method vs noise level.

    Uses the adversarial synthetic population (a biased minority), where
    uniform averaging visibly suffers — the regime truth discovery is
    built for.
    """
    profile = get_profile(profile)
    dataset = generate_with_adversaries(
        num_users=profile.num_users,
        num_objects=profile.num_objects,
        lambda1=4.0,
        adversary_fraction=adversary_fraction,
        random_state=derive_seed(base_seed, "ablation-methods-data"),
    )
    noise_targets = np.linspace(0.1, 1.0, profile.grid_points)

    series = []
    for name in methods:
        errors = []
        for target in noise_targets:
            mechanism = ExponentialVarianceGaussianMechanism(
                lambda2_for_expected_noise(float(target))
            )
            trial_errors = []
            for trial in range(profile.num_trials):
                seed = derive_seed(
                    base_seed, "ablation-methods", name, f"{target:.3f}", trial
                )
                perturbed = mechanism.perturb(dataset.claims, random_state=seed)
                result = create_method(name).fit(perturbed.perturbed)
                trial_errors.append(mae(dataset.ground_truth, result.truths))
            errors.append(float(np.mean(trial_errors)))
        series.append(
            Series(label=name, x=tuple(float(t) for t in noise_targets), y=tuple(errors))
        )

    return FigureResult(
        figure_id="ablation-methods",
        title="Aggregation Methods under Perturbation (ground-truth error)",
        panels=(
            Panel(
                title="Ground-truth MAE",
                x_label="target avg |noise|",
                y_label="MAE vs ground truth",
                series=tuple(series),
            ),
        ),
        metadata={
            "adversary_fraction": adversary_fraction,
            "trials_per_point": profile.num_trials,
            "profile": profile.name,
        },
    )


def mechanisms_ablation(
    profile="quick", *, base_seed: int = 2020
) -> FigureResult:
    """Original-vs-perturbed MAE for the three mechanisms at matched noise."""
    profile = get_profile(profile)
    dataset = generate_synthetic(
        num_users=profile.num_users,
        num_objects=profile.num_objects,
        lambda1=4.0,
        random_state=derive_seed(base_seed, "ablation-mechanisms-data"),
    )
    method = CRH()
    original = method.fit(dataset.claims)
    noise_targets = np.linspace(0.1, 1.0, profile.grid_points)

    def build(name: str, magnitude: float):
        if name == "exp-gaussian":
            return ExponentialVarianceGaussianMechanism(
                lambda2_for_expected_noise(magnitude)
            )
        if name == "fixed-gaussian":
            return FixedGaussianMechanism.matching_expected_noise(magnitude)
        return LaplaceMechanism.matching_expected_noise(magnitude)

    series = []
    for name in ("exp-gaussian", "fixed-gaussian", "laplace"):
        maes = []
        for target in noise_targets:
            mechanism = build(name, float(target))
            trial_maes = []
            for trial in range(profile.num_trials):
                seed = derive_seed(
                    base_seed, "ablation-mechanisms", name, f"{target:.3f}", trial
                )
                perturbed = mechanism.perturb(dataset.claims, random_state=seed)
                result = CRH().fit(perturbed.perturbed)
                trial_maes.append(mae(original.truths, result.truths))
            maes.append(float(np.mean(trial_maes)))
        series.append(
            Series(label=name, x=tuple(float(t) for t in noise_targets), y=tuple(maes))
        )

    return FigureResult(
        figure_id="ablation-mechanisms",
        title="Perturbation Mechanisms at Matched Expected Noise",
        panels=(
            Panel(
                title="Original-vs-perturbed MAE",
                x_label="target avg |noise|",
                y_label="MAE",
                series=tuple(series),
            ),
        ),
        metadata={
            "method": "crh",
            "trials_per_point": profile.num_trials,
            "profile": profile.name,
        },
    )


def sparsity_ablation(
    profile="quick", *, base_seed: int = 2020
) -> FigureResult:
    """Effect of matrix density on private aggregation quality.

    Real campaigns are sparse (each user answers a subset of
    micro-tasks).  Sweeps the missing rate at a fixed moderate noise
    level and reports original-vs-perturbed MAE — the utility metric —
    plus ground-truth MAE for context.  Expected: both degrade
    gracefully as evidence thins, with no cliff.
    """
    profile = get_profile(profile)
    missing_rates = (0.0, 0.2, 0.4, 0.6, 0.8)
    mechanism_lambda2 = lambda2_for_expected_noise(0.5)
    utility_mae, truth_mae = [], []
    for missing in missing_rates:
        dataset = generate_synthetic(
            num_users=profile.num_users,
            num_objects=profile.num_objects,
            lambda1=4.0,
            missing_rate=missing,
            random_state=derive_seed(base_seed, "sparsity-data", f"{missing}"),
        )
        method = CRH(per_claim=True)
        original = method.fit(dataset.claims)
        mechanism = ExponentialVarianceGaussianMechanism(mechanism_lambda2)
        u_trials, t_trials = [], []
        for trial in range(profile.num_trials):
            seed = derive_seed(base_seed, "sparsity", f"{missing}", trial)
            perturbed = mechanism.perturb(dataset.claims, random_state=seed)
            result = CRH(per_claim=True).fit(perturbed.perturbed)
            u_trials.append(mae(original.truths, result.truths))
            t_trials.append(mae(dataset.ground_truth, result.truths))
        utility_mae.append(float(np.mean(u_trials)))
        truth_mae.append(float(np.mean(t_trials)))

    xs = tuple(float(m) for m in missing_rates)
    return FigureResult(
        figure_id="ablation-sparsity",
        title="Effect of Missing Observations (fixed noise 0.5)",
        panels=(
            Panel(
                title="MAE",
                x_label="missing rate",
                y_label="MAE",
                series=(
                    Series(label="vs unperturbed", x=xs, y=tuple(utility_mae)),
                    Series(label="vs ground truth", x=xs, y=tuple(truth_mae)),
                ),
            ),
        ),
        metadata={
            "lambda1": 4.0,
            "target_noise": 0.5,
            "trials_per_point": profile.num_trials,
            "profile": profile.name,
        },
    )


def scaling_experiment(
    profile="quick", *, base_seed: int = 2020
) -> FigureResult:
    """CRH running time vs number of objects (expected: ~linear)."""
    profile = get_profile(profile)
    if profile.name == "quick":
        object_counts = (50, 100, 200, 400)
        num_users, repeats = 60, 3
    else:
        object_counts = (100, 300, 1000, 3000, 10000)
        num_users, repeats = 150, 5
    times = []
    for num_objects in object_counts:
        dataset = generate_synthetic(
            num_users=num_users,
            num_objects=num_objects,
            lambda1=4.0,
            random_state=derive_seed(base_seed, "scaling", num_objects),
        )
        samples = []
        for _ in range(repeats):
            start = time.perf_counter()
            CRH().fit(dataset.claims)
            samples.append(time.perf_counter() - start)
        times.append(float(np.median(samples)))

    xs = tuple(float(n) for n in object_counts)
    return FigureResult(
        figure_id="ablation-scaling",
        title="Running Time vs Number of Objects",
        panels=(
            Panel(
                title="Running Time",
                x_label="objects",
                y_label="seconds",
                series=(Series(label="crh", x=xs, y=tuple(times)),),
            ),
        ),
        metadata={
            "users": num_users,
            "repeats": repeats,
            "profile": profile.name,
        },
    )
