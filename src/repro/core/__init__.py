"""Core: the paper's privacy-preserving truth discovery mechanism.

:class:`PrivateTruthDiscovery` is the Algorithm 2 pipeline; the config
and result types round out the public API.
"""

from repro.core.config import PrivacyConfig
from repro.core.mechanism import PrivateTruthDiscovery
from repro.core.results import PrivateAggregationOutcome, UtilityEvaluation

__all__ = [
    "PrivacyConfig",
    "PrivateAggregationOutcome",
    "PrivateTruthDiscovery",
    "UtilityEvaluation",
]
