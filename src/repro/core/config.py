"""Configuration objects for the privacy-preserving truth discovery pipeline.

Two ways to size the mechanism, mirroring how a deployment would be
planned:

* **mechanism-first** — give ``lambda2`` directly (the server knob of
  Algorithm 2);
* **privacy-first** — give a target ``(epsilon, delta)`` and a public
  sensitivity bound; ``lambda2`` is derived through the Theorem 4.8
  accounting (:func:`repro.privacy.ldp.lambda2_for_epsilon`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.privacy.ldp import lambda2_for_epsilon
from repro.utils.validation import ensure_in_range, ensure_positive


@dataclass(frozen=True)
class PrivacyConfig:
    """Resolved mechanism parameters plus their provenance.

    Attributes
    ----------
    lambda2:
        The exponential rate the server releases (Algorithm 2, line 3).
    epsilon, delta, sensitivity:
        The privacy target this lambda2 was derived from, when built via
        :meth:`from_privacy_target`; informational otherwise.
    """

    lambda2: float
    epsilon: Optional[float] = None
    delta: Optional[float] = None
    sensitivity: Optional[float] = None

    def __post_init__(self) -> None:
        ensure_positive(self.lambda2, "lambda2")
        if self.epsilon is not None:
            ensure_positive(self.epsilon, "epsilon")
        if self.delta is not None:
            ensure_in_range(
                self.delta, "delta", 0.0, 1.0,
                low_inclusive=False, high_inclusive=False,
            )
        if self.sensitivity is not None:
            ensure_positive(self.sensitivity, "sensitivity")

    @classmethod
    def from_lambda2(cls, lambda2: float) -> "PrivacyConfig":
        """Mechanism-first construction."""
        return cls(lambda2=lambda2)

    @classmethod
    def from_privacy_target(
        cls, epsilon: float, delta: float, sensitivity: float
    ) -> "PrivacyConfig":
        """Privacy-first construction: derive lambda2 from the target."""
        lambda2 = lambda2_for_epsilon(epsilon, sensitivity, delta)
        return cls(
            lambda2=lambda2,
            epsilon=epsilon,
            delta=delta,
            sensitivity=sensitivity,
        )

    @property
    def expected_noise_variance(self) -> float:
        """Mean of the per-user variance draw: ``1 / lambda2``."""
        return 1.0 / self.lambda2

    @property
    def expected_absolute_noise(self) -> float:
        """Mean |noise| per claim: ``1 / sqrt(2 lambda2)``."""
        return (2.0 * self.lambda2) ** -0.5
