"""Privacy-preserving truth discovery — the paper's Algorithm 2.

This module is the library's main entry point.  It wires together the
client-side perturbation mechanism (:mod:`repro.privacy.mechanisms`) and
a server-side truth discovery method (:mod:`repro.truthdiscovery`):

1. the server releases ``lambda2``;
2. each user samples a private variance ``delta_s^2 ~ Exp(lambda2)`` and
   perturbs their claims with ``N(0, delta_s^2)`` noise;
3. users submit only the perturbed claims;
4. the server runs truth discovery (any continuous-data method) on the
   perturbed matrix and publishes the aggregated results.

Example
-------
>>> import numpy as np
>>> from repro.core import PrivateTruthDiscovery
>>> from repro.truthdiscovery import ClaimMatrix
>>> claims = ClaimMatrix(np.random.default_rng(0).normal(5, 1, (40, 10)))
>>> ptd = PrivateTruthDiscovery(method="crh", lambda2=2.0)
>>> outcome = ptd.run(claims, random_state=0)
>>> outcome.truths.shape
(10,)
"""

from __future__ import annotations

import time
from typing import Optional, Union

from repro.core.config import PrivacyConfig
from repro.core.results import PrivateAggregationOutcome, UtilityEvaluation
from repro.metrics.accuracy import AccuracyReport
from repro.privacy.ldp import LDPGuarantee
from repro.privacy.mechanisms import (
    ExponentialVarianceGaussianMechanism,
    PerturbationMechanism,
)
from repro.truthdiscovery.base import TruthDiscoveryMethod
from repro.truthdiscovery.claims import ClaimMatrix
from repro.truthdiscovery.registry import create_method
from repro.utils.logging import get_logger
from repro.utils.rng import RandomState, spawn_generators

_LOGGER = get_logger("core")


class PrivateTruthDiscovery:
    """End-to-end Algorithm 2 pipeline.

    Parameters
    ----------
    method:
        Truth discovery method name (see
        :func:`repro.truthdiscovery.available_methods`) or an instance.
    lambda2:
        The server hyper-parameter. Mutually exclusive with ``config``.
    config:
        A :class:`PrivacyConfig` (e.g. built privacy-first from a target
        epsilon/delta/sensitivity).
    mechanism:
        Advanced: a fully-constructed
        :class:`~repro.privacy.mechanisms.PerturbationMechanism` to use
        instead of the paper's exponential-variance Gaussian (used by the
        mechanism-ablation benchmarks).  Mutually exclusive with
        ``lambda2``/``config``.
    """

    def __init__(
        self,
        method: Union[str, TruthDiscoveryMethod] = "crh",
        *,
        lambda2: Optional[float] = None,
        config: Optional[PrivacyConfig] = None,
        mechanism: Optional[PerturbationMechanism] = None,
        **method_kwargs,
    ) -> None:
        given = sum(x is not None for x in (lambda2, config, mechanism))
        if given != 1:
            raise ValueError(
                "exactly one of lambda2, config, or mechanism must be given"
            )
        if lambda2 is not None:
            config = PrivacyConfig.from_lambda2(lambda2)
        if config is not None:
            mechanism = ExponentialVarianceGaussianMechanism(config.lambda2)
        self.config = config
        self.mechanism = mechanism
        if isinstance(method, TruthDiscoveryMethod):
            if method_kwargs:
                raise ValueError(
                    "method_kwargs only apply when method is given by name"
                )
            self.method = method
        else:
            self.method = create_method(method, **method_kwargs)

    # ------------------------------------------------------------------
    def run(
        self,
        claims: ClaimMatrix,
        *,
        random_state: RandomState = None,
        record_history: bool = False,
    ) -> PrivateAggregationOutcome:
        """Execute Algorithm 2 on ``claims``.

        ``claims`` plays the role of the users' original data; the
        pipeline perturbs it client-side and aggregates server-side.
        Deterministic given ``random_state``.
        """
        perturbation = self.mechanism.perturb(claims, random_state=random_state)
        discovery = self.method.fit(
            perturbation.perturbed, record_history=record_history
        )
        guarantee = self._static_guarantee()
        _LOGGER.debug(
            "pipeline run: method=%s mechanism=%s iterations=%d",
            self.method.name,
            self.mechanism.name,
            discovery.iterations,
        )
        return PrivateAggregationOutcome(
            discovery=discovery, perturbation=perturbation, guarantee=guarantee
        )

    def evaluate_utility(
        self,
        claims: ClaimMatrix,
        *,
        random_state: RandomState = None,
    ) -> UtilityEvaluation:
        """Run on original *and* perturbed data and compare aggregates.

        This is the experiment the paper's Definition 4.2 formalises:
        ``|A(D) - A(M(D))|`` — both arms use the same method instance
        configuration, and timing of each arm is recorded for the
        efficiency analysis (Fig. 8).
        """
        rng_original, rng_private = spawn_generators(random_state, 2)
        del rng_original  # original arm is deterministic; slot reserved
        start = time.perf_counter()
        original = self.method.fit(claims)
        original_seconds = time.perf_counter() - start

        start = time.perf_counter()
        private = self.run(claims, random_state=rng_private)
        private_seconds = time.perf_counter() - start

        accuracy = AccuracyReport.compare(original.truths, private.truths)
        return UtilityEvaluation(
            original=original,
            private=private,
            accuracy=accuracy,
            original_seconds=original_seconds,
            private_seconds=private_seconds,
        )

    def guarantee(self, sensitivity: float, delta: float) -> LDPGuarantee:
        """The per-user LDP guarantee at a given sensitivity and delta."""
        return self.mechanism.guarantee(sensitivity, delta)

    # ------------------------------------------------------------------
    def _static_guarantee(self) -> Optional[LDPGuarantee]:
        if self.config is None:
            return None
        if self.config.sensitivity is None or self.config.delta is None:
            return None
        return self.mechanism.guarantee(
            self.config.sensitivity, self.config.delta
        )

    @classmethod
    def for_privacy_target(
        cls,
        epsilon: float,
        delta: float,
        sensitivity: float,
        *,
        method: Union[str, TruthDiscoveryMethod] = "crh",
        **method_kwargs,
    ) -> "PrivateTruthDiscovery":
        """Privacy-first constructor: derive lambda2 from the target."""
        config = PrivacyConfig.from_privacy_target(epsilon, delta, sensitivity)
        return cls(method=method, config=config, **method_kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PrivateTruthDiscovery(method={self.method.name!r}, "
            f"mechanism={self.mechanism.name!r})"
        )
