"""Result bundles returned by the privacy-preserving pipeline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.metrics.accuracy import AccuracyReport
from repro.privacy.ldp import LDPGuarantee
from repro.privacy.mechanisms import PerturbationResult
from repro.truthdiscovery.base import TruthDiscoveryResult


@dataclass(frozen=True)
class PrivateAggregationOutcome:
    """Output of one Algorithm 2 run (perturb + truth discovery).

    Attributes
    ----------
    discovery:
        The server-side truth discovery result on perturbed data
        (``xhat*`` and the weights estimated from perturbed claims).
    perturbation:
        The client-side perturbation record. ``perturbation.noise`` and
        ``noise_variances`` exist only inside experiments; a real server
        never sees them.
    guarantee:
        The per-user (epsilon, delta)-LDP guarantee, when the pipeline
        was configured with a sensitivity bound (None otherwise).
    """

    discovery: TruthDiscoveryResult
    perturbation: PerturbationResult
    guarantee: Optional[LDPGuarantee] = None

    @property
    def truths(self) -> np.ndarray:
        """Aggregated results ``{xhat*_n}`` (Algorithm 2's output)."""
        return self.discovery.truths

    @property
    def weights(self) -> np.ndarray:
        """User weights estimated from the perturbed data."""
        return self.discovery.weights

    @property
    def average_absolute_noise(self) -> float:
        """Mean |added noise| per observed claim."""
        return self.perturbation.average_absolute_noise


@dataclass(frozen=True)
class UtilityEvaluation:
    """Side-by-side original vs perturbed run — the paper's utility view.

    ``accuracy`` compares the two aggregate vectors (MAE is the paper's
    headline utility number); the embedded outcomes keep full detail for
    weight comparisons (Fig. 7) and efficiency analysis (Fig. 8).
    """

    original: TruthDiscoveryResult
    private: PrivateAggregationOutcome
    accuracy: AccuracyReport
    original_seconds: float
    private_seconds: float

    @property
    def mae(self) -> float:
        """MAE between aggregates on original and perturbed data."""
        return self.accuracy.mae

    @property
    def average_absolute_noise(self) -> float:
        return self.private.average_absolute_noise

    def summary(self) -> str:
        """One-line human-readable digest."""
        noise = self.average_absolute_noise
        return (
            f"noise={noise:.4f} mae={self.mae:.4f} "
            f"(utility loss is {self.mae / noise:.1%} of noise)"
            if noise > 0
            else f"noise=0 mae={self.mae:.4f}"
        )
