"""Privacy substrate: perturbation mechanisms, LDP accounting, sensitivity.

Implements the client side of the paper's Algorithm 2 (the
exponential-variance Gaussian mechanism), the (epsilon, delta)-local-DP
accounting of Section 4.2, the sensitivity definitions of Definition 4.6
and Lemma 4.7, and baseline mechanisms for ablations.
"""

from repro.privacy.accountant import PrivacyAccountant, PrivacyEvent
from repro.privacy.attacks import (
    AttackReport,
    LikelihoodRatioAttacker,
    ThresholdAttacker,
    audit_mechanism,
    marginal_density,
    theoretical_marginal_advantage,
)
from repro.privacy.ldp import (
    LDPGuarantee,
    epsilon_for_variance,
    epsilon_of_mechanism,
    guarantee_of_mechanism,
    lambda2_for_epsilon,
    laplace_epsilon,
    marginal_laplace_epsilon,
    strict_gaussian_epsilon,
    variance_for_epsilon,
)
from repro.privacy.mechanisms import (
    ExponentialVarianceGaussianMechanism,
    FixedGaussianMechanism,
    LaplaceMechanism,
    NullMechanism,
    PerturbationMechanism,
    PerturbationResult,
    create_mechanism,
)
from repro.privacy.noise import (
    expected_absolute_noise,
    gaussian_absolute_moment,
    lambda2_for_expected_noise,
    sample_exponential_variances,
    sample_gaussian_noise,
)
from repro.privacy.randomized_response import (
    CategoricalPerturbationResult,
    PrivatePreferenceRandomizedResponse,
    RandomizedResponseMechanism,
    debias_vote_counts,
    epsilon_for_keep_probability,
    keep_probability,
)
from repro.privacy.sensitivity import (
    SensitivityBound,
    gamma_factor,
    global_claim_range,
    lemma47_bound,
    normalized_sensitivity,
    per_user_claim_range,
)

__all__ = [
    "AttackReport",
    "CategoricalPerturbationResult",
    "ExponentialVarianceGaussianMechanism",
    "LikelihoodRatioAttacker",
    "PrivatePreferenceRandomizedResponse",
    "RandomizedResponseMechanism",
    "ThresholdAttacker",
    "audit_mechanism",
    "debias_vote_counts",
    "epsilon_for_keep_probability",
    "keep_probability",
    "marginal_density",
    "theoretical_marginal_advantage",
    "FixedGaussianMechanism",
    "LDPGuarantee",
    "LaplaceMechanism",
    "NullMechanism",
    "PerturbationMechanism",
    "PerturbationResult",
    "PrivacyAccountant",
    "PrivacyEvent",
    "SensitivityBound",
    "create_mechanism",
    "epsilon_for_variance",
    "epsilon_of_mechanism",
    "expected_absolute_noise",
    "gamma_factor",
    "gaussian_absolute_moment",
    "global_claim_range",
    "guarantee_of_mechanism",
    "lambda2_for_epsilon",
    "lambda2_for_expected_noise",
    "laplace_epsilon",
    "marginal_laplace_epsilon",
    "lemma47_bound",
    "normalized_sensitivity",
    "per_user_claim_range",
    "sample_exponential_variances",
    "sample_gaussian_noise",
    "strict_gaussian_epsilon",
    "variance_for_epsilon",
]
