"""Sensitive information (paper Definition 4.6 and Lemma 4.7).

The sensitivity of user ``s`` is the width of the range of values they
might claim about one object:

    Delta_s = max_{x1, x2} |x1 - x2|.

Two views are provided:

* **Empirical** estimators computed from observed data — what a deployed
  system can measure (per-user claim range, or a global claim range for a
  uniform public bound).
* **Analytic** bound from Lemma 4.7 — with error variance drawn from
  ``Exp(lambda1)``, the claim spread satisfies
  ``Delta_s <= gamma_s / lambda1`` with probability at least
  ``eta * (1 - 2 exp(-b^2/2) / b)`` where
  ``gamma_s = b * sqrt(2 * ln(1/(1-eta)))``.

Note (documented deviation): Lemma 4.7's chain uses
``M = sqrt(ln(1/(1-eta)) / lambda1)`` and then writes ``M <=
sqrt(ln(1/(1-eta))) / lambda1`` under the assumption ``lambda1 >= 1``.
We implement the bound exactly as stated (``gamma_s / lambda1``) and
expose ``holds_probability`` so callers can see the associated confidence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.truthdiscovery.claims import ClaimMatrix
from repro.utils.validation import ensure_in_range, ensure_positive


@dataclass(frozen=True)
class SensitivityBound:
    """Lemma 4.7 output: a bound value and the probability it holds."""

    value: float
    holds_probability: float
    b: float
    eta: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError("sensitivity bound must be non-negative")


def gamma_factor(b: float, eta: float) -> float:
    """``gamma_s = b * sqrt(2 * ln(1/(1-eta)))`` (Lemma 4.7)."""
    ensure_positive(b, "b")
    ensure_in_range(eta, "eta", 0.0, 1.0, low_inclusive=False, high_inclusive=False)
    return b * math.sqrt(2.0 * math.log(1.0 / (1.0 - eta)))


def lemma47_bound(lambda1: float, *, b: float = 3.0, eta: float = 0.95) -> SensitivityBound:
    """Analytic sensitivity bound ``Delta_s <= gamma_s / lambda1``.

    Parameters
    ----------
    lambda1:
        Parameter of the exponential distribution of users' error
        variances (Assumption 4.1's counterpart for the original data).
    b:
        Gaussian tail multiplier; the bound holds with the tail factor
        ``1 - 2 exp(-b^2 / 2) / b``.
    eta:
        Confidence that a user's error std is below the exponential
        quantile ``M``.
    """
    ensure_positive(lambda1, "lambda1")
    gamma = gamma_factor(b, eta)
    tail = 1.0 - 2.0 * math.exp(-(b**2) / 2.0) / b
    probability = max(0.0, eta * tail)
    return SensitivityBound(
        value=gamma / lambda1, holds_probability=probability, b=b, eta=eta
    )


def per_user_claim_range(claims: ClaimMatrix) -> np.ndarray:
    """Empirical ``Delta_s``: range (max - min) of each user's claims.

    Users with a single observation get range 0; callers aggregating
    should treat that as "no evidence", not "no sensitivity".
    """
    out = np.zeros(claims.num_users)
    for s in range(claims.num_users):
        vals = claims.claims_for_user(s)
        if vals.size >= 2:
            out[s] = float(vals.max() - vals.min())
    return out


def global_claim_range(claims: ClaimMatrix) -> float:
    """Uniform public sensitivity: range of all observed claims.

    A server that publishes one ``lambda2`` for everyone (Algorithm 2
    line 3) sizes it against a single public bound; the global claim
    range is the conservative choice.
    """
    observed = claims.observed_values()
    return float(observed.max() - observed.min())


def normalized_sensitivity(claims: ClaimMatrix) -> float:
    """Global claim range divided by the mean per-object std.

    A scale-free sensitivity useful when comparing datasets whose claims
    live on different numeric scales (synthetic vs floorplan metres).
    """
    stds = claims.object_stds()
    rng_ = global_claim_range(claims)
    mean_std = float(stds.mean())
    if mean_std <= 0:
        return rng_
    return rng_ / mean_std
