"""Per-user LDP accountant.

Tracks every perturbed submission a user makes and reports the cumulative
privacy guarantee.  In the paper's one-shot setting each user submits a
single perturbed vector, so the guarantee is just the mechanism's; the
accountant generalises this to repeated campaigns via basic composition
(epsilons and deltas add), which is the standard conservative rule and
keeps the accounting honest when examples run multi-round campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from repro.privacy.ldp import LDPGuarantee


@dataclass(frozen=True)
class PrivacyEvent:
    """One recorded release of perturbed data by one user."""

    user_id: Hashable
    guarantee: LDPGuarantee
    mechanism: str
    label: str = ""


class PrivacyAccountant:
    """Accumulates :class:`PrivacyEvent` records and composes guarantees."""

    def __init__(self) -> None:
        self._events: list[PrivacyEvent] = []

    def record(
        self,
        user_id: Hashable,
        guarantee: LDPGuarantee,
        *,
        mechanism: str = "",
        label: str = "",
    ) -> None:
        """Record one release for ``user_id``."""
        self._events.append(
            PrivacyEvent(
                user_id=user_id,
                guarantee=guarantee,
                mechanism=mechanism,
                label=label,
            )
        )

    def record_for_all(
        self,
        user_ids: Iterable[Hashable],
        guarantee: LDPGuarantee,
        *,
        mechanism: str = "",
        label: str = "",
    ) -> None:
        """Record the same release for every user in ``user_ids``.

        Matches Algorithm 2, where a single server-released ``lambda2``
        gives every user the same per-release guarantee.
        """
        for uid in user_ids:
            self.record(uid, guarantee, mechanism=mechanism, label=label)

    def events_for(self, user_id: Hashable) -> list[PrivacyEvent]:
        return [e for e in self._events if e.user_id == user_id]

    def composed_guarantee(self, user_id: Hashable) -> LDPGuarantee:
        """Basic composition over all of a user's releases.

        Returns (0, 0) for users with no recorded events — they have
        released nothing, so they have perfect privacy.
        """
        events = self.events_for(user_id)
        if not events:
            return LDPGuarantee(epsilon=0.0, delta=0.0)
        eps = sum(e.guarantee.epsilon for e in events)
        delta = sum(e.guarantee.delta for e in events)
        return LDPGuarantee(epsilon=eps, delta=min(delta, 1.0))

    def worst_case(self) -> LDPGuarantee:
        """The weakest composed guarantee across all tracked users."""
        users = {e.user_id for e in self._events}
        if not users:
            return LDPGuarantee(epsilon=0.0, delta=0.0)
        guarantees = [self.composed_guarantee(u) for u in users]
        worst = max(guarantees, key=lambda g: (g.epsilon, g.delta))
        return worst

    @property
    def num_events(self) -> int:
        return len(self._events)

    def reset(self) -> None:
        self._events.clear()
