"""Randomized response for categorical claims (extension subsystem).

The categorical counterpart of the paper's continuous mechanism,
following the generalized (k-ary) randomized response used in LDP
systems: a user reports their true label with probability

    p = e^eps / (e^eps + k - 1)

and each specific wrong label with probability ``1 / (e^eps + k - 1)``.
This satisfies pure ``eps``-LDP for a single claim (Def. 4.5 with
delta = 0), which is exactly the density-ratio condition on a discrete
domain.

:class:`PrivatePreferenceRandomizedResponse` mirrors the paper's
private-variance idea for the categorical domain: each user samples a
private epsilon from ``Exp(rate)`` truncated below at ``epsilon_floor``,
so the server knows only the distribution of privacy levels, never any
individual user's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
import numpy as np

from repro.privacy.ldp import LDPGuarantee
from repro.truthdiscovery.categorical import CategoricalClaimMatrix
from repro.utils.rng import RandomState, spawn_generators
from repro.utils.validation import ensure_positive


@dataclass(frozen=True)
class CategoricalPerturbationResult:
    """Output of one randomized-response pass."""

    perturbed: CategoricalClaimMatrix
    flipped: np.ndarray = field(repr=False)  # bool (S, N), True where changed
    epsilons: np.ndarray = field(repr=False)  # per-user epsilon actually used
    mechanism: str = "randomized-response"

    @property
    def flip_rate(self) -> float:
        """Fraction of observed claims whose label changed."""
        mask = self.perturbed.mask
        if not mask.any():
            return 0.0
        return float(self.flipped[mask].mean())


def keep_probability(epsilon: float, num_categories: int) -> float:
    """``p = e^eps / (e^eps + k - 1)`` — probability of reporting truth."""
    ensure_positive(epsilon, "epsilon")
    if num_categories < 2:
        raise ValueError("num_categories must be >= 2")
    e = math.exp(epsilon)
    return e / (e + num_categories - 1)


def epsilon_for_keep_probability(p: float, num_categories: int) -> float:
    """Inverse of :func:`keep_probability`."""
    if not (0.0 < p < 1.0):
        raise ValueError(f"p must be in (0, 1), got {p}")
    if num_categories < 2:
        raise ValueError("num_categories must be >= 2")
    if p <= 1.0 / num_categories:
        raise ValueError(
            "keep probability at or below chance is not achievable by "
            "randomized response with positive epsilon"
        )
    return math.log(p * (num_categories - 1) / (1.0 - p))


class RandomizedResponseMechanism:
    """k-ary randomized response with one public epsilon for everyone."""

    name = "randomized-response"

    def __init__(self, epsilon: float) -> None:
        self.epsilon = ensure_positive(epsilon, "epsilon")

    def perturb(
        self,
        claims: CategoricalClaimMatrix,
        random_state: RandomState = None,
    ) -> CategoricalPerturbationResult:
        epsilons = np.full(claims.num_users, self.epsilon)
        return _apply_rr(claims, epsilons, self.name, random_state)

    def guarantee(self) -> LDPGuarantee:
        """Pure eps-LDP per claim (delta = 0)."""
        return LDPGuarantee(epsilon=self.epsilon, delta=0.0)


class PrivatePreferenceRandomizedResponse:
    """Randomized response with privately sampled per-user epsilon.

    Each user draws ``eps_s = epsilon_floor + Exp(rate)`` from their own
    stream — the categorical analogue of the paper's private-variance
    Gaussian: the server releases only ``(epsilon_floor, rate)`` and
    never learns any individual's realised privacy level, so an
    adversary cannot invert a specific user's flip probability.

    Accounting mirrors Theorem 4.8's high-probability style: the
    exponential excess exceeds ``ln(1/delta)/rate`` with probability
    ``delta``, so with probability ``1 - delta`` every user's realised
    epsilon is at most ``epsilon_floor + ln(1/delta)/rate``.
    """

    name = "private-preference-rr"

    def __init__(self, epsilon_floor: float, rate: float) -> None:
        self.epsilon_floor = ensure_positive(epsilon_floor, "epsilon_floor")
        self.rate = ensure_positive(rate, "rate")

    def perturb(
        self,
        claims: CategoricalClaimMatrix,
        random_state: RandomState = None,
    ) -> CategoricalPerturbationResult:
        streams = spawn_generators(random_state, claims.num_users + 1)
        eps_stream, user_streams = streams[0], streams[1:]
        epsilons = self.epsilon_floor + eps_stream.exponential(
            scale=1.0 / self.rate, size=claims.num_users
        )
        return _apply_rr_streams(claims, epsilons, user_streams, self.name)

    def guarantee(self, delta: float = 0.05) -> LDPGuarantee:
        """(eps, delta) statement over the private epsilon draw.

        With probability ``1 - delta`` the realised per-user epsilon is
        at most ``epsilon_floor + ln(1/delta)/rate``; the residual
        probability is absorbed into delta, exactly as Theorem 4.8
        absorbs the small-variance tail of the Gaussian mechanism.
        """
        if not (0.0 < delta < 1.0):
            raise ValueError(f"delta must be in (0, 1), got {delta}")
        bound = self.epsilon_floor + math.log(1.0 / delta) / self.rate
        return LDPGuarantee(epsilon=bound, delta=delta)


def _apply_rr(
    claims: CategoricalClaimMatrix,
    epsilons: np.ndarray,
    mechanism_name: str,
    random_state: RandomState,
) -> CategoricalPerturbationResult:
    streams = spawn_generators(random_state, claims.num_users)
    return _apply_rr_streams(claims, epsilons, streams, mechanism_name)


def _apply_rr_streams(
    claims: CategoricalClaimMatrix,
    epsilons: np.ndarray,
    streams,
    mechanism_name: str,
) -> CategoricalPerturbationResult:
    k = claims.num_categories
    labels = claims.labels.copy()
    flipped = np.zeros(claims.labels.shape, dtype=bool)
    for s, rng in enumerate(streams):
        p_keep = keep_probability(float(epsilons[s]), k)
        observed = np.flatnonzero(claims.mask[s])
        if observed.size == 0:
            continue
        keep = rng.random(observed.size) < p_keep
        # A "flip" draws uniformly among the k-1 *other* labels.
        offsets = rng.integers(1, k, size=observed.size)
        new_labels = (claims.labels[s, observed] + offsets) % k
        labels[s, observed] = np.where(
            keep, claims.labels[s, observed], new_labels
        )
        flipped[s, observed] = ~keep
    return CategoricalPerturbationResult(
        perturbed=claims.with_labels(labels),
        flipped=flipped,
        epsilons=np.asarray(epsilons, dtype=float),
        mechanism=mechanism_name,
    )


def debias_vote_counts(
    counts: np.ndarray, epsilon: float, num_categories: int
) -> np.ndarray:
    """Invert randomized response in expectation on per-object counts.

    Given observed (possibly weighted) vote counts ``c`` under k-RR with
    keep probability ``p``, the unbiased estimate of the true counts is
    ``(c - n q) / (p - q)`` with ``q = (1 - p) / (k - 1)`` and ``n`` the
    per-object total.  Negative estimates are clipped to zero.
    """
    counts = np.asarray(counts, dtype=float)
    p = keep_probability(epsilon, num_categories)
    q = (1.0 - p) / (num_categories - 1)
    totals = counts.sum(axis=1, keepdims=True)
    estimate = (counts - totals * q) / (p - q)
    return np.maximum(estimate, 0.0)
