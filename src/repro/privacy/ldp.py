"""Local differential privacy accounting (paper Definition 4.5, Thm 4.8).

The paper quantifies privacy with (epsilon, delta)-local differential
privacy: for any output set ``S`` and any two records ``x1 != x2``,

    Pr{M(x1) in S} <= e^eps * Pr{M(x2) in S} + delta.        (Def. 4.5)

For the exponential-variance Gaussian mechanism the accounting goes
through the sampled variance ``y``:

* given a realised variance ``y``, the Gaussian density-ratio argument of
  Eq. 18 yields ``eps = Delta^2 / (2 y)``;
* the variance exceeds the threshold ``Delta^2 / (2 eps)`` with
  probability ``exp(-lambda2 * Delta^2 / (2 eps))`` which must be at
  least ``1 - delta``; the complementary event is absorbed into the
  additive ``delta``.

Solving that relation in each direction gives the two conversion
functions below, which the experiments use to put ``epsilon`` on the
x-axis (sweeping ``lambda2``).

Documented deviations from the paper text
-----------------------------------------
1. Theorem 4.8 as printed drops ``epsilon`` from the lower bound on the
   noise level ``c``; the proof's Eq. 18 gives
   ``c >= lambda1 * Delta^2 / (2 * eps * ln(1/(1-delta)))``.  We implement
   the epsilon-dependent form (the printed form is its ``eps = 1``
   special case). See ``repro.theory.privacy``.
2. Eq. 18's pointwise density-ratio inequality for two Gaussians with the
   *same* variance only holds on a half-line of outputs; the standard
   Gaussian-mechanism analysis patches this with an extra additive tail
   delta.  We therefore also provide :func:`strict_gaussian_epsilon`
   (classical analytic bound) so users can do conservative accounting;
   the experiments use the paper's accounting to match its figures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import ensure_in_range, ensure_positive


@dataclass(frozen=True)
class LDPGuarantee:
    """An (epsilon, delta)-LDP statement for one user/mechanism pair."""

    epsilon: float
    delta: float

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {self.epsilon}")
        ensure_in_range(self.delta, "delta", 0.0, 1.0)

    def is_stronger_than(self, other: "LDPGuarantee") -> bool:
        """True when this guarantee dominates ``other`` in both parameters."""
        return self.epsilon <= other.epsilon and self.delta <= other.delta

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.epsilon:.4g}, {self.delta:.4g})-LDP"


def epsilon_for_variance(noise_variance: float, sensitivity: float) -> float:
    """Eq. 18 pointwise bound: ``eps = Delta^2 / (2 y)`` for realised ``y``."""
    ensure_positive(noise_variance, "noise_variance")
    ensure_positive(sensitivity, "sensitivity", strict=False)
    return sensitivity**2 / (2.0 * noise_variance)


def variance_for_epsilon(epsilon: float, sensitivity: float) -> float:
    """Minimum Gaussian variance achieving ``eps`` under Eq. 18."""
    ensure_positive(epsilon, "epsilon")
    ensure_positive(sensitivity, "sensitivity", strict=False)
    return sensitivity**2 / (2.0 * epsilon)


def epsilon_of_mechanism(
    lambda2: float, sensitivity: float, delta: float
) -> float:
    """Paper-style epsilon of the exponential-variance mechanism.

    From ``Pr{y >= Delta^2/(2 eps)} = exp(-lambda2 Delta^2 / (2 eps))
    >= 1 - delta`` we get ``eps = lambda2 * Delta^2 / (2 ln(1/(1-delta)))``.

    Smaller ``lambda2`` (bigger expected noise) or larger allowed
    ``delta`` both shrink epsilon, i.e. strengthen privacy.
    """
    ensure_positive(lambda2, "lambda2")
    ensure_positive(sensitivity, "sensitivity", strict=False)
    ensure_in_range(delta, "delta", 0.0, 1.0, low_inclusive=False, high_inclusive=False)
    return lambda2 * sensitivity**2 / (2.0 * math.log(1.0 / (1.0 - delta)))


def lambda2_for_epsilon(
    epsilon: float, sensitivity: float, delta: float
) -> float:
    """Inverse of :func:`epsilon_of_mechanism`: the ``lambda2`` hitting
    a target ``(epsilon, delta)``.

    This is how the experiment harness places points on the epsilon axis
    of Figures 2/5/6.
    """
    ensure_positive(epsilon, "epsilon")
    ensure_positive(sensitivity, "sensitivity")
    ensure_in_range(delta, "delta", 0.0, 1.0, low_inclusive=False, high_inclusive=False)
    return 2.0 * epsilon * math.log(1.0 / (1.0 - delta)) / sensitivity**2


def guarantee_of_mechanism(
    lambda2: float, sensitivity: float, delta: float
) -> LDPGuarantee:
    """Bundle :func:`epsilon_of_mechanism` into an :class:`LDPGuarantee`."""
    return LDPGuarantee(
        epsilon=epsilon_of_mechanism(lambda2, sensitivity, delta), delta=delta
    )


def strict_gaussian_epsilon(
    noise_std: float, sensitivity: float, delta: float
) -> float:
    """Classical (conservative) Gaussian-mechanism epsilon.

    For ``sigma >= Delta * sqrt(2 ln(1.25/delta)) / eps`` (Dwork & Roth,
    Thm A.1) the mechanism is (eps, delta)-DP; inverting:
    ``eps = Delta * sqrt(2 ln(1.25/delta)) / sigma``.  Valid for
    ``eps <= 1``; returned value above 1 signals the bound is vacuous at
    this noise scale.
    """
    ensure_positive(noise_std, "noise_std")
    ensure_positive(sensitivity, "sensitivity", strict=False)
    ensure_in_range(delta, "delta", 0.0, 1.0, low_inclusive=False, high_inclusive=False)
    return sensitivity * math.sqrt(2.0 * math.log(1.25 / delta)) / noise_std


def laplace_epsilon(scale: float, sensitivity: float) -> float:
    """Pure-epsilon of a Laplace mechanism with the given scale.

    ``eps = Delta / b`` — the textbook bound, used by the Laplace
    ablation baseline.
    """
    ensure_positive(scale, "scale")
    ensure_positive(sensitivity, "sensitivity", strict=False)
    return sensitivity / scale


def marginal_laplace_epsilon(lambda2: float, sensitivity: float) -> float:
    """Pure-epsilon guarantee of the paper's mechanism via its marginal.

    Observation (this reproduction's, not the paper's): integrating the
    Gaussian ``N(0, v)`` over ``v ~ Exp(lambda2)`` yields exactly a
    Laplace distribution with scale ``b = 1 / sqrt(2 lambda2)`` (the
    classic Gaussian-scale-mixture identity).  An adversary who knows
    only ``lambda2`` therefore faces a Laplace mechanism per record, and
    the mechanism satisfies *pure* ``eps``-LDP with

        eps = Delta / b = Delta * sqrt(2 * lambda2),

    with no additive delta — often tighter than Theorem 4.8's
    (eps, delta) statement.  Caveat: this is a per-record guarantee
    (Def. 4.5 compares two single records); across a user's N claims the
    noise shares one variance draw, so vector-level composition differs
    from N independent Laplace releases.
    """
    ensure_positive(lambda2, "lambda2")
    ensure_positive(sensitivity, "sensitivity", strict=False)
    return sensitivity * math.sqrt(2.0 * lambda2)
