"""Client-side perturbation mechanisms.

The paper's mechanism (:class:`ExponentialVarianceGaussianMechanism`)
implements lines 3-4 of Algorithm 2: every user draws a private variance
``delta_s^2 ~ Exp(lambda2)`` and adds i.i.d. ``N(0, delta_s^2)`` noise to
each of their claims.  Two classical mechanisms are provided as ablation
baselines at matched noise magnitude:

* :class:`FixedGaussianMechanism` — everyone uses the same public
  variance (no private-variance layer);
* :class:`LaplaceMechanism` — everyone adds Laplace noise (the textbook
  pure-epsilon LDP mechanism for continuous values).

All mechanisms are deterministic functions of their ``random_state`` and
perturb each user from an independently spawned stream, mirroring the
non-coordinated client-side execution in a real crowd sensing deployment.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
import numpy as np

from repro.privacy.ldp import (
    LDPGuarantee,
    epsilon_of_mechanism,
    laplace_epsilon,
    strict_gaussian_epsilon,
)
from repro.privacy.noise import expected_absolute_noise
from repro.truthdiscovery.claims import ClaimMatrix
from repro.utils.rng import RandomState, spawn_generators
from repro.utils.validation import ensure_positive


@dataclass(frozen=True)
class PerturbationResult:
    """Everything produced by one perturbation pass.

    Attributes
    ----------
    perturbed:
        The claim matrix actually submitted to the server.
    noise:
        ``(S, N)`` noise matrix (zero at unobserved entries).  In a real
        deployment this never leaves the device; it is exposed here for
        experiment analysis only.
    noise_variances:
        ``(S,)`` per-user sampled variances ``delta_s^2`` (private too).
    mechanism:
        Name of the producing mechanism.
    """

    perturbed: ClaimMatrix
    noise: np.ndarray = field(repr=False)
    noise_variances: np.ndarray = field(repr=False)
    mechanism: str

    @property
    def average_absolute_noise(self) -> float:
        """Mean |noise| over observed entries — the y-axis of Fig 2b etc."""
        mask = self.perturbed.mask
        if not mask.any():
            return 0.0
        return float(np.abs(self.noise[mask]).mean())

    @property
    def max_absolute_noise(self) -> float:
        mask = self.perturbed.mask
        if not mask.any():
            return 0.0
        return float(np.abs(self.noise[mask]).max())


class PerturbationMechanism(ABC):
    """Interface for client-side perturbation."""

    #: mechanism name used in reports
    name: str = "abstract"

    @abstractmethod
    def perturb(
        self, claims: ClaimMatrix, random_state: RandomState = None
    ) -> PerturbationResult:
        """Perturb all users' claims; pure function of ``random_state``."""

    @abstractmethod
    def expected_noise_magnitude(self) -> float:
        """Closed-form ``E|xi|`` per claim for this configuration."""

    @abstractmethod
    def guarantee(self, sensitivity: float, delta: float) -> LDPGuarantee:
        """The (epsilon, delta)-LDP guarantee for the given sensitivity."""


class ExponentialVarianceGaussianMechanism(PerturbationMechanism):
    """The paper's mechanism (Algorithm 2 client side).

    Parameters
    ----------
    lambda2:
        Server-released hyper-parameter of the exponential distribution
        from which each user draws their private noise variance.  Mean
        noise variance is ``1/lambda2``; mean absolute noise per claim is
        ``1/sqrt(2*lambda2)``.
    """

    name = "exp-gaussian"

    def __init__(self, lambda2: float) -> None:
        self.lambda2 = ensure_positive(lambda2, "lambda2")

    def perturb(
        self, claims: ClaimMatrix, random_state: RandomState = None
    ) -> PerturbationResult:
        # One independent stream per user: user devices never share
        # randomness (Section 3.2, "no communication among users").
        streams = spawn_generators(random_state, claims.num_users)
        variances = np.empty(claims.num_users)
        noise = np.zeros(claims.shape)
        for s, rng in enumerate(streams):
            variances[s] = rng.exponential(scale=1.0 / self.lambda2)
            row_noise = rng.standard_normal(claims.num_objects) * math.sqrt(
                variances[s]
            )
            noise[s] = np.where(claims.mask[s], row_noise, 0.0)
        return PerturbationResult(
            perturbed=claims.add(noise),
            noise=noise,
            noise_variances=variances,
            mechanism=self.name,
        )

    def expected_noise_magnitude(self) -> float:
        return expected_absolute_noise(self.lambda2)

    def guarantee(self, sensitivity: float, delta: float) -> LDPGuarantee:
        return LDPGuarantee(
            epsilon=epsilon_of_mechanism(self.lambda2, sensitivity, delta),
            delta=delta,
        )

    @classmethod
    def for_epsilon(
        cls, epsilon: float, sensitivity: float, delta: float
    ) -> "ExponentialVarianceGaussianMechanism":
        """Construct the mechanism achieving a target (epsilon, delta)."""
        from repro.privacy.ldp import lambda2_for_epsilon

        return cls(lambda2_for_epsilon(epsilon, sensitivity, delta))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExponentialVarianceGaussianMechanism(lambda2={self.lambda2:g})"


class FixedGaussianMechanism(PerturbationMechanism):
    """Ablation baseline: public fixed-variance Gaussian noise.

    Removes the private-variance layer of the paper's mechanism — the
    server (and any adversary) knows each user's exact noise
    distribution.  Matched to the paper's mechanism at equal expected
    absolute noise via :meth:`matching_expected_noise`.
    """

    name = "fixed-gaussian"

    def __init__(self, variance: float) -> None:
        self.variance = ensure_positive(variance, "variance")

    def perturb(
        self, claims: ClaimMatrix, random_state: RandomState = None
    ) -> PerturbationResult:
        streams = spawn_generators(random_state, claims.num_users)
        noise = np.zeros(claims.shape)
        std = math.sqrt(self.variance)
        for s, rng in enumerate(streams):
            row_noise = rng.standard_normal(claims.num_objects) * std
            noise[s] = np.where(claims.mask[s], row_noise, 0.0)
        variances = np.full(claims.num_users, self.variance)
        return PerturbationResult(
            perturbed=claims.add(noise),
            noise=noise,
            noise_variances=variances,
            mechanism=self.name,
        )

    def expected_noise_magnitude(self) -> float:
        return math.sqrt(2.0 * self.variance / math.pi)

    def guarantee(self, sensitivity: float, delta: float) -> LDPGuarantee:
        eps = strict_gaussian_epsilon(
            math.sqrt(self.variance), sensitivity, delta
        )
        return LDPGuarantee(epsilon=eps, delta=delta)

    @classmethod
    def matching_expected_noise(cls, magnitude: float) -> "FixedGaussianMechanism":
        """Variance whose Gaussian has ``E|xi| = magnitude``."""
        ensure_positive(magnitude, "magnitude")
        return cls(variance=math.pi * magnitude**2 / 2.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FixedGaussianMechanism(variance={self.variance:g})"


class LaplaceMechanism(PerturbationMechanism):
    """Ablation baseline: Laplace noise with public scale ``b``.

    The textbook epsilon-LDP mechanism for bounded continuous values:
    ``eps = sensitivity / b`` with ``delta = 0``.
    """

    name = "laplace"

    def __init__(self, scale: float) -> None:
        self.scale = ensure_positive(scale, "scale")

    def perturb(
        self, claims: ClaimMatrix, random_state: RandomState = None
    ) -> PerturbationResult:
        streams = spawn_generators(random_state, claims.num_users)
        noise = np.zeros(claims.shape)
        for s, rng in enumerate(streams):
            row_noise = rng.laplace(loc=0.0, scale=self.scale, size=claims.num_objects)
            noise[s] = np.where(claims.mask[s], row_noise, 0.0)
        variances = np.full(claims.num_users, 2.0 * self.scale**2)
        return PerturbationResult(
            perturbed=claims.add(noise),
            noise=noise,
            noise_variances=variances,
            mechanism=self.name,
        )

    def expected_noise_magnitude(self) -> float:
        # E|Laplace(0, b)| = b.
        return self.scale

    def guarantee(self, sensitivity: float, delta: float = 0.0) -> LDPGuarantee:
        return LDPGuarantee(
            epsilon=laplace_epsilon(self.scale, sensitivity), delta=0.0
        )

    @classmethod
    def matching_expected_noise(cls, magnitude: float) -> "LaplaceMechanism":
        """Scale whose Laplace has ``E|xi| = magnitude`` (that is ``b``)."""
        ensure_positive(magnitude, "magnitude")
        return cls(scale=magnitude)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LaplaceMechanism(scale={self.scale:g})"


class NullMechanism(PerturbationMechanism):
    """Identity mechanism (no noise) — the 'original data' arm of every
    experiment, so both arms flow through identical code paths."""

    name = "null"

    def perturb(
        self, claims: ClaimMatrix, random_state: RandomState = None
    ) -> PerturbationResult:
        noise = np.zeros(claims.shape)
        return PerturbationResult(
            perturbed=claims.with_values(claims.values.copy()),
            noise=noise,
            noise_variances=np.zeros(claims.num_users),
            mechanism=self.name,
        )

    def expected_noise_magnitude(self) -> float:
        return 0.0

    def guarantee(self, sensitivity: float, delta: float) -> LDPGuarantee:
        return LDPGuarantee(epsilon=math.inf, delta=0.0)


def create_mechanism(name: str, **kwargs) -> PerturbationMechanism:
    """Factory used by the experiment configuration layer."""
    mechanisms = {
        "exp-gaussian": ExponentialVarianceGaussianMechanism,
        "fixed-gaussian": FixedGaussianMechanism,
        "laplace": LaplaceMechanism,
        "null": NullMechanism,
    }
    try:
        cls = mechanisms[name]
    except KeyError:
        raise KeyError(
            f"unknown mechanism {name!r}; available: {sorted(mechanisms)}"
        ) from None
    return cls(**kwargs)
