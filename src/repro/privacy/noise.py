"""Noise-sampling primitives used by the perturbation mechanisms.

Separated from the mechanisms so theory cross-checks and tests can sample
from exactly the same distributions the mechanisms use.

Distributional facts used across the library (derived, and property-tested
in ``tests/privacy/test_noise.py``):

* variance draw ``v ~ Exp(lambda2)`` has density ``lambda2 * exp(-lambda2 v)``,
  mean ``1/lambda2`` (paper, Assumption 4.1);
* given ``v``, noise ``xi ~ N(0, v)`` has ``E|xi| = sqrt(2 v / pi)``;
* marginally over ``v``, ``E|xi| = sqrt(2/pi) * E[sqrt(v)]
  = sqrt(2/pi) * sqrt(pi)/(2 sqrt(lambda2)) = 1 / sqrt(2 lambda2)``.

The last identity is what the experiment harness uses to translate the
"Average of Added Noise" axis of Figures 2b/3b/4b/5b/6b into ``lambda2``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import ensure_int, ensure_positive


def sample_exponential_variances(
    lambda2: float, count: int, random_state: RandomState = None
) -> np.ndarray:
    """Draw ``count`` noise variances ``delta_s^2 ~ Exp(lambda2)``.

    This is line 3 of Algorithm 2: each user samples their own private
    variance from the exponential distribution with the server-released
    hyper-parameter ``lambda2``.
    """
    ensure_positive(lambda2, "lambda2")
    ensure_int(count, "count", minimum=0)
    rng = as_generator(random_state)
    # numpy parameterises exponential by the scale (mean) = 1/lambda2.
    return rng.exponential(scale=1.0 / lambda2, size=count)


def sample_gaussian_noise(
    variances: np.ndarray,
    num_objects: int,
    random_state: RandomState = None,
) -> np.ndarray:
    """Draw the ``(S, N)`` noise matrix ``xi^s_n ~ N(0, delta_s^2)``.

    Row ``s`` uses the s-th entry of ``variances`` (Eq. 4).
    """
    variances = np.asarray(variances, dtype=float)
    if variances.ndim != 1:
        raise ValueError("variances must be 1-D (one entry per user)")
    if np.any(variances < 0):
        raise ValueError("variances must be non-negative")
    ensure_int(num_objects, "num_objects", minimum=0)
    rng = as_generator(random_state)
    std = np.sqrt(variances)[:, None]
    return rng.standard_normal((variances.size, num_objects)) * std


def expected_absolute_noise(lambda2: float) -> float:
    """Closed-form ``E|xi|`` of the paper's mechanism: ``1/sqrt(2 lambda2)``."""
    ensure_positive(lambda2, "lambda2")
    return 1.0 / math.sqrt(2.0 * lambda2)


def lambda2_for_expected_noise(noise_magnitude: float) -> float:
    """Inverse of :func:`expected_absolute_noise`.

    Given a target average absolute noise ``m``, returns the ``lambda2``
    whose mechanism produces it: ``lambda2 = 1 / (2 m^2)``.
    """
    ensure_positive(noise_magnitude, "noise_magnitude")
    return 1.0 / (2.0 * noise_magnitude**2)


def gaussian_absolute_moment(std: float) -> float:
    """``E|Z|`` for ``Z ~ N(0, std^2)``: ``std * sqrt(2/pi)``."""
    ensure_positive(std, "std", strict=False)
    return std * math.sqrt(2.0 / math.pi)
