"""Adversarial auditing of the perturbation mechanism.

The paper argues (Section 3.2) that a key strength of the mechanism is
that "the noise distribution is unknown to any other parties including
the server": the server knows only the hyper-parameter ``lambda2``, not
any user's realised variance.  This module makes that claim empirically
testable by implementing the strongest reasonable attackers on both
sides of the boundary:

* :class:`ThresholdAttacker` — knows nothing about the noise; guesses
  from the observed value alone (baseline).
* :class:`LikelihoodRatioAttacker` — the Neyman-Pearson-optimal test
  given the *marginal* output distribution the adversary can actually
  compute.  Two knowledge levels:

  - ``known_variance``: the adversary magically knows the user's
    realised variance (the counterfactual the paper's design removes);
  - ``marginal``: the adversary knows only lambda2 and must integrate
    over Exp(lambda2) — the real threat model.

``audit_mechanism`` runs the distinguishing game
(x1 vs x2, separated by the sensitivity) many times and reports each
attacker's advantage, quantifying how much protection the private
variance layer adds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import integrate

from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import ensure_int, ensure_positive


@dataclass(frozen=True)
class AttackReport:
    """Outcome of a distinguishing game for one attacker."""

    attacker: str
    accuracy: float
    advantage: float  # accuracy - 0.5, in [0, 0.5]
    num_trials: int

    def __post_init__(self) -> None:
        if not (0.0 <= self.accuracy <= 1.0):
            raise ValueError("accuracy must be in [0, 1]")


class ThresholdAttacker:
    """Guess x1 when the output is closer to x1 than to x2."""

    name = "threshold"

    def __init__(self, x1: float, x2: float) -> None:
        if x1 == x2:
            raise ValueError("x1 and x2 must differ")
        self._midpoint = (x1 + x2) / 2.0
        self._x1_low = x1 < x2

    def guess_is_x1(self, observed: float) -> bool:
        below = observed < self._midpoint
        return below if self._x1_low else not below


class LikelihoodRatioAttacker:
    """Optimal test given a density model of the mechanism's output.

    ``density(observed, centre)`` must return the adversary's model of
    the output density given the true value ``centre``.
    """

    name = "likelihood-ratio"

    def __init__(
        self,
        x1: float,
        x2: float,
        density: Callable[[float, float], float],
    ) -> None:
        if x1 == x2:
            raise ValueError("x1 and x2 must differ")
        self._x1, self._x2 = x1, x2
        self._density = density

    def guess_is_x1(self, observed: float) -> bool:
        return self._density(observed, self._x1) >= self._density(
            observed, self._x2
        )


def gaussian_density_known_variance(variance: float):
    """Adversary model: exact Gaussian with the user's realised variance."""
    ensure_positive(variance, "variance")

    def density(observed: float, centre: float) -> float:
        return math.exp(-((observed - centre) ** 2) / (2.0 * variance)) / math.sqrt(
            2.0 * math.pi * variance
        )

    return density


def marginal_density(lambda2: float):
    """Adversary model: Gaussian noise with Exp(lambda2) variance mixed out.

    The marginal output density for true value ``centre`` is

        f(x) = integral_0^inf N(x; centre, v) lambda2 e^{-lambda2 v} dv
             = sqrt(lambda2 / 2) * exp(-sqrt(2 lambda2) |x - centre|),

    a Laplace density with scale ``1/sqrt(2 lambda2)`` — the well-known
    Gaussian-scale-mixture identity (exponential mixing of the variance
    yields a Laplace marginal).  Implemented in closed form, verified
    against numeric integration in the tests.
    """
    ensure_positive(lambda2, "lambda2")
    b = 1.0 / math.sqrt(2.0 * lambda2)

    def density(observed: float, centre: float) -> float:
        return math.exp(-abs(observed - centre) / b) / (2.0 * b)

    return density


def marginal_density_numeric(lambda2: float):
    """Quadrature version of :func:`marginal_density` (for verification)."""
    ensure_positive(lambda2, "lambda2")

    def density(observed: float, centre: float) -> float:
        def integrand(v: float) -> float:
            return (
                math.exp(-((observed - centre) ** 2) / (2.0 * v))
                / math.sqrt(2.0 * math.pi * v)
                * lambda2
                * math.exp(-lambda2 * v)
            )

        value, _err = integrate.quad(integrand, 0.0, np.inf, limit=200)
        return value

    return density


def audit_mechanism(
    lambda2: float,
    x1: float,
    x2: float,
    *,
    num_trials: int = 4000,
    random_state: RandomState = None,
) -> dict[str, AttackReport]:
    """Run the distinguishing game against all three attacker models.

    Each trial: flip a fair coin for the true value, sample a fresh
    private variance ``v ~ Exp(lambda2)`` and noise ``N(0, v)``, then let
    each attacker guess.  The ``known-variance`` attacker is handed the
    realised ``v`` (the counterfactual adversary the private-variance
    design defeats); the others see only the output.
    """
    ensure_positive(lambda2, "lambda2")
    ensure_int(num_trials, "num_trials", minimum=100)
    if x1 == x2:
        raise ValueError("x1 and x2 must differ")
    rng = as_generator(random_state)

    threshold = ThresholdAttacker(x1, x2)
    marginal = LikelihoodRatioAttacker(x1, x2, marginal_density(lambda2))

    correct = {"threshold": 0, "marginal-lr": 0, "known-variance-lr": 0}
    for _ in range(num_trials):
        truth_is_x1 = bool(rng.random() < 0.5)
        centre = x1 if truth_is_x1 else x2
        variance = float(rng.exponential(1.0 / lambda2))
        observed = centre + float(rng.normal(0.0, math.sqrt(variance)))

        if threshold.guess_is_x1(observed) == truth_is_x1:
            correct["threshold"] += 1
        if marginal.guess_is_x1(observed) == truth_is_x1:
            correct["marginal-lr"] += 1
        oracle = LikelihoodRatioAttacker(
            x1, x2, gaussian_density_known_variance(variance)
        )
        if oracle.guess_is_x1(observed) == truth_is_x1:
            correct["known-variance-lr"] += 1

    reports = {}
    for name, hits in correct.items():
        accuracy = hits / num_trials
        reports[name] = AttackReport(
            attacker=name,
            accuracy=accuracy,
            advantage=max(0.0, accuracy - 0.5),
            num_trials=num_trials,
        )
    return reports


def theoretical_marginal_advantage(lambda2: float, gap: float) -> float:
    """Best possible advantage of the marginal (Laplace) attacker.

    For two Laplace(b) distributions ``gap`` apart, the total variation
    distance is ``1 - exp(-gap / (2b))`` and the optimal distinguishing
    advantage is ``TV / 2``.
    """
    ensure_positive(lambda2, "lambda2")
    ensure_positive(gap, "gap", strict=False)
    b = 1.0 / math.sqrt(2.0 * lambda2)
    tv = 1.0 - math.exp(-gap / (2.0 * b))
    return tv / 2.0
