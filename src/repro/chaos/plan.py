"""Deterministic, seed-driven fault schedules.

A :class:`FaultPlan` answers one question at every named fault point —
"does the fault fire *this* time?" — and the answer is a pure function
of ``(seed, point, how many times that point has fired before)``.  Each
point draws from its own child stream derived via
:func:`repro.utils.rng.derive_seed`, so the schedule at one point never
shifts when another point is queried more or less often (adding a WAL
fault cannot move a network fault), and an interleaved multi-threaded
trace still gives every point an identical per-point schedule.

That per-point independence is what makes chaos drills replayable: the
``repro chaos-drill`` harness records only the seed, and anyone can
re-run the exact same injection schedule locally (see
``docs/operations.md``).  The property test in
``tests/properties/test_chaos_properties.py`` pins the contract.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from repro.utils.rng import as_generator, derive_seed
from repro.utils.validation import ensure_in_range

#: Named fault points threaded through the stack.  The mapping is
#: point -> action tag (what the hook site does when the point fires).
FAULT_POINTS = {
    # repro.durable.wal — storage faults.
    "wal.write": "io-error",  # frame write raises OSError
    "wal.fsync": "io-error",  # group fsync raises OSError
    "wal.torn_tail": "torn-tail",  # partial frame + crash mid-append
    # repro.net.transport — network faults.
    "net.connect": "refused",  # dial attempt refused
    "net.send": "reset",  # connection reset mid-send
    "net.delay": "delay",  # send stalls (slow network / partition tail)
    # repro.net.supervisor / replication + fabric pools — process faults.
    "proc.kill": "sigkill",  # SIGKILL a pooled process
    "proc.stall": "stall",  # slow-host stall before an RPC
    "proc.spawn": "spawn-refused",  # replacement host launch refused
}

#: Points whose injected fault carries a duration (seconds).
_DELAY_POINTS = frozenset({"net.delay", "proc.stall"})

#: Conservative default rates: rare enough that a drill makes steady
#: progress, frequent enough that every fault class fires within a
#: smoke-sized schedule.
DEFAULT_RATES = {
    "wal.write": 0.0,
    "wal.fsync": 0.0,
    "wal.torn_tail": 0.0,
    "net.connect": 0.02,
    "net.send": 0.01,
    "net.delay": 0.02,
    "proc.kill": 0.0,
    "proc.stall": 0.02,
    "proc.spawn": 0.0,
}


@dataclass(frozen=True)
class InjectedFault:
    """One fault the plan decided to fire.

    Attributes
    ----------
    point:
        The fault point name (a :data:`FAULT_POINTS` key).
    index:
        Zero-based query index at that point when it fired.
    action:
        The action tag the hook site executes (``"io-error"``,
        ``"reset"``, ``"delay"``, ...).
    seconds:
        Duration for delay-class faults, else 0.0.
    """

    point: str
    index: int
    action: str
    seconds: float = 0.0


class FaultPlan:
    """A reproducible fault schedule over the named fault points.

    Parameters
    ----------
    seed:
        The schedule is a pure function of this integer.
    rates:
        Per-point firing probability overrides (absent points keep
        :data:`DEFAULT_RATES`; unknown names are rejected).
    delay_range:
        ``(lo, hi)`` seconds drawn for delay-class faults.
    max_per_point:
        Hard cap on fires per point (None = unbounded) — keeps a drill
        from starving itself on an aggressive rate.
    """

    def __init__(
        self,
        seed: int,
        *,
        rates: Optional[dict] = None,
        delay_range: tuple = (0.01, 0.25),
        max_per_point: Optional[int] = 32,
    ) -> None:
        unknown = set(rates or ()) - set(FAULT_POINTS)
        if unknown:
            raise ValueError(
                f"unknown fault point(s) {sorted(unknown)}; known: "
                f"{sorted(FAULT_POINTS)}"
            )
        self.seed = int(seed)
        self.rates = dict(DEFAULT_RATES)
        if rates:
            self.rates.update(rates)
        for point, rate in self.rates.items():
            ensure_in_range(rate, f"rates[{point!r}]", 0.0, 1.0)
        lo, hi = delay_range
        if not 0.0 <= lo <= hi:
            raise ValueError(
                f"delay_range must satisfy 0 <= lo <= hi, got "
                f"{delay_range}"
            )
        self.delay_range = (float(lo), float(hi))
        self.max_per_point = max_per_point
        self._lock = threading.Lock()
        self._streams: dict = {}
        self._queries: dict[str, int] = {}
        self._fired: dict[str, int] = {}
        #: Every injected fault, in firing order (the drill report).
        self.injected: list[InjectedFault] = []

    # ------------------------------------------------------------------
    def fire(self, point: str) -> Optional[InjectedFault]:
        """One query at ``point``; the fault to inject, or None.

        Thread-safe: hook sites live on the WAL writer thread, link
        threads, and the pump thread simultaneously.  Determinism is
        per point — the nth query at a point always gets the same
        answer for a given seed, regardless of interleaving.
        """
        if point not in FAULT_POINTS:
            raise ValueError(f"unknown fault point {point!r}")
        with self._lock:
            rng = self._streams.get(point)
            if rng is None:
                rng = self._streams[point] = as_generator(
                    derive_seed(self.seed, "chaos", point)
                )
            index = self._queries.get(point, 0)
            self._queries[point] = index + 1
            rate = self.rates[point]
            fires = rate > 0.0 and float(rng.random()) < rate
            if fires and self.max_per_point is not None:
                fires = self._fired.get(point, 0) < self.max_per_point
            if not fires:
                return None
            seconds = 0.0
            if point in _DELAY_POINTS:
                seconds = float(rng.uniform(*self.delay_range))
            fault = InjectedFault(
                point, index, FAULT_POINTS[point], seconds
            )
            self._fired[point] = self._fired.get(point, 0) + 1
            self.injected.append(fault)
            return fault

    # ------------------------------------------------------------------
    def counts(self) -> dict[str, int]:
        """Injected fires per point (telemetry / drill report)."""
        with self._lock:
            return dict(self._fired)

    def queries(self) -> dict[str, int]:
        """Queries per point (how often each hook site was reached)."""
        with self._lock:
            return dict(self._queries)

    def describe(self) -> dict:
        """JSON-friendly plan summary for drill reports."""
        with self._lock:
            return {
                "seed": self.seed,
                "rates": {
                    point: rate
                    for point, rate in sorted(self.rates.items())
                    if rate > 0.0
                },
                "delay_range": list(self.delay_range),
                "max_per_point": self.max_per_point,
                "injected": [
                    {
                        "point": fault.point,
                        "index": fault.index,
                        "action": fault.action,
                        "seconds": fault.seconds,
                    }
                    for fault in self.injected
                ],
            }
