"""The chaos drill: seeded faults, a murdered primary, a self-healing check.

``repro chaos-drill`` runs N fully-seeded failure scenarios against a
*live* replicated topology and asserts the system healed itself:

1. spawn a **primary driver** child (this module re-exec'd with
   ``--run-primary``) that installs ``FaultPlan(seed)``, builds
   ``Topology.replicated(standbys=2, auto_failover=True)`` — real
   ``repro standby`` processes, a real detached ``repro watchdog`` —
   plus a tight background-compaction policy, and streams claims
   under injected connection resets, delays, and dial refusals;
2. wait until the watchdog prints ``ARMED`` and a standby holds a
   replicated prefix, optionally SIGKILL one standby (seed-derived),
   then **SIGKILL the primary** — every drill includes this fault;
3. read the watchdog's ``PROMOTED <json>`` line off the still-open
   stdout pipe (the watchdog inherited it and outlives the primary —
   no operator, no ``promote()`` call from the harness);
4. verify the two invariants that make failover trustworthy:
   **bitwise truths** — the promoted standby's truths are bit-for-bit
   equal to an independent replay of the dead primary's WAL at the
   replicated watermark — and **spent budget stays spent** — every
   privacy-budget charge the dead primary admitted survives in the
   promoted ledger;
5. read through a :class:`~repro.replication.client.FailoverReadClient`
   so the re-pointing path is exercised on every drill.

That is the ``promotion`` scenario.  Two more ride the same harness
(``--scenarios``, all three by default):

- ``host-loss`` — in-process: a ``proc.spawn`` fault at rate 1.0
  refuses every respawn, one shard host is SIGKILLed mid-stream, and
  the supervisor must declare the host lost and re-home its shards
  onto a survivor from the journal — bitwise-equal to an uncrashed
  reference run, budget intact, and the WAL replay agreeing;
- ``partition`` — the child launches a **3-watchdog fleet** with one
  member's dials chaos-refused; after the primary SIGKILL the two
  healthy members race, and quorum votes plus the fencing epoch must
  yield *exactly one* ``PROMOTED`` line, with a stale-epoch PROMOTE
  refused by every surviving standby.

Determinism: the injected fault schedule is a pure function of the
drill seed (see :mod:`repro.chaos.plan`), so a failing seed replays
with ``repro chaos-drill --seeds <seed>``.  Wall-clock timings
(detection/promotion/rehome) are environment-dependent and are gated,
not replayed.
"""

from __future__ import annotations

import argparse
import json
import os
import queue
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Optional, Sequence

CHUNK = 256
NUM_USERS = 60
NUM_OBJECTS = 24
CAMPAIGN = "chaos-drill"

#: Scenario classes ``run_chaos_drill`` knows how to stage.
SCENARIOS = ("promotion", "host-loss", "partition")

#: Seeds the CI smoke job pins (failures reproduce from the seed alone).
SMOKE_SEEDS = (101, 202, 303, 404, 505)

#: Pinned seeds of the cheaper degraded-mode scenarios (each host-loss
#: drill is in-process; each partition drill runs a 3-watchdog fleet).
HOST_LOSS_SMOKE_SEEDS = (11, 22)
PARTITION_SMOKE_SEEDS = (7,)

#: A standby must hold at least this LSN before the primary is killed,
#: so the promoted state is never trivially empty.
MIN_REPLICATED_LSN = 40


# ----------------------------------------------------------------------
# Child: the primary that is going to die, faults installed.
def run_primary(args) -> int:
    from repro.chaos import FaultPlan, injected_counts, install
    from repro.durable import (
        CompactionPolicy,
        DurabilityConfig,
    )
    from repro.privacy.ldp import LDPGuarantee
    from repro.service.ingest import IngestService, ServiceConfig
    from repro.service.ledger import BudgetLedger
    from repro.service.loadgen import LoadGenerator
    from repro.service.topology import Topology

    # Deterministic injection, in this process only: the standbys and
    # the watchdog are separate processes and stay fault-free — chaos
    # tests the primary's side of every stream, not the detector.
    install(FaultPlan(args.seed))
    durability = DurabilityConfig(
        directory=args.dir,
        fsync="batch",
        checkpoint_every_claims=4 * CHUNK,
        compaction=CompactionPolicy(
            max_wal_bytes=512 * 1024,
            min_interval_seconds=1.0,
            check_interval_seconds=0.2,
        ),
    )
    # A single watchdog rides the service's own auto_failover plumbing;
    # a quorum fleet is launched by hand so one member (and only that
    # member) can be chaos-partitioned from everything it dials.
    fleet = args.watchdogs > 1
    service = IngestService(
        ServiceConfig(num_shards=2, max_batch=CHUNK),
        ledger=BudgetLedger(epsilon_cap=1e6),
        topology=Topology.replicated(
            standbys=args.standbys,
            durability=durability,
            auto_failover=not fleet,
            heartbeat_interval=0.2,
            heartbeat_misses=3,
        ),
    )
    for handle in service.standbys.handles:
        print(
            f"STANDBY {handle.index} {handle.address[1]} "
            f"{handle.process.pid}",
            flush=True,
        )
    if fleet:
        from repro.replication.watchdog import (
            PrimaryStatusServer,
            allocate_peer_ports,
            launch_watchdog,
        )

        status_server = PrimaryStatusServer(service.durability)
        status_server.start()
        peer_ports = allocate_peer_ports(args.watchdogs)
        standby_addresses = [
            h.address for h in service.standbys.handles
        ]
        for i in range(args.watchdogs):
            chaos = {}
            if i == args.partition_watchdog:
                # This member's every outbound dial is refused (until
                # the plan's per-point cap heals the partition): it can
                # never probe the primary, reach a standby, or collect
                # a vote — the minority side of the partition.
                chaos = {
                    "chaos_seed": args.seed,
                    "chaos_rates": {"net.connect": 1.0},
                }
            proc = launch_watchdog(
                status_server.address,
                standby_addresses,
                interval=0.2,
                misses=3,
                index=i,
                peer_port=peer_ports[i],
                peers=[
                    ("127.0.0.1", port)
                    for j, port in enumerate(peer_ports)
                    if j != i
                ],
                **chaos,
            )
            print(f"WATCHDOG {proc.pid}", flush=True)
    else:
        print(f"WATCHDOG {service.watchdog_process.pid}", flush=True)

    gen = LoadGenerator(
        CAMPAIGN,
        num_users=NUM_USERS,
        num_objects=NUM_OBJECTS,
        random_state=args.seed,
    )
    service.register_campaign(
        gen.campaign_id,
        gen.object_ids,
        max_users=NUM_USERS,
        user_ids=gen.user_ids,
        cost=LDPGuarantee(epsilon=1e-4, delta=0.0),
    )
    # Stream slowly enough that the parent reliably kills us
    # mid-stream; the sleeps also give injected delays and resets a
    # live reconnect path to chew on.
    for i, chunk in enumerate(
        gen.column_chunks(args.claims, chunk_size=CHUNK)
    ):
        service.submit_columns(
            chunk.campaign_id,
            chunk.user_slots,
            chunk.object_slots,
            chunk.values,
        )
        service.pump()
        if i == 4:
            print("STREAMING", flush=True)
        if i % 10 == 0:
            print(
                "FAULTS " + json.dumps(injected_counts(), sort_keys=True),
                flush=True,
            )
        time.sleep(0.03)
    # Only reached if the parent never killed us; stay alive so the
    # kill can still land (a drill that outruns its harness is a
    # harness bug, not a heal).
    print("STREAM-EXHAUSTED", flush=True)
    time.sleep(120.0)
    service.close()
    return 0


# ----------------------------------------------------------------------
# Parent: orchestrate, kill, observe the self-heal, verify.
def replay_primary_prefix(directory: Path, up_to_lsn: int):
    """Independently rebuild the dead primary's state at ``up_to_lsn``.

    Same record-application path the standby used
    (:class:`~repro.durable.recovery.RecordApplier`), driven straight
    off the dead primary's segments — an arbiter that shares no
    process with either side of the replication stream.
    """
    from repro.durable import records as rec
    from repro.durable.recovery import RecordApplier
    from repro.durable.wal import read_wal
    from repro.service.ingest import IngestService, ServiceConfig
    from repro.service.ledger import BudgetLedger

    service = None
    applier = None
    for record in read_wal(directory).records:
        if record.lsn > up_to_lsn:
            break
        if record.rtype == rec.CONFIG:
            if service is None:
                body = record.decode()
                caps = body.get("ledger")
                service = IngestService(
                    ServiceConfig(**body["service_config"]),
                    ledger=(
                        None
                        if caps is None
                        else BudgetLedger(
                            caps["epsilon_cap"],
                            delta_cap=caps["delta_cap"],
                        )
                    ),
                )
                applier = RecordApplier(service)
            continue
        applier.apply(record)
    if service is None:
        raise RuntimeError(f"no CONFIG record in {directory}")
    return service


def ledger_key(records):
    return sorted(
        (r["user_id"], r["epsilon"], r["delta"]) for r in records
    )


class _LineReader:
    """Read a child's stdout on a thread so waits can carry deadlines
    (after the primary dies, the next line comes from the watchdog —
    or never, which must be a timeout, not a hang)."""

    def __init__(self, stream) -> None:
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._thread = threading.Thread(
            target=self._pump, args=(stream,), daemon=True
        )
        self._thread.start()

    def _pump(self, stream) -> None:
        for line in stream:
            self._queue.put(line.strip())
        self._queue.put(None)  # EOF

    def next_line(self, timeout: float) -> Optional[str]:
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            raise TimeoutError(
                f"no output from drill child within {timeout}s"
            ) from None

    def wait_for(
        self, prefixes: Sequence[str], *, timeout: float, sink=None
    ) -> str:
        """Return the first line starting with any prefix; feed every
        line through ``sink`` on the way."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"child never printed any of {prefixes}"
                )
            line = self.next_line(remaining)
            if line is None:
                raise RuntimeError(
                    f"child stdout closed before any of {prefixes}"
                )
            if sink is not None:
                sink(line)
            if any(line.startswith(p) for p in prefixes):
                return line


def _kill_pid(pid: int) -> None:
    try:
        os.kill(pid, signal.SIGKILL)
    except OSError:
        pass


def run_one_drill(
    seed: int,
    *,
    claims: int,
    standbys: int = 2,
    watchdogs: int = 1,
    partition_watchdog: Optional[int] = None,
    python: Optional[str] = None,
    log=print,
) -> dict:
    """One seeded drill; returns the per-seed result dict.

    With ``watchdogs > 1`` the child runs a quorum fleet;
    ``partition_watchdog`` names the member launched behind a
    total-connect-refusal fault plan.  The drill then also asserts the
    degraded-quorum invariants: exactly one ``PROMOTED`` line ever
    appears, and a re-``promote()`` at the winning fencing epoch is
    refused by *every* surviving standby.
    """
    import numpy as np

    from repro.replication.client import (
        FailoverReadClient,
        ReplicaError,
        ReplicaReadClient,
    )
    from repro.utils.rng import derive_seed

    root = Path(tempfile.mkdtemp(prefix=f"repro-chaos-{seed}-"))
    primary_dir = root / "wal"
    argv = [
        python or sys.executable,
        "-m",
        "repro.chaos.drill",
        "--run-primary",
        "--seed",
        str(seed),
        "--dir",
        str(primary_dir),
        "--claims",
        str(claims),
        "--standbys",
        str(standbys),
        "--watchdogs",
        str(watchdogs),
    ]
    if partition_watchdog is not None:
        argv.extend(["--partition-watchdog", str(partition_watchdog)])
    child = subprocess.Popen(
        argv,
        env={**os.environ},
        stdout=subprocess.PIPE,
        text=True,
    )
    standby_ports: dict[int, int] = {}
    standby_pids: dict[int, int] = {}
    watchdog_pids: list[int] = []
    faults: dict = {}
    armed = 0
    promoted_lines = 0

    def sink(line: str) -> None:
        nonlocal armed, promoted_lines
        if line.startswith("STANDBY "):
            _, index, port, pid = line.split()
            standby_ports[int(index)] = int(port)
            standby_pids[int(index)] = int(pid)
        elif line.startswith("WATCHDOG "):
            watchdog_pids.append(int(line.split()[1]))
        elif line.startswith("FAULTS "):
            faults.update(json.loads(line.split(" ", 1)[1]))
        elif line.startswith("ARMED"):
            armed += 1
        elif line.startswith("PROMOTED "):
            promoted_lines += 1

    # The partitioned member cannot reach the primary, so it never
    # arms; every healthy member must before the kill.
    armed_needed = watchdogs - (0 if partition_watchdog is None else 1)
    result: dict = {
        "seed": seed,
        "scenario": "promotion" if watchdogs == 1 else "partition",
        "auto_promoted": False,
    }
    try:
        reader = _LineReader(child.stdout)
        reader.wait_for(["STREAMING"], timeout=180.0, sink=sink)
        arm_deadline = time.monotonic() + 60.0
        while armed < armed_needed:
            reader.wait_for(
                ["ARMED"],
                timeout=max(0.1, arm_deadline - time.monotonic()),
                sink=sink,
            )
        if len(standby_ports) != standbys:
            raise RuntimeError("child never announced its standbys")

        # A standby must hold a real replicated prefix before we pull
        # the plug, or "bitwise at the watermark" verifies nothing.
        deadline = time.monotonic() + 120.0
        while True:
            watermarks = {}
            for index, port in standby_ports.items():
                try:
                    with ReplicaReadClient(
                        ("127.0.0.1", port), timeout=5.0
                    ) as client:
                        watermarks[index] = client.status()["durable_lsn"]
                except (OSError, EOFError, ConnectionError):
                    continue
            if watermarks and max(watermarks.values()) >= MIN_REPLICATED_LSN:
                break
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"no standby reached lsn {MIN_REPLICATED_LSN}; "
                    f"saw {watermarks}"
                )
            time.sleep(0.05)

        # Seed-derived extra process fault: SIGKILL at most one standby
        # (never all — someone must be left to elect).  Distinct bits
        # of the draw decide *whether* and *whom*: reusing the parity
        # bit for both would pin the victim to standby 0 forever.
        # Partition drills skip it — one fault class per scenario.
        kill_draw = derive_seed(seed, "drill", "kill-standby")
        victim: Optional[int] = None
        if (
            watchdogs == 1
            and standbys > 1
            and (kill_draw >> 1) % 2 == 0
        ):
            victim = (kill_draw >> 2) % standbys
            log(f"  chaos: SIGKILL standby {victim} "
                f"(pid {standby_pids[victim]})")
            _kill_pid(standby_pids[victim])
        result["standby_killed"] = victim

        log(f"  SIGKILL primary pid {child.pid}")
        kill_time = time.monotonic()
        os.kill(child.pid, signal.SIGKILL)
        child.wait(timeout=30.0)

        # The watchdog inherited the stdout pipe; its PROMOTED line is
        # the proof the system healed itself — nobody on this side of
        # the pipe calls promote().
        line = reader.wait_for(["PROMOTED "], timeout=90.0, sink=sink)
        promoted = json.loads(line.split(" ", 1)[1])
        failover_wall = time.monotonic() - kill_time
        result.update(
            {
                "auto_promoted": True,
                "promoted_index": promoted["promoted_index"],
                "watermark_lsn": promoted["watermark_lsn"],
                "fencing_epoch": promoted.get("fencing_epoch"),
                "watchdog_index": promoted.get("watchdog_index"),
                "detection_seconds": promoted["detection_seconds"],
                "promotion_seconds": promoted["promotion_seconds"],
                "failover_wall_seconds": failover_wall,
                "faults_injected": dict(faults),
            }
        )
        log(
            f"  PROMOTED standby {promoted['promoted_index']} at lsn "
            f"{promoted['watermark_lsn']} (detect "
            f"{promoted['detection_seconds']:.2f}s, promote "
            f"{promoted['promotion_seconds']:.2f}s)"
        )
        if watchdogs > 1:
            # Grace window: every extra PROMOTED line the rest of the
            # fleet could ever print lands here (losers print OBSERVED
            # and exit; the partitioned member can only retry during
            # the window).  More than one promotion is split-brain.
            grace_until = time.monotonic() + 8.0
            while True:
                remaining = grace_until - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    extra = reader.next_line(remaining)
                except TimeoutError:
                    break
                if extra is None:
                    break
                sink(extra)
            result["promoted_lines"] = promoted_lines
            result["no_double_promotion"] = promoted_lines == 1
            log(
                f"  quorum: {promoted_lines} promotion(s) across a "
                f"fleet of {watchdogs} (one partitioned)"
            )

        # The spent-budget status must come from the new primary.
        promoted_port = standby_ports[promoted["promoted_index"]]
        with ReplicaReadClient(
            ("127.0.0.1", promoted_port), timeout=10.0
        ) as primary_client:
            deadline = time.monotonic() + 30.0
            status = primary_client.status()
            while not status.get("promoted"):
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        "promoted standby never reported promoted=True"
                    )
                time.sleep(0.1)
                status = primary_client.status()

        # The fence must hold fleet-wide: a stale PROMOTE at the
        # epoch that already won is refused by the promoted standby
        # *and* by every surviving non-promoted standby (the winner
        # broadcast the epoch) — two primaries are unreachable even
        # for a partitioned watchdog that wakes up late.
        stale_epoch = int(promoted.get("fencing_epoch") or 1)
        stale_refused = True
        for index, port in sorted(standby_ports.items()):
            if index == victim:
                continue
            try:
                with ReplicaReadClient(
                    ("127.0.0.1", port), timeout=5.0
                ) as fence_client:
                    fence_client.promote(epoch=stale_epoch)
                stale_refused = False
                log(f"  FENCE BREACH: standby {index} accepted stale "
                    f"epoch {stale_epoch}")
            except ReplicaError as exc:
                if "stale fencing epoch" not in str(exc):
                    stale_refused = False
                    log(f"  stale promote on standby {index} failed "
                        f"oddly: {exc}")
        result["stale_promote_refused"] = stale_refused

        # Read through the re-pointing client: when a standby was
        # killed, start there — the read path must walk off the corpse
        # to the new primary on its own.  (A non-promoted survivor
        # would serve truths at *its* watermark, so the walk must end
        # on the promoted standby either way.)
        addresses = []
        if victim is not None:
            addresses.append(("127.0.0.1", standby_ports[victim]))
        addresses.append(("127.0.0.1", promoted_port))
        with FailoverReadClient(addresses, timeout=3.0) as read_client:
            snapshot = read_client.snapshot(CAMPAIGN)
            result["read_repoints"] = read_client.repoints
        arbiter = replay_primary_prefix(
            primary_dir, promoted["watermark_lsn"]
        )
        crashed = arbiter.snapshot(CAMPAIGN)
        result["truths_match_bitwise"] = bool(
            snapshot.truths.tobytes() == crashed.truths.tobytes()
            and np.all(np.isfinite(snapshot.truths))
            and snapshot.weights_by_user == crashed.weights_by_user
            and snapshot.claims_ingested == crashed.claims_ingested
            and snapshot.claims_ingested > 0
        )
        spent = status["ledger"]["records"]
        result["budget_spent_matches"] = bool(
            len(spent) > 0
            and ledger_key(spent) == ledger_key(arbiter.ledger.to_records())
        )
        result["claims_preserved"] = int(snapshot.claims_ingested)
        log(
            f"  invariants: bitwise="
            f"{result['truths_match_bitwise']} "
            f"budget={result['budget_spent_matches']} "
            f"(repoints={result['read_repoints']})"
        )
        return result
    finally:
        if child.poll() is None:
            child.kill()
            child.wait()
        for index, port in standby_ports.items():
            try:
                with ReplicaReadClient(
                    ("127.0.0.1", port), timeout=2.0
                ) as client:
                    client.shutdown()
            except (OSError, EOFError, ConnectionError):
                pass
        time.sleep(0.2)
        for pid in standby_pids.values():
            _kill_pid(pid)
        for pid in watchdog_pids:
            _kill_pid(pid)
        if child.stdout is not None:
            child.stdout.close()
        shutil.rmtree(root, ignore_errors=True)


def _host_loss_campaigns(seed: int):
    """The three campaigns every host-loss run (crashed, reference,
    arbiter) streams — identical traffic is the whole comparison."""
    from repro.service.loadgen import LoadGenerator

    return [
        LoadGenerator(
            f"drill-c{i}",
            num_users=NUM_USERS,
            num_objects=NUM_OBJECTS,
            random_state=seed + i,
        )
        for i in range(3)
    ]


def _host_loss_service(num_shards: int, topology, directory=None):
    from repro.durable import DurabilityConfig
    from repro.privacy.ldp import LDPGuarantee
    from repro.service.ingest import IngestService, ServiceConfig
    from repro.service.ledger import BudgetLedger
    from repro.service.topology import Topology

    if topology == "fabric":
        topology = Topology.fabric(
            2,
            durability=DurabilityConfig(
                directory=directory, fsync="batch"
            ),
        )
    else:
        topology = Topology.in_process()
    service = IngestService(
        ServiceConfig(num_shards=num_shards, max_batch=CHUNK),
        ledger=BudgetLedger(epsilon_cap=1e6),
        topology=topology,
    )
    for gen in _host_loss_campaigns(0):
        service.register_campaign(
            gen.campaign_id,
            gen.object_ids,
            max_users=NUM_USERS,
            user_ids=gen.user_ids,
            cost=LDPGuarantee(epsilon=1e-4, delta=0.0),
        )
    return service


def _stream_host_loss(service, seed: int, claims: int, *, midstream=None):
    """Interleave the three campaigns' chunks; fire ``midstream`` once
    at the halfway point (that is where the host dies)."""
    per_campaign = max(CHUNK, claims // 3)
    chunk_lists = [
        list(gen.column_chunks(per_campaign, chunk_size=CHUNK))
        for gen in _host_loss_campaigns(seed)
    ]
    total = max(len(chunks) for chunks in chunk_lists)
    for i in range(total):
        if midstream is not None and i == total // 2:
            midstream()
        for chunks in chunk_lists:
            if i < len(chunks):
                chunk = chunks[i]
                service.submit_columns(
                    chunk.campaign_id,
                    chunk.user_slots,
                    chunk.object_slots,
                    chunk.values,
                )
        if i % 3 == 0:
            service.pump()
    service.flush()


def _snapshots_bitwise_equal(got, expected) -> bool:
    import numpy as np

    return bool(
        got.truths.tobytes() == expected.truths.tobytes()
        and np.all(np.isfinite(got.truths))
        and got.weights_by_user == expected.weights_by_user
        and got.claims_ingested == expected.claims_ingested
        and got.claims_ingested > 0
    )


def run_host_loss_drill(
    seed: int,
    *,
    claims: int,
    num_shards: int = 4,
    log=print,
) -> dict:
    """Kill a shard host *and* refuse every respawn; assert the rehome.

    The degraded-mode scenario behind ``Supervisor.rehome``: a two-host
    fabric streams three campaigns, the host owning campaign 0 is
    SIGKILLed at the halfway mark, and the ``proc.spawn`` fault point
    (rate 1.0) turns the loss permanent — the supervisor must exhaust
    its bounded respawn attempts and re-home the dead host's shards
    onto the survivor from its journal.  Invariants:

    * **rehome_truths_match_bitwise** — every campaign's truths equal
      an uncrashed single-process reference run, bit for bit;
    * **wal_replay_matches** — they also equal an independent replay of
      the service's own WAL (the arbiter shares no fabric state);
    * **rehome_budget_matches** — the privacy ledger matches the
      reference's, record for record.
    """
    from repro.chaos import (
        DEFAULT_RATES,
        FaultPlan,
        injected_counts,
        install,
        uninstall,
    )

    log(f"  reference run (uncrashed, in-process)")
    reference = _host_loss_service(num_shards, "in_process")
    try:
        _stream_host_loss(reference, seed, claims)
        expected = {
            gen.campaign_id: reference.snapshot(gen.campaign_id)
            for gen in _host_loss_campaigns(seed)
        }
        expected_ledger = ledger_key(reference.ledger.to_records())
    finally:
        reference.close()

    root = Path(tempfile.mkdtemp(prefix=f"repro-hostloss-{seed}-"))
    # The kill is the drill's own deterministic fault; the only seeded
    # injection is the spawn refusal that makes the loss permanent.
    rates = {point: 0.0 for point in DEFAULT_RATES}
    rates["proc.spawn"] = 1.0
    install(FaultPlan(seed, rates=rates))
    result: dict = {"seed": seed, "scenario": "host-loss"}
    service = None
    try:
        service = _host_loss_service(
            num_shards, "fabric", directory=root / "wal"
        )
        victim_shard = service.shard_of("drill-c0")
        victim = service.worker_pool.handle_for(victim_shard)
        result["victim_host"] = victim.worker_id

        def kill_host() -> None:
            log(f"  chaos: SIGKILL shard host {victim.worker_id} "
                f"(pid {victim.process.pid}); respawns refused")
            _kill_pid(victim.process.pid)
            waiter = getattr(victim.process, "wait", None)
            if waiter is None:
                waiter = victim.process.join
            waiter(10)

        _stream_host_loss(service, seed, claims, midstream=kill_host)
        stats = service.worker_pool.supervisor.stats()
        snapshots = {
            gen.campaign_id: service.snapshot(gen.campaign_id)
            for gen in _host_loss_campaigns(seed)
        }
        got_ledger = ledger_key(service.ledger.to_records())
        result.update(
            {
                "rehomes": stats["rehomes"],
                "hosts_lost": stats["hosts_lost"],
                "respawn_retries": stats["respawn_retries"],
                "placement_epoch": stats["placement_epoch"],
                "rehome_seconds": stats["last_rehome_seconds"],
                "faults_injected": injected_counts(),
            }
        )
        result["rehome_truths_match_bitwise"] = bool(
            stats["rehomes"] >= 1
            and all(
                _snapshots_bitwise_equal(snapshots[cid], expected[cid])
                for cid in expected
            )
        )
        result["rehome_budget_matches"] = bool(
            len(got_ledger) > 0 and got_ledger == expected_ledger
        )
        result["claims_preserved"] = int(
            sum(s.claims_ingested for s in snapshots.values())
        )
        service.close()
        service = None
        uninstall()
        arbiter = replay_primary_prefix(root / "wal", 10**12)
        result["wal_replay_matches"] = all(
            _snapshots_bitwise_equal(
                arbiter.snapshot(cid), snapshots[cid]
            )
            for cid in expected
        )
        log(
            f"  rehomed {stats['rehomes']} host(s) in "
            f"{stats['last_rehome_seconds']:.3f}s "
            f"(placement epoch {stats['placement_epoch']}, "
            f"bitwise={result['rehome_truths_match_bitwise']}, "
            f"wal={result['wal_replay_matches']}, "
            f"budget={result['rehome_budget_matches']})"
        )
        return result
    finally:
        if service is not None:
            service.close()
        uninstall()
        shutil.rmtree(root, ignore_errors=True)


def run_chaos_drill(
    *,
    seeds: Optional[Sequence[int]] = None,
    drills: int = 5,
    base_seed: int = 2020,
    claims: int = 6000,
    smoke: bool = False,
    scenarios: Optional[Sequence[str]] = None,
    log=print,
) -> dict:
    """Run every scenario and seed; returns the report the CI job gates.

    ``scenarios`` picks from :data:`SCENARIOS` (None runs all three).
    An explicit ``seeds`` list applies to every selected scenario —
    that is how a failing seed replays in isolation; otherwise each
    scenario gets its own pinned (``--smoke``) or ``base_seed``-derived
    list.  Invariant keys only appear for scenarios that ran, so a
    targeted re-run is gated on exactly what it exercised.
    """
    if scenarios is None:
        scenarios = SCENARIOS
    unknown = set(scenarios) - set(SCENARIOS)
    if unknown:
        raise ValueError(
            f"unknown scenario(s) {sorted(unknown)}; "
            f"known: {list(SCENARIOS)}"
        )
    if smoke:
        claims = min(claims, 4000)

    def scenario_seeds(pinned, derived):
        if seeds is not None:
            return list(seeds)
        return list(pinned) if smoke else derived

    promotion_results: list = []
    rehome_results: list = []
    partition_results: list = []
    if "promotion" in scenarios:
        for seed in scenario_seeds(
            SMOKE_SEEDS, [base_seed + 101 * i for i in range(drills)]
        ):
            log(f"== promotion drill seed {seed} ==")
            try:
                promotion_results.append(
                    run_one_drill(seed, claims=claims, log=log)
                )
            except (RuntimeError, TimeoutError, OSError) as exc:
                log(f"  drill seed {seed} FAILED: {exc}")
                promotion_results.append(
                    {
                        "seed": seed,
                        "scenario": "promotion",
                        "auto_promoted": False,
                        "error": str(exc),
                    }
                )
    if "host-loss" in scenarios:
        for seed in scenario_seeds(
            HOST_LOSS_SMOKE_SEEDS, [base_seed + 11 * i for i in range(2)]
        ):
            log(f"== host-loss drill seed {seed} ==")
            try:
                rehome_results.append(
                    run_host_loss_drill(seed, claims=claims, log=log)
                )
            except (RuntimeError, TimeoutError, OSError) as exc:
                log(f"  host-loss seed {seed} FAILED: {exc}")
                rehome_results.append(
                    {
                        "seed": seed,
                        "scenario": "host-loss",
                        "error": str(exc),
                    }
                )
    if "partition" in scenarios:
        for seed in scenario_seeds(
            PARTITION_SMOKE_SEEDS, [base_seed + 7]
        ):
            log(f"== partition drill seed {seed} (watchdogs=3) ==")
            try:
                partition_results.append(
                    run_one_drill(
                        seed,
                        claims=claims,
                        watchdogs=3,
                        partition_watchdog=2,
                        log=log,
                    )
                )
            except (RuntimeError, TimeoutError, OSError) as exc:
                log(f"  partition seed {seed} FAILED: {exc}")
                partition_results.append(
                    {
                        "seed": seed,
                        "scenario": "partition",
                        "auto_promoted": False,
                        "error": str(exc),
                    }
                )

    killed = promotion_results + partition_results
    results = killed + rehome_results
    healed = [r for r in killed if r.get("auto_promoted")]
    invariants: dict = {}
    if killed:
        invariants.update(
            {
                "auto_promoted": len(healed) == len(killed),
                "truths_match_bitwise": all(
                    r.get("truths_match_bitwise") for r in killed
                ),
                "budget_spent_matches": all(
                    r.get("budget_spent_matches") for r in killed
                ),
                "stale_promote_refused": all(
                    r.get("stale_promote_refused") for r in killed
                ),
            }
        )
    if partition_results:
        invariants["no_double_promotion"] = all(
            r.get("no_double_promotion") for r in partition_results
        )
    if rehome_results:
        invariants.update(
            {
                "rehome_truths_match_bitwise": all(
                    r.get("rehome_truths_match_bitwise")
                    for r in rehome_results
                ),
                "rehome_budget_matches": all(
                    r.get("rehome_budget_matches")
                    for r in rehome_results
                ),
                "wal_replay_matches": all(
                    r.get("wal_replay_matches") for r in rehome_results
                ),
            }
        )
    report = {
        "kind": "chaos",
        "scenarios": list(scenarios),
        "seeds": sorted({r["seed"] for r in results}),
        "claims_per_drill": claims,
        "drills": results,
        "watchdog": {
            "detection_seconds_max": max(
                (r["detection_seconds"] for r in healed), default=None
            ),
            "promotion_seconds_max": max(
                (r["promotion_seconds"] for r in healed), default=None
            ),
            "failover_wall_seconds_max": max(
                (r["failover_wall_seconds"] for r in healed),
                default=None,
            ),
        },
        "rehome": {
            "rehome_seconds_max": max(
                (
                    r["rehome_seconds"]
                    for r in rehome_results
                    if r.get("rehome_seconds") is not None
                ),
                default=None,
            ),
            "hosts_lost_total": sum(
                len(r.get("hosts_lost", ())) for r in rehome_results
            ),
            "rehomes_total": sum(
                r.get("rehomes", 0) for r in rehome_results
            ),
        },
        "invariants": invariants,
    }
    return report


def format_drill_summary(report: dict) -> str:
    lines = [
        f"chaos drill: scenarios {report.get('scenarios', ['promotion'])}"
        f" over {len(report['drills'])} run(s)"
    ]
    for drill in report["drills"]:
        scenario = drill.get("scenario", "promotion")
        if scenario == "host-loss":
            if "error" in drill:
                lines.append(
                    f"  [host-loss] seed {drill['seed']}: FAILED "
                    f"({drill['error']})"
                )
                continue
            lines.append(
                f"  [host-loss] seed {drill['seed']}: lost host(s) "
                f"{drill['hosts_lost']}, rehomed in "
                f"{drill['rehome_seconds']:.3f}s (bitwise="
                f"{drill['rehome_truths_match_bitwise']}, wal="
                f"{drill['wal_replay_matches']}, budget="
                f"{drill['rehome_budget_matches']})"
            )
            continue
        if not drill.get("auto_promoted"):
            lines.append(
                f"  [{scenario}] seed {drill['seed']}: FAILED to heal "
                f"({drill.get('error', 'no promotion observed')})"
            )
            continue
        extra = ""
        if scenario == "partition":
            extra = (
                f", promotions={drill.get('promoted_lines')}"
                f", fence={drill.get('fencing_epoch')}"
            )
        lines.append(
            f"  [{scenario}] seed {drill['seed']}: promoted standby "
            f"{drill['promoted_index']} at lsn {drill['watermark_lsn']} "
            f"(detect {drill['detection_seconds']:.2f}s, promote "
            f"{drill['promotion_seconds']:.2f}s, bitwise="
            f"{drill['truths_match_bitwise']}, budget="
            f"{drill['budget_spent_matches']}{extra})"
        )
    inv = report["invariants"]
    watchdog = report["watchdog"]
    if watchdog["detection_seconds_max"] is not None:
        lines.append(
            f"worst detection {watchdog['detection_seconds_max']:.2f}s, "
            f"worst promotion {watchdog['promotion_seconds_max']:.2f}s"
        )
    rehome = report.get("rehome") or {}
    if rehome.get("rehome_seconds_max") is not None:
        lines.append(
            f"worst rehome {rehome['rehome_seconds_max']:.3f}s over "
            f"{rehome['rehomes_total']} rehome(s)"
        )
    lines.append(
        "invariants: "
        + ", ".join(f"{k}={v}" for k, v in sorted(inv.items()))
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="seeded chaos drill against a replicated topology"
    )
    parser.add_argument("--seeds", type=int, nargs="+", default=None)
    parser.add_argument("--drills", type=int, default=5)
    parser.add_argument("--base-seed", type=int, default=2020)
    parser.add_argument("--claims", type=int, default=6000)
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument(
        "--scenarios", nargs="+", default=None, choices=SCENARIOS
    )
    parser.add_argument("--output", default=None)
    # Internal: the doomed-primary child re-exec.
    parser.add_argument(
        "--run-primary", action="store_true", help=argparse.SUPPRESS
    )
    parser.add_argument("--seed", type=int, default=0,
                        help=argparse.SUPPRESS)
    parser.add_argument("--dir", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--standbys", type=int, default=2,
                        help=argparse.SUPPRESS)
    parser.add_argument("--watchdogs", type=int, default=1,
                        help=argparse.SUPPRESS)
    parser.add_argument("--partition-watchdog", type=int, default=None,
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.run_primary:
        return run_primary(args)
    report = run_chaos_drill(
        seeds=args.seeds,
        drills=args.drills,
        base_seed=args.base_seed,
        claims=args.claims,
        smoke=args.smoke,
        scenarios=args.scenarios,
    )
    print(format_drill_summary(report))
    if args.output:
        os.makedirs(os.path.dirname(args.output) or ".", exist_ok=True)
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 0 if all(report["invariants"].values()) else 1


if __name__ == "__main__":
    sys.exit(main())
