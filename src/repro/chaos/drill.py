"""The chaos drill: seeded faults, a murdered primary, a self-healing check.

``repro chaos-drill`` runs N fully-seeded failure scenarios against a
*live* replicated topology and asserts the system healed itself:

1. spawn a **primary driver** child (this module re-exec'd with
   ``--run-primary``) that installs ``FaultPlan(seed)``, builds
   ``Topology.replicated(standbys=2, auto_failover=True)`` — real
   ``repro standby`` processes, a real detached ``repro watchdog`` —
   plus a tight background-compaction policy, and streams claims
   under injected connection resets, delays, and dial refusals;
2. wait until the watchdog prints ``ARMED`` and a standby holds a
   replicated prefix, optionally SIGKILL one standby (seed-derived),
   then **SIGKILL the primary** — every drill includes this fault;
3. read the watchdog's ``PROMOTED <json>`` line off the still-open
   stdout pipe (the watchdog inherited it and outlives the primary —
   no operator, no ``promote()`` call from the harness);
4. verify the two invariants that make failover trustworthy:
   **bitwise truths** — the promoted standby's truths are bit-for-bit
   equal to an independent replay of the dead primary's WAL at the
   replicated watermark — and **spent budget stays spent** — every
   privacy-budget charge the dead primary admitted survives in the
   promoted ledger;
5. read through a :class:`~repro.replication.client.FailoverReadClient`
   so the re-pointing path is exercised on every drill.

Determinism: the injected fault schedule is a pure function of the
drill seed (see :mod:`repro.chaos.plan`), so a failing seed replays
with ``repro chaos-drill --seeds <seed>``.  Wall-clock timings
(detection/promotion) are environment-dependent and are gated, not
replayed.
"""

from __future__ import annotations

import argparse
import json
import os
import queue
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Optional, Sequence

CHUNK = 256
NUM_USERS = 60
NUM_OBJECTS = 24
CAMPAIGN = "chaos-drill"

#: Seeds the CI smoke job pins (failures reproduce from the seed alone).
SMOKE_SEEDS = (101, 202, 303, 404, 505)

#: A standby must hold at least this LSN before the primary is killed,
#: so the promoted state is never trivially empty.
MIN_REPLICATED_LSN = 40


# ----------------------------------------------------------------------
# Child: the primary that is going to die, faults installed.
def run_primary(args) -> int:
    from repro.chaos import FaultPlan, injected_counts, install
    from repro.durable import (
        CompactionPolicy,
        DurabilityConfig,
    )
    from repro.privacy.ldp import LDPGuarantee
    from repro.service.ingest import IngestService, ServiceConfig
    from repro.service.ledger import BudgetLedger
    from repro.service.loadgen import LoadGenerator
    from repro.service.topology import Topology

    # Deterministic injection, in this process only: the standbys and
    # the watchdog are separate processes and stay fault-free — chaos
    # tests the primary's side of every stream, not the detector.
    install(FaultPlan(args.seed))
    durability = DurabilityConfig(
        directory=args.dir,
        fsync="batch",
        checkpoint_every_claims=4 * CHUNK,
        compaction=CompactionPolicy(
            max_wal_bytes=512 * 1024,
            min_interval_seconds=1.0,
            check_interval_seconds=0.2,
        ),
    )
    service = IngestService(
        ServiceConfig(num_shards=2, max_batch=CHUNK),
        ledger=BudgetLedger(epsilon_cap=1e6),
        topology=Topology.replicated(
            standbys=args.standbys,
            durability=durability,
            auto_failover=True,
            heartbeat_interval=0.2,
            heartbeat_misses=3,
        ),
    )
    for handle in service.standbys.handles:
        print(
            f"STANDBY {handle.index} {handle.address[1]} "
            f"{handle.process.pid}",
            flush=True,
        )
    print(f"WATCHDOG {service.watchdog_process.pid}", flush=True)

    gen = LoadGenerator(
        CAMPAIGN,
        num_users=NUM_USERS,
        num_objects=NUM_OBJECTS,
        random_state=args.seed,
    )
    service.register_campaign(
        gen.campaign_id,
        gen.object_ids,
        max_users=NUM_USERS,
        user_ids=gen.user_ids,
        cost=LDPGuarantee(epsilon=1e-4, delta=0.0),
    )
    # Stream slowly enough that the parent reliably kills us
    # mid-stream; the sleeps also give injected delays and resets a
    # live reconnect path to chew on.
    for i, chunk in enumerate(
        gen.column_chunks(args.claims, chunk_size=CHUNK)
    ):
        service.submit_columns(
            chunk.campaign_id,
            chunk.user_slots,
            chunk.object_slots,
            chunk.values,
        )
        service.pump()
        if i == 4:
            print("STREAMING", flush=True)
        if i % 10 == 0:
            print(
                "FAULTS " + json.dumps(injected_counts(), sort_keys=True),
                flush=True,
            )
        time.sleep(0.03)
    # Only reached if the parent never killed us; stay alive so the
    # kill can still land (a drill that outruns its harness is a
    # harness bug, not a heal).
    print("STREAM-EXHAUSTED", flush=True)
    time.sleep(120.0)
    service.close()
    return 0


# ----------------------------------------------------------------------
# Parent: orchestrate, kill, observe the self-heal, verify.
def replay_primary_prefix(directory: Path, up_to_lsn: int):
    """Independently rebuild the dead primary's state at ``up_to_lsn``.

    Same record-application path the standby used
    (:class:`~repro.durable.recovery.RecordApplier`), driven straight
    off the dead primary's segments — an arbiter that shares no
    process with either side of the replication stream.
    """
    from repro.durable import records as rec
    from repro.durable.recovery import RecordApplier
    from repro.durable.wal import read_wal
    from repro.service.ingest import IngestService, ServiceConfig
    from repro.service.ledger import BudgetLedger

    service = None
    applier = None
    for record in read_wal(directory).records:
        if record.lsn > up_to_lsn:
            break
        if record.rtype == rec.CONFIG:
            if service is None:
                body = record.decode()
                caps = body.get("ledger")
                service = IngestService(
                    ServiceConfig(**body["service_config"]),
                    ledger=(
                        None
                        if caps is None
                        else BudgetLedger(
                            caps["epsilon_cap"],
                            delta_cap=caps["delta_cap"],
                        )
                    ),
                )
                applier = RecordApplier(service)
            continue
        applier.apply(record)
    if service is None:
        raise RuntimeError(f"no CONFIG record in {directory}")
    return service


def ledger_key(records):
    return sorted(
        (r["user_id"], r["epsilon"], r["delta"]) for r in records
    )


class _LineReader:
    """Read a child's stdout on a thread so waits can carry deadlines
    (after the primary dies, the next line comes from the watchdog —
    or never, which must be a timeout, not a hang)."""

    def __init__(self, stream) -> None:
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._thread = threading.Thread(
            target=self._pump, args=(stream,), daemon=True
        )
        self._thread.start()

    def _pump(self, stream) -> None:
        for line in stream:
            self._queue.put(line.strip())
        self._queue.put(None)  # EOF

    def next_line(self, timeout: float) -> Optional[str]:
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            raise TimeoutError(
                f"no output from drill child within {timeout}s"
            ) from None

    def wait_for(
        self, prefixes: Sequence[str], *, timeout: float, sink=None
    ) -> str:
        """Return the first line starting with any prefix; feed every
        line through ``sink`` on the way."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"child never printed any of {prefixes}"
                )
            line = self.next_line(remaining)
            if line is None:
                raise RuntimeError(
                    f"child stdout closed before any of {prefixes}"
                )
            if sink is not None:
                sink(line)
            if any(line.startswith(p) for p in prefixes):
                return line


def _kill_pid(pid: int) -> None:
    try:
        os.kill(pid, signal.SIGKILL)
    except OSError:
        pass


def run_one_drill(
    seed: int,
    *,
    claims: int,
    standbys: int = 2,
    python: Optional[str] = None,
    log=print,
) -> dict:
    """One seeded drill; returns the per-seed result dict."""
    import numpy as np

    from repro.replication.client import (
        FailoverReadClient,
        ReplicaReadClient,
    )
    from repro.utils.rng import derive_seed

    root = Path(tempfile.mkdtemp(prefix=f"repro-chaos-{seed}-"))
    primary_dir = root / "wal"
    child = subprocess.Popen(
        [
            python or sys.executable,
            "-m",
            "repro.chaos.drill",
            "--run-primary",
            "--seed",
            str(seed),
            "--dir",
            str(primary_dir),
            "--claims",
            str(claims),
            "--standbys",
            str(standbys),
        ],
        env={**os.environ},
        stdout=subprocess.PIPE,
        text=True,
    )
    standby_ports: dict[int, int] = {}
    standby_pids: dict[int, int] = {}
    watchdog_pid: Optional[int] = None
    faults: dict = {}
    armed = False

    def sink(line: str) -> None:
        nonlocal watchdog_pid, armed
        if line.startswith("STANDBY "):
            _, index, port, pid = line.split()
            standby_ports[int(index)] = int(port)
            standby_pids[int(index)] = int(pid)
        elif line.startswith("WATCHDOG "):
            watchdog_pid = int(line.split()[1])
        elif line.startswith("FAULTS "):
            faults.update(json.loads(line.split(" ", 1)[1]))
        elif line == "ARMED":
            armed = True

    result: dict = {"seed": seed, "auto_promoted": False}
    try:
        reader = _LineReader(child.stdout)
        reader.wait_for(["STREAMING"], timeout=180.0, sink=sink)
        if not armed:
            reader.wait_for(["ARMED"], timeout=60.0, sink=sink)
        if len(standby_ports) != standbys:
            raise RuntimeError("child never announced its standbys")

        # A standby must hold a real replicated prefix before we pull
        # the plug, or "bitwise at the watermark" verifies nothing.
        deadline = time.monotonic() + 120.0
        while True:
            watermarks = {}
            for index, port in standby_ports.items():
                try:
                    with ReplicaReadClient(
                        ("127.0.0.1", port), timeout=5.0
                    ) as client:
                        watermarks[index] = client.status()["durable_lsn"]
                except (OSError, EOFError, ConnectionError):
                    continue
            if watermarks and max(watermarks.values()) >= MIN_REPLICATED_LSN:
                break
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"no standby reached lsn {MIN_REPLICATED_LSN}; "
                    f"saw {watermarks}"
                )
            time.sleep(0.05)

        # Seed-derived extra process fault: SIGKILL at most one standby
        # (never all — someone must be left to elect).  Distinct bits
        # of the draw decide *whether* and *whom*: reusing the parity
        # bit for both would pin the victim to standby 0 forever.
        kill_draw = derive_seed(seed, "drill", "kill-standby")
        victim: Optional[int] = None
        if standbys > 1 and (kill_draw >> 1) % 2 == 0:
            victim = (kill_draw >> 2) % standbys
            log(f"  chaos: SIGKILL standby {victim} "
                f"(pid {standby_pids[victim]})")
            _kill_pid(standby_pids[victim])
        result["standby_killed"] = victim

        log(f"  SIGKILL primary pid {child.pid}")
        kill_time = time.monotonic()
        os.kill(child.pid, signal.SIGKILL)
        child.wait(timeout=30.0)

        # The watchdog inherited the stdout pipe; its PROMOTED line is
        # the proof the system healed itself — nobody on this side of
        # the pipe calls promote().
        line = reader.wait_for(["PROMOTED "], timeout=60.0, sink=sink)
        promoted = json.loads(line.split(" ", 1)[1])
        failover_wall = time.monotonic() - kill_time
        result.update(
            {
                "auto_promoted": True,
                "promoted_index": promoted["promoted_index"],
                "watermark_lsn": promoted["watermark_lsn"],
                "detection_seconds": promoted["detection_seconds"],
                "promotion_seconds": promoted["promotion_seconds"],
                "failover_wall_seconds": failover_wall,
                "faults_injected": dict(faults),
            }
        )
        log(
            f"  PROMOTED standby {promoted['promoted_index']} at lsn "
            f"{promoted['watermark_lsn']} (detect "
            f"{promoted['detection_seconds']:.2f}s, promote "
            f"{promoted['promotion_seconds']:.2f}s)"
        )

        # The spent-budget status must come from the new primary.
        promoted_port = standby_ports[promoted["promoted_index"]]
        with ReplicaReadClient(
            ("127.0.0.1", promoted_port), timeout=10.0
        ) as primary_client:
            deadline = time.monotonic() + 30.0
            status = primary_client.status()
            while not status.get("promoted"):
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        "promoted standby never reported promoted=True"
                    )
                time.sleep(0.1)
                status = primary_client.status()

        # Read through the re-pointing client: when a standby was
        # killed, start there — the read path must walk off the corpse
        # to the new primary on its own.  (A non-promoted survivor
        # would serve truths at *its* watermark, so the walk must end
        # on the promoted standby either way.)
        addresses = []
        if victim is not None:
            addresses.append(("127.0.0.1", standby_ports[victim]))
        addresses.append(("127.0.0.1", promoted_port))
        with FailoverReadClient(addresses, timeout=3.0) as read_client:
            snapshot = read_client.snapshot(CAMPAIGN)
            result["read_repoints"] = read_client.repoints
        arbiter = replay_primary_prefix(
            primary_dir, promoted["watermark_lsn"]
        )
        crashed = arbiter.snapshot(CAMPAIGN)
        result["truths_match_bitwise"] = bool(
            snapshot.truths.tobytes() == crashed.truths.tobytes()
            and np.all(np.isfinite(snapshot.truths))
            and snapshot.weights_by_user == crashed.weights_by_user
            and snapshot.claims_ingested == crashed.claims_ingested
            and snapshot.claims_ingested > 0
        )
        spent = status["ledger"]["records"]
        result["budget_spent_matches"] = bool(
            len(spent) > 0
            and ledger_key(spent) == ledger_key(arbiter.ledger.to_records())
        )
        result["claims_preserved"] = int(snapshot.claims_ingested)
        log(
            f"  invariants: bitwise="
            f"{result['truths_match_bitwise']} "
            f"budget={result['budget_spent_matches']} "
            f"(repoints={result['read_repoints']})"
        )
        return result
    finally:
        if child.poll() is None:
            child.kill()
            child.wait()
        for index, port in standby_ports.items():
            try:
                with ReplicaReadClient(
                    ("127.0.0.1", port), timeout=2.0
                ) as client:
                    client.shutdown()
            except (OSError, EOFError, ConnectionError):
                pass
        time.sleep(0.2)
        for pid in standby_pids.values():
            _kill_pid(pid)
        if watchdog_pid is not None:
            _kill_pid(watchdog_pid)
        if child.stdout is not None:
            child.stdout.close()
        shutil.rmtree(root, ignore_errors=True)


def run_chaos_drill(
    *,
    seeds: Optional[Sequence[int]] = None,
    drills: int = 5,
    base_seed: int = 2020,
    claims: int = 6000,
    smoke: bool = False,
    log=print,
) -> dict:
    """Run every seed; returns the aggregate report the CI job gates."""
    if seeds is None:
        seeds = (
            list(SMOKE_SEEDS)
            if smoke
            else [base_seed + 101 * i for i in range(drills)]
        )
    seeds = list(seeds)
    if smoke:
        claims = min(claims, 4000)
    results = []
    for seed in seeds:
        log(f"== drill seed {seed} ==")
        try:
            results.append(
                run_one_drill(seed, claims=claims, log=log)
            )
        except (RuntimeError, TimeoutError, OSError) as exc:
            log(f"  drill seed {seed} FAILED: {exc}")
            results.append(
                {
                    "seed": seed,
                    "auto_promoted": False,
                    "error": str(exc),
                }
            )
    healed = [r for r in results if r.get("auto_promoted")]
    report = {
        "kind": "chaos",
        "seeds": seeds,
        "claims_per_drill": claims,
        "drills": results,
        "watchdog": {
            "detection_seconds_max": max(
                (r["detection_seconds"] for r in healed), default=None
            ),
            "promotion_seconds_max": max(
                (r["promotion_seconds"] for r in healed), default=None
            ),
            "failover_wall_seconds_max": max(
                (r["failover_wall_seconds"] for r in healed),
                default=None,
            ),
        },
        "invariants": {
            "auto_promoted": len(healed) == len(results),
            "truths_match_bitwise": bool(results)
            and all(r.get("truths_match_bitwise") for r in results),
            "budget_spent_matches": bool(results)
            and all(r.get("budget_spent_matches") for r in results),
        },
    }
    return report


def format_drill_summary(report: dict) -> str:
    lines = [
        f"chaos drill over {len(report['seeds'])} seed(s): "
        f"{report['seeds']}"
    ]
    for drill in report["drills"]:
        if not drill.get("auto_promoted"):
            lines.append(
                f"  seed {drill['seed']}: FAILED to heal "
                f"({drill.get('error', 'no promotion observed')})"
            )
            continue
        lines.append(
            f"  seed {drill['seed']}: promoted standby "
            f"{drill['promoted_index']} at lsn {drill['watermark_lsn']} "
            f"(detect {drill['detection_seconds']:.2f}s, promote "
            f"{drill['promotion_seconds']:.2f}s, bitwise="
            f"{drill['truths_match_bitwise']}, budget="
            f"{drill['budget_spent_matches']})"
        )
    inv = report["invariants"]
    watchdog = report["watchdog"]
    if watchdog["detection_seconds_max"] is not None:
        lines.append(
            f"worst detection {watchdog['detection_seconds_max']:.2f}s, "
            f"worst promotion {watchdog['promotion_seconds_max']:.2f}s"
        )
    lines.append(
        "invariants: "
        + ", ".join(f"{k}={v}" for k, v in sorted(inv.items()))
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="seeded chaos drill against a replicated topology"
    )
    parser.add_argument("--seeds", type=int, nargs="+", default=None)
    parser.add_argument("--drills", type=int, default=5)
    parser.add_argument("--base-seed", type=int, default=2020)
    parser.add_argument("--claims", type=int, default=6000)
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--output", default=None)
    # Internal: the doomed-primary child re-exec.
    parser.add_argument(
        "--run-primary", action="store_true", help=argparse.SUPPRESS
    )
    parser.add_argument("--seed", type=int, default=0,
                        help=argparse.SUPPRESS)
    parser.add_argument("--dir", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--standbys", type=int, default=2,
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.run_primary:
        return run_primary(args)
    report = run_chaos_drill(
        seeds=args.seeds,
        drills=args.drills,
        base_seed=args.base_seed,
        claims=args.claims,
        smoke=args.smoke,
    )
    print(format_drill_summary(report))
    if args.output:
        os.makedirs(os.path.dirname(args.output) or ".", exist_ok=True)
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 0 if all(report["invariants"].values()) else 1


if __name__ == "__main__":
    sys.exit(main())
