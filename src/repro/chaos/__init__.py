"""repro.chaos — deterministic fault injection and chaos drills.

The invariants this codebase sells — recovered truths bitwise-equal,
spent budget stays spent — were historically proven at hand-placed
fault points (a SIGKILL here, a torn segment there).  This package
makes them properties checked under *randomized but reproducible*
schedules instead:

* :class:`FaultPlan` — a seed-driven schedule over named fault points
  (:data:`FAULT_POINTS`) threaded through the WAL, the socket
  transport, and the process pools; per-point child streams keep the
  schedule stable under interleaving;
* :mod:`repro.chaos.points` — the process-wide switchboard hook sites
  query (a no-op unless a plan is installed);
* :func:`run_chaos_drill` — the harness behind ``repro chaos-drill``:
  N seeded schedules against a live replicated topology, each ending
  in a SIGKILLed primary, an *automated* watchdog promotion, and the
  bitwise/budget invariant checks.

See ``docs/operations.md`` for reproducing a drill seed locally.
"""

from repro.chaos.plan import (
    DEFAULT_RATES,
    FAULT_POINTS,
    FaultPlan,
    InjectedFault,
)
from repro.chaos.points import (
    active,
    fire,
    injected_counts,
    install,
    installed,
    uninstall,
)

__all__ = [
    "DEFAULT_RATES",
    "FAULT_POINTS",
    "FaultPlan",
    "InjectedFault",
    "active",
    "fire",
    "injected_counts",
    "install",
    "installed",
    "uninstall",
    "run_chaos_drill",
]


def run_chaos_drill(*args, **kwargs):
    """Lazy alias for :func:`repro.chaos.drill.run_chaos_drill`."""
    from repro.chaos.drill import run_chaos_drill as _run

    return _run(*args, **kwargs)
