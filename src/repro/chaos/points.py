"""The process-wide fault-point switchboard.

Hook sites in the hot layers (:mod:`repro.durable.wal`,
:mod:`repro.net.transport`, :mod:`repro.net.supervisor`) cannot import
plan machinery or pay for it when chaos is off.  This module is their
entire dependency: a module global holding the active
:class:`~repro.chaos.plan.FaultPlan` (or None) and a :func:`fire` that
is a two-instruction no-op while nothing is installed.

Installation is explicit and per process — a standby subprocess never
injects unless *it* installs a plan — and scoped installs via
:func:`installed` keep tests from leaking chaos into each other.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from repro.chaos.plan import FaultPlan, InjectedFault

_plan: Optional[FaultPlan] = None


def install(plan: FaultPlan) -> None:
    """Make ``plan`` the process's active fault schedule."""
    global _plan
    if plan is not None and not isinstance(plan, FaultPlan):
        raise TypeError(
            f"expected a FaultPlan, got {type(plan).__name__}"
        )
    _plan = plan


def uninstall() -> None:
    """Deactivate fault injection for this process."""
    global _plan
    _plan = None


def active() -> Optional[FaultPlan]:
    """The installed plan, or None when chaos is off."""
    return _plan


def fire(point: str) -> Optional[InjectedFault]:
    """Query the active plan at ``point`` (None when chaos is off)."""
    plan = _plan
    if plan is None:
        return None
    return plan.fire(point)


def injected_counts() -> dict[str, int]:
    """Injected-fault tallies of the active plan ({} when off)."""
    plan = _plan
    return {} if plan is None else plan.counts()


@contextmanager
def installed(plan: FaultPlan):
    """``with installed(FaultPlan(seed)):`` — scoped injection."""
    previous = _plan
    install(plan)
    try:
        yield plan
    finally:
        install(previous) if previous is not None else uninstall()
