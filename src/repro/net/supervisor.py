"""Supervised shard hosts: journal, checkpoint, restart, replay.

A pipe worker dying is fatal by design — the parent raises
:class:`~repro.workers.handles.WorkerCrashedError` and the operator
recovers from the WAL.  A *fabric* must do better: shard hosts are
remote processes that die for reasons that have nothing to do with the
data (OOM killers, node reboots, deploys), and the service should ride
through.

The mechanism is deterministic replay, built on two facts the worker
tier already guarantees:

* a shard host's aggregator state is a pure function of the ordered
  frame sequence it processed (that is what makes multi-process truths
  bitwise-identical to single-process truths);
* ``state_dict`` captures staged-but-unfolded work exactly, and
  ``LOAD_STATE`` restores it, bit for bit.

So the parent keeps, per host, a :class:`HostJournal`: the last
*capture* (``state_dict`` of every campaign, taken through the normal
RPC path) plus every state-changing frame sent since.  When a host
dies, :meth:`Supervisor.failover` spawns a replacement, replays
capture + journal in order, and the service continues as if nothing
happened — recovered truths are bitwise-identical to an uncrashed run,
and no caller ever sees the crash.

One subtlety: answering a snapshot RPC *folds* staged claims remotely
(reads force a refresh), and fold timing is part of the bitwise
contract.  Snapshot requests are therefore journaled as ``REFRESH``
markers — replaying the marker reproduces the fold at the same point
in the stream, and a marker hitting an empty staging buffer is a
no-op, so over-marking cannot perturb state.

Captures are taken automatically every ``checkpoint_every_claims``
journaled claims (bounding replay work and journal memory), and after
every failover.

Hosts can also disappear *for good* — the machine is gone, not the
process.  Respawn attempts are bounded by the shared jittered
:class:`~repro.utils.backoff.Backoff` (one seeded stream per host), and
when they exhaust, :meth:`Supervisor.rehome` declares the host lost and
replays its journal — capture plus frame suffix, per campaign, in
order — into the *surviving* hosts instead.  Placement moves and proxy
re-points happen only after the replay barrier, so no claim is dropped
and truths stay bitwise-equal to an uncrashed run; the service keeps
ingesting, degraded, with fewer hosts.
"""

from __future__ import annotations

import json
import struct
import time
from typing import Callable, Optional

from repro.chaos import points as _chaos
from repro.durable import records as rec
from repro.utils.backoff import Backoff
from repro.utils.logging import get_logger
from repro.utils.rng import derive_seed
from repro.workers import protocol as proto
from repro.workers.handles import WorkerCrashedError, WorkerHandle

_LOGGER = get_logger("net.supervisor")

#: Frame types that change shard-host state and therefore must replay.
JOURNALLED_TYPES = frozenset(
    {rec.REGISTER, rec.UNREGISTER, rec.BATCH, rec.REFRESH, proto.LOAD_STATE}
)

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")


def _batch_claims(payload: bytes) -> int:
    """Claim count of a BATCH frame (header peek; no column decode)."""
    try:
        (cid_len,) = _U16.unpack_from(payload, 0)
        (n,) = _U32.unpack_from(payload, _U16.size + cid_len + 1)
    except struct.error:
        return 0  # malformed; the worker will raise, not us
    return n


def _frame_campaign(rtype: int, payload: bytes) -> str:
    """The campaign a journaled frame belongs to (re-home routing).

    BATCH frames prefix the campaign id (u16 length + bytes); REGISTER/
    UNREGISTER/REFRESH are JSON; LOAD_STATE is a packed state whose
    envelope carries ``campaign_id``.
    """
    if rtype == rec.BATCH:
        (cid_len,) = _U16.unpack_from(payload, 0)
        return payload[_U16.size:_U16.size + cid_len].decode("utf-8")
    if rtype == proto.LOAD_STATE:
        return proto.unpack_state(payload)["campaign_id"]
    return json.loads(payload.decode("utf-8"))["campaign_id"]


class HostJournal:
    """Everything needed to rebuild one shard host deterministically."""

    def __init__(self) -> None:
        #: Current registrations: campaign_id -> REGISTER spec.
        self.specs: dict[str, dict] = {}
        #: Last capture: campaign_id -> (spec, state_dict).
        self.captured: dict[str, tuple[dict, dict]] = {}
        #: State-changing frames sent since the last capture, in order.
        self.frames: list[tuple[int, bytes]] = []
        self.claims_since_capture = 0
        self.captures = 0

    def record(self, rtype: int, payload: bytes) -> None:
        """Note one state-changing frame about to go on the wire."""
        if rtype == rec.REGISTER:
            spec = json.loads(payload.decode("utf-8"))
            self.specs[spec["campaign_id"]] = spec
        elif rtype == rec.UNREGISTER:
            cid = json.loads(payload.decode("utf-8"))["campaign_id"]
            self.specs.pop(cid, None)
        elif rtype == rec.BATCH:
            self.claims_since_capture += _batch_claims(payload)
        self.frames.append((rtype, bytes(payload)))

    def capture(self, states: dict[str, dict]) -> None:
        """Adopt fresh per-campaign states; the journal restarts empty."""
        self.captured = {
            cid: (dict(self.specs[cid]), state)
            for cid, state in states.items()
        }
        self.frames.clear()
        self.claims_since_capture = 0
        self.captures += 1


class Supervisor:
    """Watches a :class:`~repro.net.fabric.FabricPool`'s hosts.

    The pool's handles route every state-changing frame through their
    journal (see :class:`SupervisedHandle`); the supervisor decides
    when to capture and performs failover when a host dies.  While
    :attr:`active` is False (during failover, and after close) the
    handles behave exactly like unsupervised ones, so replay traffic is
    never re-journaled and a crash mid-failover surfaces instead of
    recursing.
    """

    def __init__(
        self,
        pool,
        *,
        checkpoint_every_claims: int = 50_000,
        respawn_attempts: int = 4,
        respawn_seed: int = 0,
    ) -> None:
        if checkpoint_every_claims < 1:
            raise ValueError(
                f"checkpoint_every_claims must be >= 1, got "
                f"{checkpoint_every_claims}"
            )
        if respawn_attempts < 1:
            raise ValueError(
                f"respawn_attempts must be >= 1, got {respawn_attempts}"
            )
        self._pool = pool
        self.checkpoint_every_claims = checkpoint_every_claims
        self.respawn_attempts = respawn_attempts
        self._respawn_seed = respawn_seed
        self._respawn_backoff: dict[int, Backoff] = {}
        self.active = True
        self.restarts = 0
        self.respawn_retries = 0
        self.failover_seconds: list[float] = []
        self.last_failover_seconds: Optional[float] = None
        #: Hosts declared gone for good (their shards were re-homed).
        self.lost_hosts: set[int] = set()
        self.rehomes = 0
        self.rehome_seconds: list[float] = []
        self.last_rehome_seconds: Optional[float] = None
        #: Service hook, called as ``on_rehome(campaign_id, handle)``
        #: after a lost host's campaign landed on a survivor — the
        #: :class:`~repro.workers.handles.RemoteAggregator` proxies live
        #: above this layer and must re-point there.
        self.on_rehome: Optional[Callable[[str, WorkerHandle], None]] = None

    # ------------------------------------------------------------------
    def maybe_checkpoint(self) -> None:
        """Capture any host whose journal outgrew the claim budget."""
        if not self.active:
            return
        for handle in self._pool.handles:
            if getattr(handle, "lost", False):
                continue
            journal = handle.journal
            if journal.claims_since_capture >= self.checkpoint_every_claims:
                self.checkpoint(handle)

    def checkpoint(self, handle: "SupervisedHandle") -> None:
        """Capture one host's campaigns through the normal RPC path.

        ``state_dict`` does not fold staged work (checkpointing cannot
        perturb the stream), and the RPC is ordered after every frame
        already sent, so the capture is exact without any barrier.
        """
        states = {
            cid: handle.state_dict(cid) for cid in sorted(handle.journal.specs)
        }
        handle.journal.capture(states)
        _LOGGER.debug(
            "captured host %d (%d campaign(s))",
            handle.worker_id,
            len(states),
        )

    # ------------------------------------------------------------------
    def failover(self, handle: "SupervisedHandle") -> None:
        """Replace a dead host and replay it back to the stream head.

        When the replacement cannot be spawned within the bounded
        backoff budget, the host is declared gone for good and its
        shards are re-homed onto the survivors instead
        (:meth:`rehome`) — degraded, but no claim is dropped.
        """
        start = time.perf_counter()
        self.active = False
        respawned = False
        try:
            _LOGGER.warning(
                "shard host %d died (exit code %s); restarting",
                handle.worker_id,
                handle.process.exitcode,
            )
            respawned = self._respawn_bounded(handle)
            if respawned:
                handle.send(rec.CONFIG, self._pool.config_frame)
                handle.expect(
                    proto.READY, timeout=self._pool.start_timeout
                )
                journal = handle.journal
                for cid, (spec, state) in journal.captured.items():
                    handle.send(
                        rec.REGISTER, rec.encode_json_payload(spec)
                    )
                    handle.send(
                        proto.LOAD_STATE,
                        proto.pack_state(
                            {"campaign_id": cid, "state": state}
                        ),
                    )
                for rtype, payload in journal.frames:
                    handle.send(rtype, payload)
                # Barrier: the replacement is only "recovered" once it
                # has processed the whole replay (and proved it can
                # answer).
                handle.sync()
            else:
                self.rehome(handle)
        finally:
            self.active = True
        if not respawned:
            return
        # Start the next epoch from the recovered state so a second
        # crash replays from here, not from before the first one.
        self.checkpoint(handle)
        elapsed = time.perf_counter() - start
        self.restarts += 1
        self.failover_seconds.append(elapsed)
        self.last_failover_seconds = elapsed
        _LOGGER.warning(
            "shard host %d recovered in %.3fs (replayed %d campaign "
            "capture(s))",
            handle.worker_id,
            elapsed,
            len(handle.journal.captured),
        )

    def _respawn_bounded(self, handle: "SupervisedHandle") -> bool:
        """Respawn with jittered-backoff retries; False when exhausted.

        A flapping spawn path (or an injected ``proc.spawn`` fault)
        neither hard-fails the service on the first refusal nor loops
        hot: each host retries on its own seeded backoff stream.
        """
        backoff = self._respawn_backoff.get(handle.worker_id)
        if backoff is None:
            backoff = Backoff(
                base=0.05,
                cap=2.0,
                random_state=derive_seed(
                    self._respawn_seed,
                    "supervisor.respawn",
                    handle.worker_id,
                ),
            )
            self._respawn_backoff[handle.worker_id] = backoff
        backoff.reset()
        for attempt in range(self.respawn_attempts):
            try:
                self._pool.respawn(handle)
            except (OSError, RuntimeError, TimeoutError) as exc:
                self.respawn_retries += 1
                remaining = self.respawn_attempts - attempt - 1
                _LOGGER.warning(
                    "respawn of shard host %d failed (%s); "
                    "%d attempt(s) left",
                    handle.worker_id,
                    exc,
                    remaining,
                )
                if remaining == 0:
                    return False
                time.sleep(backoff.next())
            else:
                return True
        return False  # pragma: no cover - loop always returns

    # ------------------------------------------------------------------
    def rehome(self, dead: "SupervisedHandle") -> None:
        """Declare ``dead`` gone for good; re-home its shards.

        State is sourced from the dead host's *journal* (the host
        cannot be asked): the last capture plus the frame suffix replay
        into the survivors, per campaign, in original order — the same
        determinism argument as in-place failover, just with a new
        address.  The placement table and the aggregator proxies are
        updated only after the replay barrier, so the switch is atomic
        from the data plane's point of view.
        """
        from repro.service.shard import shard_for

        start = time.perf_counter()
        placement = self._pool.placement
        survivors = [
            h
            for h in self._pool.handles
            if h is not dead and not getattr(h, "lost", False)
        ]
        if not survivors:
            raise WorkerCrashedError(
                f"shard host {dead.worker_id} is gone for good and no "
                f"surviving hosts remain"
            )
        dead.retire()
        self.lost_hosts.add(dead.worker_id)
        journal = dead.journal
        # Deterministic reassignment: the dead host's shards go
        # round-robin over the survivors in handle order.
        shards = placement.shards_of(dead.worker_id)
        new_owner = {
            shard: survivors[i % len(survivors)]
            for i, shard in enumerate(shards)
        }

        def target_of(cid: str) -> WorkerHandle:
            owner = new_owner.get(shard_for(cid, placement.num_shards))
            return owner if owner is not None else survivors[0]

        # Replay capture first, then the suffix, preserving per-frame
        # order; interleaving across campaigns is irrelevant because
        # shard-host state is per-campaign independent.
        for cid in sorted(journal.captured):
            spec, state = journal.captured[cid]
            target = target_of(cid)
            target.send(rec.REGISTER, rec.encode_json_payload(spec))
            target.send(
                proto.LOAD_STATE,
                proto.pack_state({"campaign_id": cid, "state": state}),
            )
        for rtype, payload in journal.frames:
            target_of(_frame_campaign(rtype, payload)).send(rtype, payload)
        affected = sorted(
            {target_of(cid).worker_id for cid in journal.specs}
            | {h.worker_id for h in new_owner.values()}
        )
        by_id = {h.worker_id: h for h in survivors}
        for worker_id in affected:
            by_id[worker_id].sync()
        # The survivors now own the campaigns: absorb them into their
        # journals and capture, so a *survivor* crash replays them too.
        for cid, spec in journal.specs.items():
            target_of(cid).journal.specs[cid] = dict(spec)
            dead.rehome_targets[cid] = target_of(cid)
        for worker_id in affected:
            self.checkpoint(by_id[worker_id])
        # Atomic switch: placement, then proxies.
        for shard, owner in sorted(new_owner.items()):
            placement.move(shard, owner.worker_id)
        if self.on_rehome is not None:
            for cid in sorted(journal.specs):
                self.on_rehome(cid, target_of(cid))
        elapsed = time.perf_counter() - start
        self.rehomes += 1
        self.rehome_seconds.append(elapsed)
        self.last_rehome_seconds = elapsed
        _LOGGER.warning(
            "shard host %d lost for good: re-homed %d shard(s) / %d "
            "campaign(s) onto %d survivor(s) in %.3fs (placement epoch "
            "%d)",
            dead.worker_id,
            len(shards),
            len(journal.specs),
            len({h.worker_id for h in new_owner.values()}),
            elapsed,
            placement.epoch,
        )

    def stats(self) -> dict:
        """JSON-friendly counters (bench / observability)."""
        return {
            "restarts": self.restarts,
            "respawn_retries": self.respawn_retries,
            "last_failover_seconds": self.last_failover_seconds,
            "failover_seconds": list(self.failover_seconds),
            "checkpoint_every_claims": self.checkpoint_every_claims,
            "captures": sum(
                h.journal.captures for h in self._pool.handles
            ),
            "hosts_lost": sorted(self.lost_hosts),
            "rehomes": self.rehomes,
            "last_rehome_seconds": self.last_rehome_seconds,
            "rehome_seconds": list(self.rehome_seconds),
            "placement_epoch": getattr(
                self._pool.placement, "epoch", 0
            ),
        }


class SupervisedHandle(WorkerHandle):
    """A :class:`WorkerHandle` that journals and self-heals.

    Every state-changing frame is recorded in the host's journal
    *before* it goes on the wire (a frame the dead host never processed
    must still replay).  Crash errors from the data plane trigger
    :meth:`Supervisor.failover` instead of propagating; RPCs retry once
    against the replacement host.  Everything else — including
    ``shutdown``, which writes to the socket directly — is inherited.
    """

    def __init__(self, *args, supervisor: Supervisor, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._supervisor = supervisor
        self.journal = HostJournal()
        #: True once the supervisor declared this host gone for good.
        self.lost = False
        #: campaign_id -> surviving handle, filled in by ``rehome``;
        #: an RPC caught mid-flight by the loss re-routes through this.
        self.rehome_targets: dict[str, WorkerHandle] = {}

    # ------------------------------------------------------------------
    def retire(self) -> None:
        """Mark the host lost for good and release its connection."""
        self.lost = True
        self._closed = True
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass

    # ------------------------------------------------------------------
    def reset(self, process, conn) -> None:
        """Adopt a replacement host (supervisor hook, post-respawn).

        The handle object keeps its identity, so every
        :class:`~repro.workers.handles.RemoteAggregator` proxy pointing
        here stays valid across the restart.
        """
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        self.process = process
        self._conn = conn
        self._closed = False
        self._crashing = False

    # ------------------------------------------------------------------
    def send(self, rtype: int, payload: bytes = b"") -> None:
        if self.lost:
            raise WorkerCrashedError(
                f"shard host {self.worker_id} is gone for good; its "
                f"shards were re-homed"
            )
        if self._closed or not self._supervisor.active:
            return super().send(rtype, payload)
        journalled = rtype in JOURNALLED_TYPES
        if journalled:
            self.journal.record(rtype, payload)
        try:
            super().send(rtype, payload)
        except WorkerCrashedError:
            self._supervisor.failover(self)
            if self.lost:
                if journalled:
                    # The frame was journaled before the wire, so the
                    # re-home replay already delivered it to a survivor.
                    return
                raise WorkerCrashedError(
                    f"shard host {self.worker_id} is gone for good; "
                    f"route through the placement map"
                )
            if not journalled:
                # A control frame (RPC request) is not part of the
                # replay; deliver it to the replacement directly.
                super().send(rtype, payload)

    def request(self, rtype: int, payload: bytes, expect: int) -> bytes:
        if self._closed or not self._supervisor.active:
            return super().request(rtype, payload, expect)
        stall = _chaos.fire("proc.stall")
        if stall is not None:
            # Injected slow host: the RPC completes, late — exercising
            # every timeout the caller stacked on top of this path.
            time.sleep(stall.seconds)
        kill = _chaos.fire("proc.kill")
        if kill is not None and self.process is not None:
            # Injected host death right before an RPC: the request
            # below sees the crash and the supervisor must fail over.
            _LOGGER.warning(
                "chaos: SIGKILL shard host %d (#%d)",
                self.worker_id,
                kill.index,
            )
            self.process.kill()
            self.process.join(5.0)
        if rtype == proto.SNAPSHOT_REQ:
            # Answering a snapshot folds staged claims remotely; mark
            # the fold so replay reproduces its timing (a marker onto
            # empty staging is a no-op, so this can never over-fold).
            self.journal.record(
                rec.REFRESH,
                rec.encode_json_payload(
                    {
                        "campaign_id": json.loads(
                            payload.decode("utf-8")
                        )["campaign_id"]
                    }
                ),
            )
        try:
            return super().request(rtype, payload, expect)
        except WorkerCrashedError:
            self._supervisor.failover(self)
            if self.lost:
                return self._reroute_request(rtype, payload, expect)
            return super().request(rtype, payload, expect)

    def _reroute_request(
        self, rtype: int, payload: bytes, expect: int
    ) -> bytes:
        """Answer an RPC caught mid-flight by a permanent host loss.

        Campaign-scoped reads re-route to the survivor that adopted the
        campaign (the re-home replay already reproduced the fold
        marker, so a snapshot off the survivor is the bitwise answer).
        """
        if rtype in (proto.SNAPSHOT_REQ, proto.STATE_REQ):
            cid = json.loads(payload.decode("utf-8"))["campaign_id"]
            target = self.rehome_targets.get(cid)
            if target is not None:
                return target.request(rtype, payload, expect)
        raise WorkerCrashedError(
            f"shard host {self.worker_id} is gone for good; re-issue "
            f"the request through the placement map"
        )

    def check(self) -> None:
        if self.lost:
            return
        if self._closed or not self._supervisor.active:
            return super().check()
        try:
            super().check()
        except WorkerCrashedError:
            self._supervisor.failover(self)
