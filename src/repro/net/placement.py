"""Shard-to-host placement: who owns which contiguous shard range.

The worker pool used to keep an implicit placement (a flat
shard-to-handle list built once at startup).  A multi-node fabric needs
placement to be a first-class, *mutable* object: the supervisor
re-homes shards when a host dies for good, and online rebalancing moves
a shard between live hosts.  :class:`PlacementMap` is that object — an
explicit shard→host table, seeded with contiguous ranges (sizes
differing by at most one, exactly the old split) and updated one shard
at a time.

Contiguity is how placement *starts*, not an invariant: after moves the
map describes ownership as runs (``describe`` collapses adjacent shards
with one owner), which keeps the common case trivially readable while
letting any shard live anywhere.
"""

from __future__ import annotations

from repro.utils.validation import ensure_int


def shard_ranges(num_shards: int, num_hosts: int) -> list[tuple[int, int]]:
    """Split ``num_shards`` into ``num_hosts`` contiguous ``(lo, hi)``
    half-open ranges, sizes differing by at most one."""
    ensure_int(num_shards, "num_shards", minimum=1)
    ensure_int(num_hosts, "num_hosts", minimum=1)
    if num_hosts > num_shards:
        raise ValueError(
            f"{num_hosts} hosts cannot each own a shard range of "
            f"{num_shards} shard(s); use hosts <= num_shards"
        )
    base, extra = divmod(num_shards, num_hosts)
    ranges = []
    lo = 0
    for h in range(num_hosts):
        hi = lo + base + (1 if h < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


class PlacementMap:
    """Mutable shard→host assignment seeded with contiguous ranges."""

    def __init__(self, num_shards: int, num_hosts: int) -> None:
        self._num_hosts = num_hosts
        self._owner: list[int] = []
        #: Monotone version counter, bumped on every :meth:`move`.  A
        #: scrape comparing two epochs knows whether ownership changed
        #: in between without diffing the whole table.
        self.epoch = 0
        for host, (lo, hi) in enumerate(shard_ranges(num_shards, num_hosts)):
            self._owner.extend([host] * (hi - lo))

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self._owner)

    @property
    def num_hosts(self) -> int:
        return self._num_hosts

    def owner_of(self, shard_index: int) -> int:
        """Host index owning ``shard_index``."""
        if not 0 <= shard_index < len(self._owner):
            raise IndexError(
                f"shard {shard_index} outside 0..{len(self._owner) - 1}"
            )
        return self._owner[shard_index]

    def shards_of(self, host: int) -> list[int]:
        """Every shard currently owned by ``host`` (ascending)."""
        self._check_host(host)
        return [s for s, h in enumerate(self._owner) if h == host]

    def move(self, shard_index: int, host: int) -> int:
        """Reassign one shard; returns the previous owner."""
        self._check_host(host)
        previous = self.owner_of(shard_index)
        self._owner[shard_index] = host
        self.epoch += 1
        return previous

    def describe(self) -> list[dict]:
        """Ownership as contiguous runs (JSON-friendly observability)."""
        runs: list[dict] = []
        for shard, host in enumerate(self._owner):
            if runs and runs[-1]["host"] == host \
                    and runs[-1]["hi"] == shard:
                runs[-1]["hi"] = shard + 1
            else:
                runs.append({"host": host, "lo": shard, "hi": shard + 1})
        return runs

    def _check_host(self, host: int) -> None:
        if not 0 <= host < self._num_hosts:
            raise IndexError(
                f"host {host} outside 0..{self._num_hosts - 1}"
            )
