"""Incremental length-prefixed frame decoding.

Every byte stream in the system — the worker pipes, the shard-host
sockets, the crowdsensing device links — carries the same frame
layout::

    u32  length of everything after this field (little-endian)
    u8   frame type
    ...  payload

Pipes deliver each ``send_bytes`` as one complete message, so the
worker path historically decoded whole buffers.  Sockets do not:
a frame can arrive split across arbitrarily many reads, and one read
can end mid-header.  :class:`FrameReader` is the single decoder both
paths share — feed it byte chunks as they arrive and it yields every
complete ``(type, payload)`` frame, buffering any partial tail until
the next feed.

The reader is strict about what a *complete* prefix must look like
(a declared length of zero cannot even hold the type byte; a length
beyond ``max_frame_bytes`` is garbage or an attack, not a frame) but
deliberately silent about truncation: a partial tail is simply not
yielded yet, because over a live socket "truncated" and "still in
flight" are indistinguishable.  Callers that know the stream is over
check :attr:`pending_bytes` to turn a leftover tail into an error.
"""

from __future__ import annotations

import struct

_HEADER = struct.Struct("<IB")

#: Default ceiling on one frame's declared size.  Aggregator state for
#: a large campaign is tens of MB; 1 GiB rejects corrupt prefixes long
#: before an allocation can hurt.
MAX_FRAME_BYTES = 1 << 30


class FramingError(ValueError):
    """The byte stream does not parse as length-prefixed frames."""


class FrameReader:
    """Stateful decoder turning byte chunks into complete frames.

    One instance per stream direction.  ``feed`` never blocks and never
    over-reads: bytes beyond the last complete frame stay buffered for
    the next call, so arbitrary fragmentation (and coalescing — several
    frames in one read) decodes identically to whole-message delivery.
    """

    def __init__(self, *, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        if max_frame_bytes < 1:
            raise ValueError(
                f"max_frame_bytes must be >= 1, got {max_frame_bytes}"
            )
        self._max = max_frame_bytes
        self._buffer = bytearray()

    # ------------------------------------------------------------------
    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete frame."""
        return len(self._buffer)

    @property
    def at_boundary(self) -> bool:
        """True when the stream so far decoded into whole frames only."""
        return not self._buffer

    # ------------------------------------------------------------------
    def feed(self, data: bytes) -> list[tuple[int, bytes]]:
        """Absorb ``data``; return every frame completed by it."""
        self._buffer.extend(data)
        frames: list[tuple[int, bytes]] = []
        view = self._buffer
        offset = 0
        while len(view) - offset >= _HEADER.size:
            length, rtype = _HEADER.unpack_from(view, offset)
            if length < 1:
                raise FramingError(
                    "frame declares a length of 0 bytes, which cannot "
                    "hold its type byte"
                )
            if length > self._max:
                raise FramingError(
                    f"frame declares {length} bytes, above the "
                    f"{self._max}-byte ceiling — corrupt stream?"
                )
            end = offset + _HEADER.size - 1 + length
            if len(view) < end:
                break  # partial tail; wait for more bytes
            frames.append((rtype, bytes(view[offset + _HEADER.size:end])))
            offset = end
        if offset:
            del self._buffer[:offset]
        return frames
