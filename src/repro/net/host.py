"""The shard host: the worker runtime behind an asyncio socket server.

``repro serve-shard`` turns a shard worker into a process on a port.
The host serves the same frame protocol the pipe workers speak — driven
by the shared :class:`~repro.workers.worker.ShardRuntime` — but over
TCP, and accepts *multiple* concurrent connections:

* the **primary** connection is whichever peer completes the
  ``CONFIG`` → ``READY`` handshake (the fabric's data plane; frames on
  it are processed strictly in order, preserving the bitwise-identical
  truths invariant);
* any other connection may probe liveness with ``PING`` → ``PONG``
  (the supervisor's heartbeat) without perturbing the data plane —
  an unsolicited frame on the primary connection would be read as an
  error report by the parent, so heartbeats need their own stream.

Lifecycle mirrors the pipe worker: a ``SHUTDOWN`` frame exits cleanly;
the primary connection closing without one means the parent is gone and
the host exits rather than linger orphaned.  A dispatch failure is
reported as an ``ERROR`` frame carrying the traceback, then the host
exits nonzero — the parent raises a useful error instead of a bare
connection reset, exactly like the pipe path.
"""

from __future__ import annotations

import asyncio
import signal
import traceback
from typing import Callable, Optional

from repro.durable import records as rec
from repro.net.framing import FrameReader, FramingError
from repro.net.transport import RECV_CHUNK
from repro.utils.logging import get_logger
from repro.workers import protocol as proto
from repro.workers.worker import ShardRuntime

_LOGGER = get_logger("net.host")


class ShardHost:
    """One shard-worker runtime served over TCP."""

    def __init__(
        self,
        *,
        worker_id: int = 0,
        shard_range: tuple = (0, 0),
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._runtime = ShardRuntime(worker_id, shard_range)
        self._host = host
        self._requested_port = port
        self._stop: Optional[asyncio.Event] = None
        #: Bound port, set once the server is listening (``port=0``
        #: binds an ephemeral port; the parent learns it via
        #: ``announce``).
        self.port: Optional[int] = None
        self.exit_code = 0
        self._writers: set = set()

    # ------------------------------------------------------------------
    def request_stop(self) -> None:
        """Ask :meth:`serve` to exit (the SIGTERM handler; loop thread)."""
        if self._stop is not None:
            self._stop.set()

    async def serve(
        self, *, announce: Optional[Callable[[int], None]] = None
    ) -> int:
        """Listen and dispatch until shutdown; returns the exit code.

        SIGTERM is a graceful stop: the listener closes, every open
        connection's write buffer is flushed to the peer (a response a
        client is waiting on still arrives), and only then does the
        host exit — instead of the interpreter's default instant death
        mid-frame.
        """
        self._stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        signal_installed = False
        try:
            loop.add_signal_handler(signal.SIGTERM, self.request_stop)
            signal_installed = True
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main thread or non-Unix loop: no handler
        server = await asyncio.start_server(
            self._on_client, self._host, self._requested_port
        )
        self.port = server.sockets[0].getsockname()[1]
        if announce is not None:
            announce(self.port)
        _LOGGER.debug(
            "shard host %d listening on %s:%d",
            self._runtime.worker_id,
            self._host,
            self.port,
        )
        try:
            await self._stop.wait()
        finally:
            if signal_installed:
                loop.remove_signal_handler(signal.SIGTERM)
            server.close()
            await server.wait_closed()
            # Transport close flushes queued frames before EOFing the
            # peer; waiting on it is the graceful part of shutdown.
            for writer in list(self._writers):
                try:
                    writer.close()
                except OSError:  # pragma: no cover - teardown race
                    continue
            for writer in list(self._writers):
                try:
                    await asyncio.wait_for(
                        writer.wait_closed(), timeout=2.0
                    )
                except (asyncio.TimeoutError, OSError, ConnectionError):
                    pass
        return self.exit_code

    # ------------------------------------------------------------------
    async def _on_client(self, reader, writer) -> None:
        frames = FrameReader()
        is_primary = False
        self._writers.add(writer)

        def send(rtype: int, payload: bytes = b"") -> None:
            writer.write(proto.encode_frame(rtype, payload))

        try:
            while not self._stop.is_set():
                data = await reader.read(RECV_CHUNK)
                if not data:
                    break
                for rtype, payload in frames.feed(data):
                    if rtype == rec.CONFIG and not self._runtime.configured:
                        is_primary = True
                    if not self._runtime.on_frame(rtype, payload, send):
                        self._stop.set()
                        break
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # peer vanished; the finally block decides what it means
        except Exception:
            self.exit_code = 1
            try:
                send(
                    proto.ERROR,
                    rec.encode_json_payload(
                        {
                            "worker_id": self._runtime.worker_id,
                            "traceback": traceback.format_exc(),
                        }
                    ),
                )
                await writer.drain()
            except (OSError, ConnectionResetError, FramingError):
                pass  # parent already gone; exit code still says "failed"
            self._stop.set()
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
            except OSError:  # pragma: no cover - teardown race
                pass
            if is_primary and self._stop is not None \
                    and not self._stop.is_set():
                # The data plane closed without a SHUTDOWN: the parent
                # is gone, and an orphaned host would serve no one.
                self._stop.set()


def serve_shard(
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    worker_id: int = 0,
    shard_range: tuple = (0, 0),
    announce: Optional[Callable[[int], None]] = None,
) -> int:
    """Blocking entrypoint behind ``repro serve-shard``."""
    shard_host = ShardHost(
        worker_id=worker_id, shard_range=shard_range, host=host, port=port
    )
    return asyncio.run(shard_host.serve(announce=announce))
