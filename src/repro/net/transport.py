"""Socket transport with the ``multiprocessing`` connection surface.

:class:`SocketConnection` wraps one TCP stream in the exact API the
parent-side worker machinery already speaks against a pipe —
``send_bytes`` / ``poll(timeout)`` / ``close`` — plus a ``recv_frame``
fast path that :func:`repro.workers.protocol.recv_frame` prefers when
present.  Because sockets fragment where pipes did not, every received
chunk goes through the shared :class:`~repro.net.framing.FrameReader`;
a frame is "available" (``poll`` returns True) only once all its bytes
are buffered, so the caller never blocks mid-frame.

:class:`SocketListener` is the accepting side; :func:`connect` the
dialling side.  Both default to localhost — the fabric's first target
is N processes on one machine — but take any ``(host, port)`` address.
"""

from __future__ import annotations

import select
import socket
import time
from typing import Optional

from repro.chaos import points as _chaos
from repro.net.framing import FrameReader, FramingError
from repro.utils.backoff import Backoff
from repro.utils.rng import derive_seed

#: Bytes per ``recv`` call; large enough that a state-RPC payload
#: crosses in a few syscalls, small enough to stay allocation-friendly.
RECV_CHUNK = 1 << 16


class SocketConnection:
    """One framed byte stream over a connected TCP socket."""

    def __init__(self, sock: socket.socket) -> None:
        sock.setblocking(False)
        # Frames are latency-sensitive RPCs as often as bulk batches;
        # never trade an RTT for coalescing.
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock: Optional[socket.socket] = sock
        self._reader = FrameReader()
        self._frames: list[tuple[int, bytes]] = []
        self._eof = False

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._sock is None

    def fileno(self) -> int:
        if self._sock is None:
            raise OSError("connection is closed")
        return self._sock.fileno()

    # ------------------------------------------------------------------
    def send_bytes(self, data: bytes) -> None:
        """Write one complete buffer (blocking until fully sent)."""
        if self._sock is None:
            raise OSError("connection is closed")
        delay = _chaos.fire("net.delay")
        if delay is not None:
            # Injected slow network: the frame arrives, late.
            time.sleep(delay.seconds)
        reset = _chaos.fire("net.send")
        if reset is not None:
            # Injected connection reset: both ends see the stream die
            # mid-frame, exactly like a partition — the caller's
            # reconnect path (and the peer's dedup) must absorb it.
            self.close()
            raise BrokenPipeError(
                f"chaos: injected connection reset (#{reset.index})"
            )
        view = memoryview(data)
        while view:
            try:
                sent = self._sock.send(view)
            except BlockingIOError:
                select.select([], [self._sock], [])
                continue
            except BrokenPipeError:
                raise
            except ConnectionError as exc:
                raise BrokenPipeError(str(exc)) from exc
            view = view[sent:]

    def poll(self, timeout: float = 0.0) -> bool:
        """True once a complete frame (or EOF) is ready to receive."""
        if self._frames or self._eof:
            return True
        if self._sock is None:
            raise OSError("connection is closed")
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if deadline is None:
                wait = None
            else:
                wait = max(deadline - time.monotonic(), 0.0)
            readable, _, _ = select.select([self._sock], [], [], wait)
            if not readable:
                return False
            if self._pull() and (self._frames or self._eof):
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return bool(self._frames or self._eof)

    def recv_frame(self) -> tuple[int, bytes]:
        """Blocking read of one decoded frame; EOFError when peer left."""
        while not self._frames:
            if self._eof:
                raise EOFError("connection closed by peer")
            if self._sock is None:
                raise OSError("connection is closed")
            select.select([self._sock], [], [])
            self._pull()
        return self._frames.pop(0)

    def _pull(self) -> bool:
        """Drain readable bytes into the frame reader; True if any read."""
        got_any = False
        while True:
            try:
                chunk = self._sock.recv(RECV_CHUNK)
            except BlockingIOError:
                return got_any
            except ConnectionResetError:
                self._eof = True
                return True
            got_any = True
            if not chunk:
                self._eof = True
                if self._reader.pending_bytes:
                    raise FramingError(
                        f"peer closed mid-frame with "
                        f"{self._reader.pending_bytes} byte(s) pending"
                    )
                return True
            self._frames.extend(self._reader.feed(chunk))

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - double close
                pass
            self._sock = None

    def __enter__(self) -> "SocketConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SocketListener:
    """Accepting side of the framed transport (one bound TCP socket)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(16)
        self._sock: Optional[socket.socket] = sock
        self.address: tuple[str, int] = sock.getsockname()[:2]

    @property
    def port(self) -> int:
        return self.address[1]

    def accept(self, timeout: Optional[float] = None) -> SocketConnection:
        """Accept one peer; raises TimeoutError when none dials in time."""
        # Snapshot the socket: a concurrent close() (a standby or shard
        # host stopping) nulls the attribute, and that race must read
        # as "listener closed", not AttributeError.
        sock = self._sock
        if sock is None:
            raise OSError("listener is closed")
        try:
            readable, _, _ = select.select([sock], [], [], timeout)
            if not readable:
                raise TimeoutError(
                    f"no connection on {self.address} within {timeout}s"
                )
            conn, _peer = sock.accept()
        except ValueError as exc:  # select on a closed fd
            raise OSError("listener is closed") from exc
        return SocketConnection(conn)

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - double close
                pass
            self._sock = None

    def __enter__(self) -> "SocketListener":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def connect(
    address: tuple[str, int],
    *,
    timeout: float = 30.0,
    backoff: Optional[Backoff] = None,
) -> SocketConnection:
    """Dial a listener, retrying until ``timeout`` (hosts boot async).

    Retries follow a capped exponential backoff with seeded jitter
    (:class:`~repro.utils.backoff.Backoff`) instead of a fixed beat:
    the first retry is nearly immediate (a booting host usually binds
    within milliseconds), later ones spread out so N parents redialing
    one dead host do not synchronize.  The default schedule is seeded
    from the target address, so a replayed chaos drill redials on an
    identical timeline; pass ``backoff=`` to own the schedule.
    """
    if backoff is None:
        backoff = Backoff(
            base=0.02,
            cap=0.5,
            random_state=derive_seed(0, "net.connect", *address),
        )
    deadline = time.monotonic() + timeout
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        fault = _chaos.fire("net.connect")
        if fault is None:
            try:
                sock = socket.create_connection(address, timeout=5.0)
            except OSError as exc:
                last_error = exc
            else:
                return SocketConnection(sock)
        else:
            last_error = ConnectionRefusedError(
                f"chaos: injected dial refusal (#{fault.index})"
            )
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            break
        time.sleep(min(backoff.next(), remaining))
    raise ConnectionError(
        f"could not connect to {address} within {timeout}s: {last_error}"
    )
