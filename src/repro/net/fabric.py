"""The host fabric: shard hosts on ports behind one ingestion service.

:class:`FabricPool` is the socket counterpart of
:class:`~repro.workers.pool.WorkerPool` — the same surface (``handles``,
``handle_for``, ``check``, ``sync``, ``close``, ``move_shard``), so
:class:`~repro.service.ingest.IngestService` and every
:class:`~repro.workers.handles.RemoteAggregator` proxy work identically
over pipes or sockets.  The differences are operational:

* each worker is a **shard host**: a separate process started via
  ``repro serve-shard``, reached over TCP (today ``127.0.0.1``; the
  launch/connect split is exactly what a multi-machine deployment
  replaces with its own process manager);
* placement is an explicit, mutable :class:`~repro.net.placement.
  PlacementMap`, so shards can move between live hosts online;
* with ``supervise=True`` (the default) every handle journals its
  state-changing frames and a dead host is transparently restarted and
  replayed from its last capture
  (:class:`~repro.net.supervisor.Supervisor`) instead of poisoning the
  service with :class:`~repro.workers.handles.WorkerCrashedError`.

The launch contract with ``repro serve-shard --port 0``: the child
prints ``PORT <n>`` as its first stdout line once it is listening; the
parent reads that line (with a deadline), dials, and completes the same
``CONFIG`` → ``READY`` handshake the pipe pool uses.
"""

from __future__ import annotations

import os
import select
import subprocess
import sys
import time
from typing import Optional

from repro.chaos import points as _chaos
from repro.durable import records as rec
from repro.net.placement import PlacementMap, shard_ranges
from repro.net.supervisor import SupervisedHandle, Supervisor
from repro.net.transport import SocketConnection, connect
from repro.utils.logging import get_logger
from repro.workers import protocol as proto
from repro.workers.handles import WorkerHandle

_LOGGER = get_logger("net.fabric")


class HostProcess:
    """``multiprocessing.Process``-shaped adapter over a host Popen.

    :class:`~repro.workers.handles.WorkerHandle` probes liveness and
    escalates shutdown through this surface; giving the subprocess the
    same shape keeps every crash-handling path identical across pipes
    and sockets.
    """

    def __init__(self, popen: subprocess.Popen) -> None:
        self._popen = popen

    @property
    def pid(self) -> int:
        return self._popen.pid

    @property
    def exitcode(self) -> Optional[int]:
        return self._popen.poll()

    def is_alive(self) -> bool:
        return self._popen.poll() is None

    def join(self, timeout: Optional[float] = None) -> None:
        try:
            self._popen.wait(timeout)
        except subprocess.TimeoutExpired:
            pass

    def terminate(self) -> None:
        self._popen.terminate()

    def kill(self) -> None:
        self._popen.kill()

    def release(self) -> None:
        """Close the launch pipe once the process is reaped."""
        if self._popen.stdout is not None:
            try:
                self._popen.stdout.close()
            except OSError:  # pragma: no cover - double close
                pass


def launch_shard_host(
    worker_id: int,
    shard_range: tuple,
    *,
    host: str = "127.0.0.1",
    start_timeout: float = 120.0,
    python: Optional[str] = None,
) -> tuple[HostProcess, int]:
    """Start ``repro serve-shard`` and learn its ephemeral port."""
    import repro

    env = dict(os.environ)
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__
    )))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else src_dir + os.pathsep + existing
    )
    lo, hi = shard_range
    popen = subprocess.Popen(
        [
            python or sys.executable,
            "-m",
            "repro.cli",
            "serve-shard",
            "--host",
            host,
            "--port",
            "0",
            "--worker-id",
            str(worker_id),
            "--shards",
            str(lo),
            str(hi),
        ],
        stdout=subprocess.PIPE,
        env=env,
    )
    try:
        port = _read_port(popen, start_timeout)
    except BaseException:
        popen.kill()
        popen.wait()
        if popen.stdout is not None:
            popen.stdout.close()
        raise
    _LOGGER.debug(
        "shard host %d up: pid %d, port %d", worker_id, popen.pid, port
    )
    return HostProcess(popen), port


def _read_port(popen: subprocess.Popen, timeout: float) -> int:
    """Read the child's ``PORT <n>`` announcement with a deadline."""
    deadline = time.monotonic() + timeout
    stream = popen.stdout
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise TimeoutError(
                f"shard host pid {popen.pid} announced no port within "
                f"{timeout:.0f}s"
            )
        readable, _, _ = select.select([stream], [], [], remaining)
        if not readable:
            continue
        # The announcement is one short line written with a single
        # flushed print, so one readable event carries the whole line.
        line = stream.readline().decode("utf-8", "replace").strip()
        if not line:
            raise RuntimeError(
                f"shard host pid {popen.pid} exited before announcing "
                f"a port (exit code {popen.poll()})"
            )
        if line.startswith("PORT "):
            return int(line.split(None, 1)[1])


class FabricPool:
    """N shard hosts on localhost ports behind one ingestion service.

    Parameters
    ----------
    num_shards:
        The service's shard count (placement domain).
    num_hosts:
        Shard-host processes to launch (``1 <= num_hosts <=
        num_shards``).
    config_payload:
        JSON-serialisable service configuration, sent to every host as
        its first (``CONFIG``) frame — the same handshake as the pipe
        pool.
    host:
        Interface the shard hosts bind and the parent dials.
    supervise:
        Journal every host and transparently restart/replay a dead one
        (default).  ``False`` reproduces the pipe pool's fail-fast
        behaviour over sockets.
    checkpoint_every_claims:
        Supervision cadence: a host's journal is collapsed into a fresh
        state capture after this many journaled claims.
    start_timeout:
        Seconds to wait for each host to announce its port, accept the
        connection, and answer ``READY``.
    """

    def __init__(
        self,
        num_shards: int,
        num_hosts: int,
        config_payload: dict,
        *,
        host: str = "127.0.0.1",
        supervise: bool = True,
        checkpoint_every_claims: int = 50_000,
        start_timeout: float = 120.0,
    ) -> None:
        self._closed = False
        self._host = host
        self.start_timeout = start_timeout
        self.config_frame = rec.encode_json_payload(config_payload)
        self.placement = PlacementMap(num_shards, num_hosts)
        self.supervisor: Optional[Supervisor] = (
            Supervisor(
                self, checkpoint_every_claims=checkpoint_every_claims
            )
            if supervise
            else None
        )
        self.handles: list[WorkerHandle] = []
        try:
            for worker_id, (lo, hi) in enumerate(
                shard_ranges(num_shards, num_hosts)
            ):
                process, port = launch_shard_host(
                    worker_id,
                    (lo, hi),
                    host=host,
                    start_timeout=start_timeout,
                )
                conn = connect((host, port), timeout=start_timeout)
                if self.supervisor is not None:
                    handle: WorkerHandle = SupervisedHandle(
                        worker_id,
                        (lo, hi),
                        process,
                        conn,
                        supervisor=self.supervisor,
                    )
                else:
                    handle = WorkerHandle(worker_id, (lo, hi), process, conn)
                self.handles.append(handle)
                handle.send(rec.CONFIG, self.config_frame)
            # Handshake after every host is launched, so slow starts
            # overlap instead of serialising.
            for handle in self.handles:
                handle.expect(proto.READY, timeout=start_timeout)
        except BaseException:
            self.close()
            raise
        _LOGGER.debug(
            "fabric up: %d host(s) over %d shard(s) on %s",
            num_hosts,
            num_shards,
            host,
        )

    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return len(self.handles)

    def handle_for(self, shard_index: int) -> WorkerHandle:
        """The handle owning ``shard_index`` (placement lookup)."""
        return self.handles[self.placement.owner_of(shard_index)]

    def move_shard(self, shard_index: int, target_worker: int) -> int:
        """Reassign one shard in the placement; returns the old owner.

        Pure routing — the caller
        (:meth:`~repro.service.ingest.IngestService.rebalance_shard`)
        moves the campaign state first.
        """
        return self.placement.move(shard_index, target_worker)

    def check(self) -> None:
        """Probe every host (cheap; called per pump).

        Supervised handles absorb crashes by restarting the host;
        afterwards any host whose journal outgrew the claim budget is
        re-captured.  Hosts declared lost for good (re-homed by the
        supervisor) are skipped — probing a retired corpse would only
        re-detect the loss.
        """
        for handle in self.handles:
            if getattr(handle, "lost", False):
                continue
            handle.check()
        if self.supervisor is not None:
            self.supervisor.maybe_checkpoint()

    def sync(self) -> None:
        """Barrier across all hosts: every shipped frame is processed."""
        for handle in self.handles:
            if getattr(handle, "lost", False):
                continue
            handle.sync()

    def ping(self, worker_id: int, *, timeout: float = 5.0) -> float:
        """Heartbeat one host over a dedicated connection; returns RTT.

        Uses a fresh connection on purpose: an unsolicited frame on the
        data plane would be read as an error report, so liveness probes
        get their own stream (the shard host serves both concurrently).
        """
        handle = self.handles[worker_id]
        sock = connect(
            (self._host, self._port_of(handle)), timeout=timeout
        )
        try:
            start = time.perf_counter()
            proto.send_frame(sock, proto.PING, b"ping")
            if not sock.poll(timeout):
                raise TimeoutError(
                    f"host {worker_id} answered no PONG within {timeout}s"
                )
            rtype, payload = proto.recv_frame(sock)
            if rtype != proto.PONG:
                raise proto.ProtocolError(
                    f"host {worker_id} answered frame type {rtype} to a "
                    f"PING"
                )
            return time.perf_counter() - start
        finally:
            sock.close()

    def _port_of(self, handle: WorkerHandle) -> int:
        conn = handle._conn
        if not isinstance(conn, SocketConnection):  # pragma: no cover
            raise RuntimeError("handle has no socket connection")
        return conn._sock.getpeername()[1]

    # ------------------------------------------------------------------
    def respawn(self, handle) -> None:
        """Replace a dead host's process and socket (supervisor hook).

        Raises ``OSError`` when the replacement cannot be launched —
        including when the injectable ``proc.spawn`` fault point fires,
        which is how chaos drills model a machine that is gone for good
        (the supervisor's bounded retries exhaust and it re-homes the
        host's shards instead).
        """
        fault = _chaos.fire("proc.spawn")
        if fault is not None:
            raise OSError(
                f"chaos: spawn of shard host {handle.worker_id} refused "
                f"(#{fault.index})"
            )
        old = handle.process
        if old.is_alive():
            old.kill()
        old.join(10.0)
        old.release()
        process, port = launch_shard_host(
            handle.worker_id,
            handle.shard_range,
            host=self._host,
            start_timeout=self.start_timeout,
        )
        conn = connect((self._host, port), timeout=self.start_timeout)
        handle.reset(process, conn)

    # ------------------------------------------------------------------
    def close(self, timeout: float = 10.0) -> None:
        """Shut every host down cleanly; idempotent and crash-safe."""
        if self._closed:
            return
        self._closed = True
        if self.supervisor is not None:
            # No failover during teardown: a host that is already gone
            # is exactly what we want.
            self.supervisor.active = False
        for handle in self.handles:
            if not getattr(handle, "lost", False):
                handle.shutdown(timeout)
            release = getattr(handle.process, "release", None)
            if release is not None:
                release()

    def __enter__(self) -> "FabricPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
