"""repro.net — the multi-node shard fabric over real sockets.

The worker tier (:mod:`repro.workers`) already speaks a length-prefixed,
transport-independent frame protocol; this package crosses the machine
boundary with it:

* :mod:`repro.net.framing` — :class:`FrameReader`, the shared
  incremental decoder both pipes and sockets use;
* :mod:`repro.net.transport` — :class:`SocketListener` /
  :class:`SocketConnection`, the ``multiprocessing``-connection surface
  over TCP;
* :mod:`repro.net.host` — :class:`ShardHost`, the worker runtime behind
  an asyncio socket server (``repro serve-shard``);
* :mod:`repro.net.placement` — :class:`PlacementMap`, the mutable
  shard→host table;
* :mod:`repro.net.fabric` — :class:`FabricPool`, the worker-pool
  surface backed by shard-host processes on ports;
* :mod:`repro.net.supervisor` — :class:`Supervisor`, journal-based
  checkpoint/replay failover keeping recovered truths bitwise-identical.

Re-exports resolve lazily (PEP 562): the worker tier imports
:mod:`repro.net.framing`, and the fabric modules import the worker tier,
so eager re-imports here would close an import cycle.
"""

_EXPORTS = {
    "FabricPool": "repro.net.fabric",
    "launch_shard_host": "repro.net.fabric",
    "FrameReader": "repro.net.framing",
    "FramingError": "repro.net.framing",
    "ShardHost": "repro.net.host",
    "serve_shard": "repro.net.host",
    "PlacementMap": "repro.net.placement",
    "shard_ranges": "repro.net.placement",
    "HostJournal": "repro.net.supervisor",
    "Supervisor": "repro.net.supervisor",
    "SocketConnection": "repro.net.transport",
    "SocketListener": "repro.net.transport",
    "connect": "repro.net.transport",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.net' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
