"""Argument-validation helpers shared across the library.

All validators raise ``ValueError``/``TypeError`` with messages naming the
offending argument, so public API errors are actionable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def ensure_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (or non-negative when not strict)."""
    value = float(value)
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def ensure_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def ensure_in_range(
    value: float,
    name: str,
    low: Optional[float] = None,
    high: Optional[float] = None,
    *,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> float:
    """Validate that ``value`` lies inside the given (possibly open) range."""
    value = float(value)
    if low is not None:
        if low_inclusive and value < low:
            raise ValueError(f"{name} must be >= {low}, got {value}")
        if not low_inclusive and value <= low:
            raise ValueError(f"{name} must be > {low}, got {value}")
    if high is not None:
        if high_inclusive and value > high:
            raise ValueError(f"{name} must be <= {high}, got {value}")
        if not high_inclusive and value >= high:
            raise ValueError(f"{name} must be < {high}, got {value}")
    return value


def ensure_int(value: int, name: str, *, minimum: Optional[int] = None) -> int:
    """Validate that ``value`` is an integer, optionally bounded below."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    value = int(value)
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def ensure_1d(array: np.ndarray, name: str) -> np.ndarray:
    """Coerce to a 1-D float array, rejecting other shapes."""
    arr = np.asarray(array, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    return arr


def ensure_2d(array: np.ndarray, name: str) -> np.ndarray:
    """Coerce to a 2-D float array, rejecting other shapes."""
    arr = np.asarray(array, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got shape {arr.shape}")
    return arr


def ensure_same_shape(a: np.ndarray, b: np.ndarray, names: str) -> None:
    """Validate two arrays share a shape; ``names`` names the pair."""
    if np.shape(a) != np.shape(b):
        raise ValueError(
            f"{names} must have matching shapes, got {np.shape(a)} and {np.shape(b)}"
        )


def ensure_finite(array: np.ndarray, name: str) -> np.ndarray:
    """Validate all entries are finite (NaN/inf rejected)."""
    arr = np.asarray(array, dtype=float)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must contain only finite values")
    return arr
