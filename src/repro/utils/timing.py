"""Wall-clock timing helpers used by the efficiency experiments (Fig. 8)."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

T = TypeVar("T")


@dataclass
class Stopwatch:
    """Accumulating stopwatch.

    Example
    -------
    >>> sw = Stopwatch()
    >>> with sw.measure():
    ...     _ = sum(range(1000))
    >>> sw.total >= 0.0
    True
    """

    total: float = 0.0
    laps: list[float] = field(default_factory=list)

    @contextmanager
    def measure(self) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.total += elapsed
            self.laps.append(elapsed)

    @property
    def count(self) -> int:
        return len(self.laps)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.laps else 0.0

    def reset(self) -> None:
        self.total = 0.0
        self.laps.clear()


def timed(fn: Callable[..., T], *args, **kwargs) -> tuple[T, float]:
    """Run ``fn`` once and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start
