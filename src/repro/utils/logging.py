"""Library logging setup.

The library never configures the root logger; it exposes namespaced
loggers under ``repro.*`` and leaves handler policy to the application,
per standard library-logging etiquette.  ``enable_console_logging`` is a
convenience for scripts and the CLI.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under ``repro``.

    ``get_logger("crh")`` -> logger named ``repro.crh``; passing a name that
    already starts with ``repro`` returns it unchanged.
    """
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> logging.Handler:
    """Attach a stderr handler to the ``repro`` logger (idempotent).

    Returns the handler so callers can detach it later.
    """
    logger = logging.getLogger(_ROOT_NAME)
    for handler in logger.handlers:
        if getattr(handler, "_repro_console", False):
            logger.setLevel(level)
            return handler
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
    )
    handler._repro_console = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler
