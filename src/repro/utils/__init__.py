"""Shared low-level utilities: RNG handling, validation, logging, timing.

These helpers are deliberately small and dependency-free so that every
other subpackage can import them without creating cycles.
"""

from repro.utils.logging import get_logger
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.timing import Stopwatch, timed
from repro.utils.validation import (
    ensure_1d,
    ensure_2d,
    ensure_in_range,
    ensure_positive,
    ensure_probability,
)

__all__ = [
    "Stopwatch",
    "as_generator",
    "ensure_1d",
    "ensure_2d",
    "ensure_in_range",
    "ensure_positive",
    "ensure_probability",
    "get_logger",
    "spawn_generators",
    "timed",
]
