"""Deterministic random-number-generator plumbing.

Everything stochastic in this library (data generation, perturbation,
simulation) flows through :func:`as_generator` so that an experiment is a
pure function of its seed.  Users of the public API may pass:

* ``None`` — fresh OS-seeded entropy (non-reproducible),
* an ``int`` seed,
* a ``numpy.random.Generator`` (used as-is), or
* a ``numpy.random.SeedSequence``.

Sub-components that each need an independent stream (e.g. one stream per
simulated user) should use :func:`spawn_generators`, which derives
statistically independent child generators via ``SeedSequence.spawn`` —
the recommended NumPy practice for parallel streams.
"""

from __future__ import annotations

import hashlib
from typing import Sequence, Union

import numpy as np

RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]
"""Anything accepted as a ``random_state`` argument across the library."""


def as_generator(random_state: RandomState = None) -> np.random.Generator:
    """Coerce ``random_state`` into a ``numpy.random.Generator``.

    Parameters
    ----------
    random_state:
        ``None`` (fresh entropy), integer seed, ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged).

    Returns
    -------
    numpy.random.Generator
        A PCG64-backed generator.

    Raises
    ------
    TypeError
        If ``random_state`` is of an unsupported type.
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, np.random.SeedSequence):
        return np.random.default_rng(random_state)
    if isinstance(random_state, (int, np.integer)):
        if random_state < 0:
            raise ValueError(f"seed must be non-negative, got {random_state}")
        return np.random.default_rng(int(random_state))
    raise TypeError(
        "random_state must be None, an int, a numpy SeedSequence, or a "
        f"numpy Generator; got {type(random_state).__name__}"
    )


def spawn_generators(
    random_state: RandomState, count: int
) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators.

    Used wherever per-entity randomness must be independent — e.g. each
    simulated user samples a private noise variance from their own stream,
    mirroring the paper's "each user samples independent noise" design.

    Parameters
    ----------
    random_state:
        Parent source of entropy (see :data:`RandomState`).
    count:
        Number of child generators; must be non-negative.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(random_state, np.random.SeedSequence):
        children = random_state.spawn(count)
        return [np.random.default_rng(c) for c in children]
    if isinstance(random_state, np.random.Generator):
        # Spawn from the generator's underlying bit generator seed sequence.
        children = random_state.bit_generator.seed_seq.spawn(count)
        return [np.random.default_rng(c) for c in children]
    seq = np.random.SeedSequence(random_state)
    return [np.random.default_rng(c) for c in seq.spawn(count)]


def derive_seed(random_state: RandomState, *tokens: Union[int, str]) -> int:
    """Derive a stable integer sub-seed from a parent seed and tokens.

    Useful for naming streams after logical roles ("perturbation",
    "dataset") so that adding a new consumer of randomness does not shift
    every downstream draw.  Token hashing uses blake2s, NOT Python's
    built-in ``hash`` — the latter is salted per process, which would
    silently break cross-process reproducibility of experiments.
    """
    base = 0 if random_state is None else random_state
    if isinstance(base, np.random.Generator):
        base = int(base.bit_generator.seed_seq.entropy or 0)
    if isinstance(base, np.random.SeedSequence):
        base = int(base.entropy or 0)
    mixed = np.random.SeedSequence(
        [int(base) % (2**63)] + [_stable_token_hash(t) for t in tokens]
    )
    return int(mixed.generate_state(1, dtype=np.uint64)[0] % (2**63))


def _stable_token_hash(token: Union[int, str]) -> int:
    """Process-independent 63-bit hash of a seed-derivation token."""
    if isinstance(token, (int, np.integer)):
        return int(token) % (2**63)
    digest = hashlib.blake2s(str(token).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") % (2**63)


def fixed_sequence_generator(values: Sequence[float]) -> np.random.Generator:
    """Return a Generator-like object replaying ``values`` for ``normal``.

    Only used in tests that need exact control over sampled noise; kept in
    the library so test helpers do not duplicate it.
    """

    class _Replay:  # pragma: no cover - trivial container
        def __init__(self, vals: Sequence[float]) -> None:
            self._vals = list(vals)
            self._idx = 0

        def normal(self, loc=0.0, scale=1.0, size=None):
            if size is None:
                out = self._vals[self._idx]
                self._idx += 1
                return loc + scale * out
            n = int(np.prod(size))
            chunk = self._vals[self._idx : self._idx + n]
            self._idx += n
            return loc + scale * np.asarray(chunk).reshape(size)

    return _Replay(values)  # type: ignore[return-value]
