"""Capped exponential backoff with deterministic jitter.

Every reconnect loop in the codebase used to roll its own retry
cadence — a fixed 50 ms dial loop in :func:`repro.net.transport.connect`
and a hand-doubled sleep in the replication sender.  Synchronized fixed
intervals are exactly how reconnect storms happen (every link retries
on the same beat), and undeterministic jitter is exactly how chaos
drills stop replaying.  :class:`Backoff` fixes both: delays grow
exponentially to a cap, each delay carries full jitter (uniform in
``[base, computed]``, the "decorrelated-ish" variant that keeps early
retries fast), and the jitter stream is a seeded
``numpy.random.Generator`` — same seed, same retry timeline, every run.

Consumers name their stream with :func:`repro.utils.rng.derive_seed`
tokens (``derive_seed(seed, "repl-link", index)``) so two links never
share a beat yet each is individually reproducible.
"""

from __future__ import annotations

from typing import Iterator

from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import ensure_positive


class Backoff:
    """One retry schedule: exponential growth, cap, seeded jitter.

    Parameters
    ----------
    base:
        First (and minimum) delay in seconds.
    factor:
        Growth factor applied to the un-jittered envelope per attempt.
    cap:
        Upper bound on any delay.
    random_state:
        Seed for the jitter stream (see :data:`repro.utils.rng.
        RandomState`).  Passing an int makes the schedule a pure
        function of the seed — what lets a chaos drill replay a
        reconnect timeline exactly.  ``None`` uses fresh entropy.
    """

    def __init__(
        self,
        *,
        base: float = 0.05,
        factor: float = 2.0,
        cap: float = 2.0,
        random_state: RandomState = None,
    ) -> None:
        ensure_positive(base, "base")
        ensure_positive(cap, "cap")
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor}")
        if cap < base:
            raise ValueError(f"cap {cap} is below base {base}")
        self._base = float(base)
        self._factor = float(factor)
        self._cap = float(cap)
        self._rng = as_generator(random_state)
        self._attempt = 0

    @property
    def attempt(self) -> int:
        """Delays handed out since construction or the last reset."""
        return self._attempt

    def next(self) -> float:
        """The next delay in seconds (advances the schedule)."""
        envelope = min(
            self._cap, self._base * self._factor**self._attempt
        )
        self._attempt += 1
        if envelope <= self._base:
            return self._base
        # Full jitter over [base, envelope]: retries stay fast early,
        # spread out late, and never synchronize across streams.
        return float(self._rng.uniform(self._base, envelope))

    def reset(self) -> None:
        """Back to the first attempt (call after a success)."""
        self._attempt = 0


def backoff_delays(
    *,
    base: float = 0.05,
    factor: float = 2.0,
    cap: float = 2.0,
    random_state: RandomState = None,
) -> Iterator[float]:
    """Endless iterator of :class:`Backoff` delays (loop sugar)."""
    schedule = Backoff(
        base=base, factor=factor, cap=cap, random_state=random_state
    )
    while True:
        yield schedule.next()
