"""Utility-privacy trade-off (paper Section 4.3, Theorem 4.9 / Eq. 19).

A noise level ``c`` simultaneously delivers (alpha, beta)-utility and
(epsilon, delta)-LDP iff it lies in the window

    [ c_min (privacy, Thm 4.8) ,  c_max (utility, Thm 4.3) ].

:func:`noise_level_window` computes the window; :func:`matched_lambda1`
solves Eq. 19 — the ``lambda1`` at which the window closes to a single
point (the knife-edge trade-off the paper discusses); and
:func:`choose_noise_level` picks a deployable ``c`` (geometric midpoint of
a non-empty window).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from scipy import optimize

from repro.theory.privacy import min_noise_level
from repro.theory.utility import alpha_threshold, max_noise_level
from repro.utils.validation import (
    ensure_in_range,
    ensure_int,
    ensure_positive,
)


@dataclass(frozen=True)
class TradeoffWindow:
    """The feasible noise-level interval for a parameter set."""

    c_min: float
    c_max: float
    lambda1: float
    alpha: float
    beta: float
    epsilon: float
    delta: float
    num_users: int

    @property
    def feasible(self) -> bool:
        """True when some noise level satisfies both theorems."""
        return self.c_min <= self.c_max and self.c_max > 0

    @property
    def width(self) -> float:
        return max(0.0, self.c_max - self.c_min)

    def contains(self, c: float) -> bool:
        return self.feasible and self.c_min <= c <= self.c_max


def noise_level_window(
    lambda1: float,
    alpha: float,
    beta: float,
    num_users: int,
    epsilon: float,
    delta: float,
    *,
    b: float = 3.0,
    eta: float = 0.95,
) -> TradeoffWindow:
    """Theorem 4.9: the interval of c meeting both guarantees.

    ``c_min`` comes from Theorem 4.8 (privacy), ``c_max`` from Theorem
    4.3 (utility).  ``feasible`` is False when privacy demands more noise
    than utility can absorb.
    """
    c_max = max_noise_level(lambda1, alpha, beta, num_users)
    c_min = min_noise_level(lambda1, epsilon, delta, b=b, eta=eta)
    return TradeoffWindow(
        c_min=c_min,
        c_max=c_max,
        lambda1=lambda1,
        alpha=alpha,
        beta=beta,
        epsilon=epsilon,
        delta=delta,
        num_users=num_users,
    )


def matched_lambda1(
    alpha: float,
    beta: float,
    num_users: int,
    epsilon: float,
    delta: float,
    *,
    b: float = 3.0,
    eta: float = 0.95,
    bracket: tuple[float, float] = (1e-3, 1e6),
) -> float:
    """Solve Eq. 19 for ``lambda1``: the data quality at which the
    utility upper bound equals the privacy lower bound.

    ``C(lambda1) = K1 * lambda1 - 2`` is increasing in ``lambda1`` while
    the privacy bound ``K2 / lambda1`` is decreasing, so a unique
    crossing exists whenever the bracket straddles it (Brent's method).

    Raises ``ValueError`` when no crossing lies inside ``bracket``.
    """
    ensure_positive(alpha, "alpha")
    ensure_in_range(beta, "beta", 0.0, 1.0)
    ensure_int(num_users, "num_users", minimum=1)
    ensure_positive(epsilon, "epsilon")
    ensure_in_range(delta, "delta", 0.0, 1.0, low_inclusive=False, high_inclusive=False)

    def gap(lambda1: float) -> float:
        return max_noise_level(lambda1, alpha, beta, num_users) - min_noise_level(
            lambda1, epsilon, delta, b=b, eta=eta
        )

    lo, hi = bracket
    g_lo, g_hi = gap(lo), gap(hi)
    if g_lo > 0 and g_hi > 0:
        raise ValueError(
            "window already open across the whole bracket; no knife-edge "
            "lambda1 inside it"
        )
    if g_lo < 0 and g_hi < 0:
        raise ValueError(
            "window closed across the whole bracket; requested guarantees "
            "are infeasible for any lambda1 in it"
        )
    return float(optimize.brentq(gap, lo, hi))


def choose_noise_level(window: TradeoffWindow) -> Optional[float]:
    """Pick a deployable c from a window: geometric midpoint, or None.

    The geometric mean balances the multiplicative slack toward each
    bound; for a degenerate (single-point) window it returns that point.
    """
    if not window.feasible:
        return None
    lo = max(window.c_min, 1e-12)
    return math.sqrt(lo * window.c_max)


def alpha_feasibility_floor(lambda1: float, c: float) -> float:
    """Convenience re-export of the utility alpha threshold at (lambda1, c).

    Theorem 4.9's quantifier is "forall alpha > alpha_threshold"; callers
    building parameter grids use this to stay in the valid region.
    """
    return alpha_threshold(lambda1, c)


def lambda2_for_noise_level(lambda1: float, c: float) -> float:
    """Map a chosen noise level ``c`` back to the mechanism knob:
    ``lambda2 = lambda1 / c`` (since c = lambda1/lambda2)."""
    ensure_positive(lambda1, "lambda1")
    ensure_positive(c, "c")
    return lambda1 / c
