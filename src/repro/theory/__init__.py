"""Theoretical results of the paper (Section 4 and appendices).

Every theorem, lemma, and bound is implemented as an executable function
with its derivation documented, and cross-checked against numerical
integration or Monte Carlo in the test suite.
"""

from repro.theory.distributions import (
    PairDeviationDistribution,
    expected_pairwise_gap,
    pair_deviation_from_noise_level,
)
from repro.theory.lemmas import (
    chebyshev_sum_gap,
    gaussian_tail_bound,
    gaussian_tail_probability_exact,
    mean_absolute_gaussian,
    weighted_average_bound_holds,
)
from repro.theory.privacy import (
    epsilon_from_noise_level,
    min_noise_level,
    min_noise_level_from_sensitivity,
    min_noise_level_paper,
)
from repro.theory.tradeoff import (
    TradeoffWindow,
    alpha_feasibility_floor,
    choose_noise_level,
    lambda2_for_noise_level,
    matched_lambda1,
    noise_level_window,
)
from repro.theory.utility import (
    alpha_threshold,
    alpha_threshold_c1,
    alpha_threshold_paper,
    max_noise_level,
    min_alpha_for_beta,
    satisfies_utility,
    utility_failure_bound,
    utility_failure_bound_c1,
)

__all__ = [
    "PairDeviationDistribution",
    "TradeoffWindow",
    "alpha_feasibility_floor",
    "alpha_threshold",
    "alpha_threshold_c1",
    "alpha_threshold_paper",
    "chebyshev_sum_gap",
    "choose_noise_level",
    "epsilon_from_noise_level",
    "expected_pairwise_gap",
    "gaussian_tail_bound",
    "gaussian_tail_probability_exact",
    "lambda2_for_noise_level",
    "matched_lambda1",
    "max_noise_level",
    "mean_absolute_gaussian",
    "min_alpha_for_beta",
    "min_noise_level",
    "min_noise_level_from_sensitivity",
    "min_noise_level_paper",
    "noise_level_window",
    "pair_deviation_from_noise_level",
    "satisfies_utility",
    "utility_failure_bound",
    "utility_failure_bound_c1",
    "weighted_average_bound_holds",
]
