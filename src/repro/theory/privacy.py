"""Privacy analysis (paper Section 4.2: Lemma 4.7 and Theorem 4.8).

Theorem 4.8 lower-bounds the noise level ``c = lambda1/lambda2`` needed
for (epsilon, delta)-LDP.  The chain is:

1. Eq. 18: with realised noise variance ``y``, the Gaussian density-ratio
   factor is ``exp(Delta_s^2 / (2y))``; it is at most ``e^eps`` iff
   ``y >= Delta_s^2 / (2 eps)``.
2. The variance is Exp(lambda2), so
   ``Pr{y >= Delta_s^2/(2 eps)} = exp(-lambda2 Delta_s^2/(2 eps))``
   must be >= 1 - delta, giving
   ``c >= lambda1 Delta_s^2 / (2 eps ln(1/(1-delta)))``.
3. Lemma 4.7 bounds ``Delta_s <= gamma_s / lambda1`` with
   ``gamma_s = b sqrt(2 ln(1/(1-eta)))``, giving
   ``c >= gamma_s^2 / (2 eps lambda1 ln(1/(1-delta)))``.

The printed theorem omits ``eps`` (its ``eps = 1`` specialisation); both
forms are exposed.  See DESIGN.md "Known typos".
"""

from __future__ import annotations

import math

from repro.privacy.sensitivity import gamma_factor
from repro.utils.validation import ensure_in_range, ensure_positive


def min_noise_level_from_sensitivity(
    lambda1: float, sensitivity: float, epsilon: float, delta: float
) -> float:
    """Step-2 bound: ``c >= lambda1 Delta^2 / (2 eps ln(1/(1-delta)))``."""
    ensure_positive(lambda1, "lambda1")
    ensure_positive(sensitivity, "sensitivity", strict=False)
    ensure_positive(epsilon, "epsilon")
    ensure_in_range(delta, "delta", 0.0, 1.0, low_inclusive=False, high_inclusive=False)
    return lambda1 * sensitivity**2 / (2.0 * epsilon * math.log(1.0 / (1.0 - delta)))


def min_noise_level(
    lambda1: float,
    epsilon: float,
    delta: float,
    *,
    b: float = 3.0,
    eta: float = 0.95,
) -> float:
    """Theorem 4.8 bound with Lemma 4.7's sensitivity:

    ``c >= gamma_s^2 / (2 eps lambda1 ln(1/(1-delta)))`` where
    ``gamma_s = b sqrt(2 ln(1/(1-eta)))``.

    Decreasing in ``lambda1`` (better data quality needs less noise) and
    in ``epsilon``/``delta`` slack (weaker privacy needs less noise) —
    matching the paper's discussion after the theorem.
    """
    ensure_positive(lambda1, "lambda1")
    ensure_positive(epsilon, "epsilon")
    ensure_in_range(delta, "delta", 0.0, 1.0, low_inclusive=False, high_inclusive=False)
    gamma = gamma_factor(b, eta)
    return gamma**2 / (2.0 * epsilon * lambda1 * math.log(1.0 / (1.0 - delta)))


def min_noise_level_paper(
    lambda1: float,
    delta: float,
    *,
    b: float = 3.0,
    eta: float = 0.95,
) -> float:
    """The bound exactly as printed in Theorem 4.8 (epsilon omitted).

    Equals :func:`min_noise_level` evaluated at ``epsilon = 1``.
    """
    return min_noise_level(lambda1, 1.0, delta, b=b, eta=eta)


def epsilon_from_noise_level(
    lambda1: float,
    c: float,
    delta: float,
    *,
    b: float = 3.0,
    eta: float = 0.95,
) -> float:
    """Invert Theorem 4.8: the epsilon achieved at noise level ``c``.

    ``eps = gamma_s^2 / (2 c lambda1 ln(1/(1-delta)))``.  Used to label
    experiment sweeps by their theoretical epsilon.
    """
    ensure_positive(c, "c")
    gamma = gamma_factor(b, eta)
    return gamma**2 / (2.0 * c * lambda1 * math.log(1.0 / (1.0 - delta)))
