"""Distribution of the pairwise deviation scale ``Y`` (proof of Thm 4.3).

In the utility proof the key random variable is

    Y_{s,s'} = sqrt(sigma_s^2 + sigma_{s'}^2 + delta_{s'}^2),

where the two error variances are i.i.d. ``Exp(lambda1)`` and the noise
variance is ``Exp(lambda2)`` (independent).  Writing ``T = Y^2``, ``T`` is
the sum of a ``Gamma(2, 1/lambda1)`` and an ``Exp(lambda2)`` variable.

Closed forms implemented here (all cross-checked against numerical
integration and Monte Carlo in ``tests/theory/``):

* density ``f_T`` by convolution; for ``lambda1 != lambda2``:

      f_T(t) = A [ e^{-l2 t} - e^{-l1 t} - (l1 - l2) t e^{-l1 t} ],
      A = l1^2 l2 / (l1 - l2)^2,

  which, via ``h(y) = 2 y f_T(y^2)``, reproduces the paper's printed
  h(y) exactly;
* for ``lambda1 == lambda2`` (the paper's Appendix A case):
  ``T ~ Gamma(3, 1/lambda1)``, ``h(y) = lambda1^3 y^5 e^{-lambda1 y^2}``;
* moments:  ``E[T] = 2/l1 + 1/l2`` (the paper's E(Y^2)),
  ``E[sqrt(T)]`` from termwise ``integral sqrt(t) e^{-l t} dt =
  sqrt(pi) / (2 l^{3/2})`` and ``integral t^{3/2} e^{-l t} dt =
  3 sqrt(pi) / (4 l^{5/2})``.

The printed E(Y) expression in the paper is typographically garbled; we
use the derivation above (see DESIGN.md, "Known typos").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import integrate

from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import ensure_positive

#: relative |lambda1 - lambda2| below which the equal-rate (c = 1)
#: formulas are used to avoid catastrophic cancellation.
_EQUAL_RATE_RTOL = 1e-6


@dataclass(frozen=True)
class PairDeviationDistribution:
    """The distribution of ``Y = sqrt(T)`` for given ``(lambda1, lambda2)``."""

    lambda1: float
    lambda2: float

    def __post_init__(self) -> None:
        ensure_positive(self.lambda1, "lambda1")
        ensure_positive(self.lambda2, "lambda2")

    # -- regime ---------------------------------------------------------
    @property
    def is_equal_rate(self) -> bool:
        """True when lambda1 ~= lambda2 (noise level c ~= 1)."""
        return (
            abs(self.lambda1 - self.lambda2)
            <= _EQUAL_RATE_RTOL * max(self.lambda1, self.lambda2)
        )

    @property
    def noise_level(self) -> float:
        """``c = (1/lambda2) / (1/lambda1) = lambda1 / lambda2``."""
        return self.lambda1 / self.lambda2

    # -- densities ------------------------------------------------------
    def pdf_t(self, t) -> np.ndarray:
        """Density of ``T = Y^2`` at ``t`` (vectorised)."""
        t = np.asarray(t, dtype=float)
        out = np.zeros_like(t)
        pos = t > 0
        l1, l2 = self.lambda1, self.lambda2
        if self.is_equal_rate:
            # T ~ Gamma(3, 1/l1):  f(t) = l1^3 t^2 e^{-l1 t} / 2
            out[pos] = 0.5 * l1**3 * t[pos] ** 2 * np.exp(-l1 * t[pos])
            return out
        a = l1**2 * l2 / (l1 - l2) ** 2
        tp = t[pos]
        out[pos] = a * (
            np.exp(-l2 * tp)
            - np.exp(-l1 * tp)
            - (l1 - l2) * tp * np.exp(-l1 * tp)
        )
        return out

    def pdf_y(self, y) -> np.ndarray:
        """Density of ``Y`` at ``y``: ``h(y) = 2 y f_T(y^2)``.

        Matches the paper's h(y) for c != 1 and the Appendix A
        ``lambda1^3 y^5 exp(-lambda1 y^2)`` for c = 1.
        """
        y = np.asarray(y, dtype=float)
        out = np.zeros_like(y)
        pos = y > 0
        out[pos] = 2.0 * y[pos] * self.pdf_t(y[pos] ** 2)
        return out

    # -- moments --------------------------------------------------------
    def mean_square(self) -> float:
        """``E[Y^2] = 2/lambda1 + 1/lambda2`` (paper's E(Y^2))."""
        return 2.0 / self.lambda1 + 1.0 / self.lambda2

    def mean(self) -> float:
        """``E[Y]`` in closed form (derivation in module docstring)."""
        l1, l2 = self.lambda1, self.lambda2
        if self.is_equal_rate:
            # E[sqrt(T)], T ~ Gamma(3, 1/l1):
            # Gamma(3.5)/Gamma(3) / sqrt(l1) = (15/16) sqrt(pi / l1)
            return 15.0 * math.sqrt(math.pi) / (16.0 * math.sqrt(l1))
        a = l1**2 * l2 / (l1 - l2) ** 2
        term_exp = 0.5 * math.sqrt(math.pi) * (l2**-1.5 - l1**-1.5)
        term_t = (l1 - l2) * 0.75 * math.sqrt(math.pi) * l1**-2.5
        return a * (term_exp - term_t)

    def variance(self) -> float:
        """``Var[Y] = E[Y^2] - E[Y]^2``."""
        return self.mean_square() - self.mean() ** 2

    # -- numeric cross-checks ------------------------------------------
    def mean_numeric(self) -> float:
        """``E[Y]`` by adaptive quadrature over ``h(y)`` (for testing)."""
        val, _err = integrate.quad(
            lambda y: y * float(self.pdf_y(np.array([y]))[0]), 0.0, np.inf,
            limit=200,
        )
        return val

    def mean_square_numeric(self) -> float:
        """``E[Y^2]`` by quadrature (for testing)."""
        val, _err = integrate.quad(
            lambda y: y**2 * float(self.pdf_y(np.array([y]))[0]), 0.0, np.inf,
            limit=200,
        )
        return val

    def normalisation_numeric(self) -> float:
        """Integral of ``h`` over (0, inf); should be 1."""
        val, _err = integrate.quad(
            lambda y: float(self.pdf_y(np.array([y]))[0]), 0.0, np.inf,
            limit=200,
        )
        return val

    # -- sampling -------------------------------------------------------
    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        """Monte Carlo draws of ``Y`` (two error draws + one noise draw)."""
        rng = as_generator(random_state)
        sigma_sq_a = rng.exponential(scale=1.0 / self.lambda1, size=size)
        sigma_sq_b = rng.exponential(scale=1.0 / self.lambda1, size=size)
        delta_sq = rng.exponential(scale=1.0 / self.lambda2, size=size)
        return np.sqrt(sigma_sq_a + sigma_sq_b + delta_sq)


def pair_deviation_from_noise_level(
    lambda1: float, c: float
) -> PairDeviationDistribution:
    """Build the Y distribution from ``(lambda1, c)`` with ``c = l1/l2``."""
    ensure_positive(lambda1, "lambda1")
    ensure_positive(c, "c")
    return PairDeviationDistribution(lambda1=lambda1, lambda2=lambda1 / c)


def expected_pairwise_gap(lambda1: float, c: float) -> float:
    """``sqrt(2/pi) * E[Y]`` — the mean of ``|x^s_n - xhat^{s'}_n|``.

    Eq. 10 of the paper: for Gaussian deviations the mean absolute
    difference is ``sqrt(2/pi)`` times the deviation scale ``Y``.
    """
    dist = pair_deviation_from_noise_level(lambda1, c)
    return math.sqrt(2.0 / math.pi) * dist.mean()
