"""Supporting lemmas from the paper, implemented as checkable functions.

* **Lemma 4.4** — for weights ``w_s = f(t_s)`` with ``f`` monotonically
  decreasing, the weighted average of the ``t_s`` never exceeds their
  unweighted average.  This is the pivot of the utility proof (it lets
  the weighted double sum be bounded by the uniform one) and the formal
  version of "truth discovery down-weights noisy users".  We expose both
  the inequality check and the Chebyshev-sum decomposition used in
  Appendix B, and property-test the lemma with hypothesis.

* **Gaussian tail inequality** (used by Lemma 4.7):
  ``Pr{|X| > b sqrt(2) sigma} <= 2 exp(-b^2/2) / b`` for
  ``X ~ N(0, 2 sigma^2)``.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.utils.validation import ensure_1d, ensure_positive


def weighted_average_bound_holds(
    t: np.ndarray, f: Callable[[np.ndarray], np.ndarray], *, atol: float = 1e-9
) -> bool:
    """Check Lemma 4.4 for concrete values: weighted avg <= plain avg.

    Parameters
    ----------
    t:
        Per-user loss values ``t_s`` (non-negative not required).
    f:
        Monotonically decreasing weight function; must return positive
        weights for the check to be meaningful.
    """
    t = ensure_1d(t, "t")
    w = np.asarray(f(t), dtype=float)
    if w.shape != t.shape:
        raise ValueError("f must return one weight per t entry")
    if np.any(w < 0) or w.sum() <= 0:
        raise ValueError("weights must be non-negative with positive sum")
    weighted = float((w * t).sum() / w.sum())
    plain = float(t.mean())
    return weighted <= plain + atol


def chebyshev_sum_gap(t: np.ndarray, w: np.ndarray) -> float:
    """Appendix B's quantity ``S * sum w_s t_s - sum t_s * sum w_s``.

    Lemma 4.4 asserts this is <= 0 whenever ``w`` is produced by a
    decreasing function of ``t`` (a Chebyshev-sum inequality).  Returned
    raw so tests can assert the sign.
    """
    t = ensure_1d(t, "t")
    w = ensure_1d(w, "w")
    if t.shape != w.shape:
        raise ValueError("t and w must have the same length")
    s = len(t)
    return float(s * (w * t).sum() - t.sum() * w.sum())


def gaussian_tail_bound(b: float) -> float:
    """``2 exp(-b^2/2) / b`` — the tail mass bound used in Lemma 4.7."""
    ensure_positive(b, "b")
    return 2.0 * math.exp(-(b**2) / 2.0) / b


def gaussian_tail_probability_exact(b: float) -> float:
    """Exact ``Pr{|Z| > b}`` for standard normal Z (for bound-tightness
    tests): ``2 * (1 - Phi(b))``."""
    ensure_positive(b, "b")
    return float(2.0 * (1.0 - 0.5 * (1.0 + math.erf(b / math.sqrt(2.0)))))


def mean_absolute_gaussian(scale: float) -> float:
    """Eq. 9: ``E|X| = sqrt(2/pi) * scale`` for ``X ~ N(0, scale^2)``."""
    ensure_positive(scale, "scale", strict=False)
    return math.sqrt(2.0 / math.pi) * scale
