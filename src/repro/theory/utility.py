"""Utility analysis (paper Section 4.1: Definition 4.2, Theorem 4.3, A.1).

(alpha, beta)-utility (Def. 4.2): the probability that perturbation moves
the aggregate by at least ``alpha`` (mean absolute over objects) is at
most ``beta``.

Theorem 4.3 gives two quantities, both implemented here:

* ``max_noise_level`` — the largest noise level
  ``c = E[noise var] / E[error var]`` for which (alpha, beta)-utility is
  guaranteed:

      C = lambda1 * sqrt(pi) * ( alpha^2 beta S^2 / (4 sqrt(2))
                                 + alpha^2 sqrt(pi) / 8
                                 + alpha + 2 / sqrt(pi) ) - 2        (Eq. 15)

* ``alpha_threshold`` — the smallest alpha for which the guarantee can
  hold at a given ``c``.  The proof requires
  ``alpha > 2 sqrt(2/pi) * E[Y]``; we compute E[Y] from the derived
  closed form (see :mod:`repro.theory.distributions`).  The paper's
  printed alpha_{lambda,c} expression is kept as
  ``alpha_threshold_paper`` for reference — it is real-valued only for
  c < 1 and suffers from the OCR issues documented in DESIGN.md.

Also implemented: the explicit Chebyshev bound on the failure
probability (Eq. 13) and the Appendix A special case ``c = 1``.
"""

from __future__ import annotations

import math

from repro.theory.distributions import PairDeviationDistribution
from repro.utils.validation import (
    ensure_in_range,
    ensure_int,
    ensure_positive,
)


def max_noise_level(
    lambda1: float, alpha: float, beta: float, num_users: int
) -> float:
    """Theorem 4.3's upper bound ``C_{lambda1, alpha, beta, S}`` (Eq. 15).

    The largest noise level ``c`` at which (alpha, beta)-utility is still
    guaranteed.  Monotonically increasing in ``alpha``, ``beta``, ``S``
    and ``lambda1`` — all four monotonicities are property-tested.
    """
    ensure_positive(lambda1, "lambda1")
    ensure_positive(alpha, "alpha")
    ensure_in_range(beta, "beta", 0.0, 1.0)
    ensure_int(num_users, "num_users", minimum=1)
    s = float(num_users)
    inner = (
        alpha**2 * beta * s**2 / (4.0 * math.sqrt(2.0))
        + alpha**2 * math.sqrt(math.pi) / 8.0
        + alpha
        + 2.0 / math.sqrt(math.pi)
    )
    return lambda1 * math.sqrt(math.pi) * inner - 2.0


def alpha_threshold(lambda1: float, c: float) -> float:
    """Smallest admissible ``alpha`` at noise level ``c``.

    From the proof of Theorem 4.3: the deterministic part of the bound
    forces ``alpha > 2 sqrt(2/pi) E[Y]``, with ``Y`` the pairwise
    deviation scale at ``(lambda1, lambda2 = lambda1/c)``.
    """
    ensure_positive(lambda1, "lambda1")
    ensure_positive(c, "c")
    dist = PairDeviationDistribution(lambda1=lambda1, lambda2=lambda1 / c)
    return 2.0 * math.sqrt(2.0 / math.pi) * dist.mean()


def alpha_threshold_paper(lambda1: float, c: float) -> float:
    """The paper's printed ``alpha_{lambda, c}`` (Theorem 4.3 statement).

    ``(2 sqrt(2) / sqrt(lambda1 (1 - c))) *
    (3/4 - c (c + sqrt(c) + 1) / (sqrt(2) (1 + sqrt(c))))``

    Only real-valued for ``c < 1``; retained verbatim for comparison
    with :func:`alpha_threshold`.  Raises ``ValueError`` for c >= 1.
    """
    ensure_positive(lambda1, "lambda1")
    ensure_positive(c, "c")
    if c >= 1.0:
        raise ValueError(
            "the paper's printed alpha threshold is real-valued only for "
            f"c < 1 (got c={c}); use alpha_threshold() instead"
        )
    lead = 2.0 * math.sqrt(2.0) / math.sqrt(lambda1 * (1.0 - c))
    body = 0.75 - c * (c + math.sqrt(c) + 1.0) / (
        math.sqrt(2.0) * (1.0 + math.sqrt(c))
    )
    return lead * body


def alpha_threshold_c1(lambda1: float) -> float:
    """Appendix A threshold for ``c = 1``: ``(15/8) sqrt(2 / lambda1)``.

    Derived from ``E[Y] = (15/16) sqrt(pi/lambda1)`` via
    ``alpha > 2 sqrt(2/pi) E[Y]``; the printed Theorem A.1 constant
    drops a division by sqrt(lambda1) (see DESIGN.md).
    """
    ensure_positive(lambda1, "lambda1")
    return (15.0 / 8.0) * math.sqrt(2.0 / lambda1)


def utility_failure_bound(
    lambda1: float, c: float, alpha: float, num_users: int
) -> float:
    """Eq. 13's explicit bound on ``Pr{mean |x* - xhat*| >= alpha}``.

    ``16 sqrt(2/pi) Var(Y) / (S^2 alpha^2)`` plus 1 if the deterministic
    condition ``2 sqrt(2/pi) E[Y] < alpha`` fails (the indicator term of
    the proof: once the exponential distributions are fixed, that
    probability is either 0 or 1).  Clipped to [0, 1].
    """
    ensure_positive(alpha, "alpha")
    ensure_int(num_users, "num_users", minimum=1)
    dist = PairDeviationDistribution(lambda1=lambda1, lambda2=lambda1 / c)
    chebyshev = (
        16.0
        * math.sqrt(2.0 / math.pi)
        * dist.variance()
        / (num_users**2 * alpha**2)
    )
    indicator = 0.0 if alpha > 2.0 * math.sqrt(2.0 / math.pi) * dist.mean() else 1.0
    return min(1.0, chebyshev + indicator)


def utility_failure_bound_c1(
    lambda1: float, alpha: float, num_users: int
) -> float:
    """Appendix A (Eq. 21) specialisation of :func:`utility_failure_bound`.

    With ``c = 1``: ``Var(Y) = (3 - 225 pi / 256) / lambda1``, so the
    Chebyshev term is ``16 sqrt(2/pi) (3 - 225 pi/256) / (lambda1 S^2
    alpha^2)`` — which tends to 0 as S grows, giving Theorem A.1's
    asymptotic utility.
    """
    ensure_positive(lambda1, "lambda1")
    ensure_positive(alpha, "alpha")
    ensure_int(num_users, "num_users", minimum=1)
    var_y = (3.0 - 225.0 * math.pi / 256.0) / lambda1
    chebyshev = 16.0 * math.sqrt(2.0 / math.pi) * var_y / (
        num_users**2 * alpha**2
    )
    indicator = 0.0 if alpha > alpha_threshold_c1(lambda1) else 1.0
    return min(1.0, chebyshev + indicator)


def satisfies_utility(
    lambda1: float,
    c: float,
    alpha: float,
    beta: float,
    num_users: int,
) -> bool:
    """Check Theorem 4.3's two conditions for (alpha, beta)-utility.

    True when ``alpha`` exceeds the threshold at ``(lambda1, c)`` and
    ``c`` does not exceed ``C_{lambda1, alpha, beta, S}``.
    """
    ensure_in_range(beta, "beta", 0.0, 1.0)
    if alpha <= alpha_threshold(lambda1, c):
        return False
    return c <= max_noise_level(lambda1, alpha, beta, num_users)


def min_alpha_for_beta(
    lambda1: float, c: float, beta: float, num_users: int
) -> float:
    """Smallest alpha achieving failure bound <= beta at noise level c.

    Combines the deterministic threshold with the Chebyshev term:
    ``alpha >= max(threshold, sqrt(16 sqrt(2/pi) Var(Y) / (S^2 beta)))``.
    Useful for plotting achievable (alpha, beta) frontiers.
    """
    ensure_in_range(beta, "beta", 0.0, 1.0, low_inclusive=False)
    ensure_int(num_users, "num_users", minimum=1)
    dist = PairDeviationDistribution(lambda1=lambda1, lambda2=lambda1 / c)
    from_var = math.sqrt(
        16.0 * math.sqrt(2.0 / math.pi) * dist.variance() / (num_users**2 * beta)
    )
    return max(alpha_threshold(lambda1, c), from_var)
