"""Indoor floorplan construction (the paper's Section 5.2 application).

Estimates hallway-segment lengths from simulated smartphone walkers:
each user's distance claim is (estimated stride) x (counted steps), with
per-user bias and sensor quality.  The campaign runs Algorithm 2 with a
privacy-first configuration: a target (epsilon, delta) is converted into
the mechanism parameter via the Theorem 4.8 accounting.

Run:  python examples/indoor_floorplan.py
"""

import numpy as np

from repro import PrivateTruthDiscovery
from repro.datasets import generate_floorplan_dataset
from repro.metrics import WeightComparison, true_weights
from repro.truthdiscovery import CRH

SEED = 11
EPSILON, DELTA = 1.0, 0.3


def main() -> None:
    # The paper's deployment shape: 247 walkers x 129 hallway segments.
    dataset = generate_floorplan_dataset(
        num_users=247, num_segments=129, random_state=SEED
    )
    print(
        f"{dataset.num_users} walkers, {dataset.num_segments} segments, "
        f"lengths {dataset.segment_lengths.min():.1f}-"
        f"{dataset.segment_lengths.max():.1f} m"
    )

    # Public sensitivity bound: two standard deviations of same-segment
    # disagreement (what a server could release alongside lambda2).
    sensitivity = float(2.0 * dataset.claims.object_stds().mean())
    pipeline = PrivateTruthDiscovery.for_privacy_target(
        epsilon=EPSILON, delta=DELTA, sensitivity=sensitivity
    )
    print(
        f"target ({EPSILON}, {DELTA})-LDP at sensitivity {sensitivity:.2f} m "
        f"=> lambda2 = {pipeline.config.lambda2:.4f} "
        f"(mean |noise| {pipeline.config.expected_absolute_noise:.2f} m)"
    )

    outcome = pipeline.run(dataset.claims, random_state=SEED)
    errors = np.abs(outcome.truths - dataset.segment_lengths)
    rel = errors / dataset.segment_lengths
    print(
        f"private aggregate vs measured lengths: "
        f"median error {np.median(errors):.2f} m "
        f"({np.median(rel):.1%} relative)"
    )

    # Fig. 7 style weight check: estimated weights track oracle weights.
    method = CRH()
    oracle = true_weights(method, outcome.perturbation.perturbed, dataset.segment_lengths)
    agreement = WeightComparison.compare(outcome.weights, oracle)
    print(
        f"weight estimation vs oracle: pearson {agreement.pearson:.3f}, "
        f"spearman {agreement.spearman:.3f}"
    )

    worst = int(np.argmax(outcome.perturbation.noise_variances))
    print(
        f"largest sampled noise variance: user {worst} "
        f"({outcome.perturbation.noise_variances[worst]:.2f} m^2), "
        f"weight {outcome.weights[worst]:.2f} (population mean 1.0)"
    )


if __name__ == "__main__":
    main()
