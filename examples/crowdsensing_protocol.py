"""The full crowd sensing protocol on a simulated (faulty) network.

Runs Algorithm 2 as an actual distributed protocol — server, user
devices, message transport — rather than as a library call:

1. the server announces a campaign (micro-tasks + lambda2);
2. each device perturbs locally (the sampled variance never leaves the
   phone) and submits a single message;
3. the server aggregates whatever survived a lossy, straggler-prone
   network.

Demonstrates the deployability claims of Section 3.2: one message per
user, no user-to-user communication, and graceful degradation under
drops.

Run:  python examples/crowdsensing_protocol.py
"""

import numpy as np

from repro.crowdsensing import (
    CampaignSpec,
    FaultModel,
    build_devices,
    run_campaign,
)
from repro.privacy import PrivacyAccountant, guarantee_of_mechanism

SEED = 5
NUM_USERS, NUM_TASKS = 80, 12
LAMBDA2 = 2.0
SENSITIVITY, DELTA = 1.0, 0.3


def main() -> None:
    rng = np.random.default_rng(SEED)
    truths = rng.uniform(15.0, 30.0, NUM_TASKS)  # e.g. noise levels in dB
    observations = {
        f"user-{i:03d}": {
            f"task-{j:02d}": float(truths[j] + rng.normal(0.0, 0.8))
            for j in range(NUM_TASKS)
        }
        for i in range(NUM_USERS)
    }
    devices = build_devices(observations, random_state=SEED)

    spec = CampaignSpec(
        campaign_id="noise-map-round-1",
        object_ids=tuple(f"task-{j:02d}" for j in range(NUM_TASKS)),
        lambda2=LAMBDA2,
        deadline=10.0,
        min_contributors=20,
        method="crh",
    )

    for label, faults in (
        ("reliable network", FaultModel()),
        ("20% message loss", FaultModel(drop_probability=0.2)),
        (
            "loss + stragglers",
            FaultModel(
                drop_probability=0.1,
                straggler_probability=0.15,
                straggler_penalty=60.0,  # miss the deadline
            ),
        ),
    ):
        report = run_campaign(spec, build_devices(observations, random_state=SEED),
                              fault_model=faults, random_state=SEED)
        err = (
            float(np.abs(report.truths - truths).mean())
            if report.succeeded
            else float("nan")
        )
        print(f"{label:20s} | {report.summary()} | ground-truth MAE {err:.3f}")

    # Per-user privacy budget for one round, tracked by the accountant.
    acct = PrivacyAccountant()
    guarantee = guarantee_of_mechanism(LAMBDA2, SENSITIVITY, DELTA)
    acct.record_for_all(
        [d.user_id for d in devices], guarantee, mechanism="exp-gaussian",
        label=spec.campaign_id,
    )
    print(
        f"\nper-user guarantee this round: {acct.composed_guarantee('user-000')}"
    )
    print(
        "note: the submission schema has no field for the noise variance —"
        " it physically cannot leak."
    )


if __name__ == "__main__":
    main()
