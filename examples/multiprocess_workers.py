"""Multi-process shard workers: the ingestion service beyond one core.

The single-process service aggregates on the thread that pumps; with
``workers=N`` each shard's aggregation moves into a worker process that
receives micro-batches as compact ``WorkItem`` frames over a pipe.  The
demo shows:

1. the same service API — register, submit, pump, snapshot — with a
   2-worker pool behind 4 shards (spawn start method, as on CI);
2. truths that are *bitwise identical* to a single-process run over the
   same traffic (aggregation state is a pure function of the batch
   sequence, wherever it runs);
3. worker-crash behaviour: killing a worker surfaces a clear
   ``WorkerCrashedError`` instead of a hung pipe.

Run:  PYTHONPATH=src python examples/multiprocess_workers.py
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np

from repro.service import (
    IngestService,
    LoadGenerator,
    ServiceConfig,
    Topology,
)
from repro.workers import WorkerCrashedError

NUM_CAMPAIGNS = 4
CLAIMS_PER_CAMPAIGN = 30_000


def build_traffic():
    generators = []
    per_campaign = []
    for c in range(NUM_CAMPAIGNS):
        gen = LoadGenerator(
            f"city-block-{c}",
            num_users=120,
            num_objects=40,
            noise_std=0.3,
            random_state=2020 + c,
        )
        generators.append(gen)
        per_campaign.append(
            list(gen.column_chunks(CLAIMS_PER_CAMPAIGN, chunk_size=1024))
        )
    # Interleave arrivals across campaigns, like real mixed traffic.
    chunks = [c for group in zip(*per_campaign) for c in group]
    return generators, chunks


def run(generators, chunks, *, workers: int) -> dict:
    topology = (
        Topology.workers(workers, start_method="spawn")
        if workers
        else Topology.in_process()
    )
    service = IngestService(
        ServiceConfig(num_shards=4, max_batch=2048), topology=topology
    )
    with service:
        for gen in generators:
            service.register_campaign(
                gen.campaign_id,
                gen.object_ids,
                max_users=gen.num_users,
                user_ids=gen.user_ids,
            )
        start = time.perf_counter()
        for i, chunk in enumerate(chunks):
            service.submit_columns(
                chunk.campaign_id,
                chunk.user_slots,
                chunk.object_slots,
                chunk.values,
            )
            if i % 16 == 15:
                service.pump()
        service.flush()
        service.sync_workers()
        elapsed = time.perf_counter() - start
        snapshots = {
            gen.campaign_id: service.snapshot(gen.campaign_id)
            for gen in generators
        }
    label = f"{workers} worker(s)" if workers else "in-process"
    total = sum(s.claims_ingested for s in snapshots.values())
    print(
        f"  {label:<12} {total:,} claims in {elapsed * 1e3:7.1f} ms "
        f"({total / elapsed:,.0f} claims/s)"
    )
    return snapshots


def main() -> None:
    generators, chunks = build_traffic()

    print("== same traffic, with and without shard workers ==")
    single = run(generators, chunks, workers=0)
    multi = run(generators, chunks, workers=2)

    print("\n== truths agree bitwise ==")
    for gen in generators:
        a = single[gen.campaign_id].truths
        b = multi[gen.campaign_id].truths
        assert np.array_equal(a, b), f"{gen.campaign_id} diverged!"
        err = float(np.abs(a - gen.truths).mean())
        print(
            f"  {gen.campaign_id}: truths identical across modes "
            f"(mean |error| vs ground truth {err:.3f})"
        )

    print("\n== a killed worker fails loudly, not silently ==")
    service = IngestService(
        ServiceConfig(num_shards=4, max_batch=2048),
        topology=Topology.workers(2, start_method="spawn"),
    )
    with service:
        gen = generators[0]
        service.register_campaign(
            gen.campaign_id,
            gen.object_ids,
            max_users=gen.num_users,
            user_ids=gen.user_ids,
        )
        victim = service.worker_pool.handle_for(
            service.shard_of(gen.campaign_id)
        )
        os.kill(victim.process.pid, signal.SIGKILL)
        victim.process.join(timeout=10)
        try:
            for chunk in chunks[:64]:
                if chunk.campaign_id != gen.campaign_id:
                    continue
                service.submit_columns(
                    chunk.campaign_id,
                    chunk.user_slots,
                    chunk.object_slots,
                    chunk.values,
                )
            service.pump()
            raise SystemExit("expected a WorkerCrashedError")
        except WorkerCrashedError as exc:
            first_line = str(exc).splitlines()[0]
            print(f"  caught: {first_line}")

    print("\ndone: shard aggregation runs out-of-process, bit-for-bit.")


if __name__ == "__main__":
    main()
