"""WAL-shipping replication: warm standbys, replica reads, promotion.

A durable primary is one fsync away from its truths — but still one
process away from losing its *availability*.  This demo deploys the
topology the ``repro.replication`` package exists for:

1. ``Topology.replicated(standbys=1)`` starts the primary's
   write-ahead log shipping to a warm standby (a ``repro standby``
   subprocess) as part of ordinary service construction;
2. claims stream through the primary; every committed group is shipped
   post-fsync and the standby acks it only after *its own* fsync, then
   replays it into live aggregators;
3. the standby serves snapshot reads over :class:`ReplicaReadClient`
   while the primary keeps ingesting — reads that never touch the
   primary's log;
4. the primary is abandoned mid-conversation (nothing shut down
   cleanly) and the standby is *promoted*: it comes back as a primary
   whose truths are bit-for-bit the crashed one's at the replicated
   watermark, with every spent privacy-budget cent staying spent.

Run:  PYTHONPATH=src python examples/replicated_service.py
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.durable import DurabilityConfig, DurabilityManager, RecoveryManager
from repro.privacy.ldp import LDPGuarantee
from repro.service import (
    BudgetLedger,
    IngestService,
    LoadGenerator,
    ServiceConfig,
    Topology,
)

CHUNK = 512
CLAIMS = 30_000


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="repro-replicated-"))
    primary_dir = root / "wal"
    gen = LoadGenerator(
        "city-air-quality",
        num_users=120,
        num_objects=48,
        random_state=7,
    )

    print("== primary + 1 warm standby ==")
    manager = DurabilityManager(
        DurabilityConfig(directory=primary_dir, fsync="batch")
    )
    service = IngestService(
        ServiceConfig(num_shards=2, max_batch=CHUNK),
        ledger=BudgetLedger(epsilon_cap=100.0),
        topology=Topology.replicated(standbys=1, durability=manager),
    )
    try:
        service.register_campaign(
            gen.campaign_id,
            gen.object_ids,
            max_users=gen.num_users,
            user_ids=gen.user_ids,
            method="crh",
            cost=LDPGuarantee(epsilon=0.001, delta=0.0),
        )
        for i, chunk in enumerate(
            gen.column_chunks(CLAIMS, chunk_size=CHUNK)
        ):
            service.submit_columns(
                chunk.campaign_id,
                chunk.user_slots,
                chunk.object_slots,
                chunk.values,
            )
            if i % 8 == 7:
                service.pump()
        service.flush()
        manager.sync()
        watermark = manager.wal.durable_lsn
        sender = service.replication
        while sender.min_ack_lsn() < watermark:
            time.sleep(0.02)
        link = sender.stats()["standbys"][0]
        print(
            f"  shipped {link['records_shipped']} records "
            f"({link['bytes_shipped']:,} bytes) to the standby, "
            f"lag {link['lag_lsn']} LSNs"
        )

        print("\n== replica reads while the primary ingests ==")
        primary_snap = service.snapshot(gen.campaign_id)
        with service.standbys.handles[0].client() as replica:
            replica_snap = replica.snapshot(gen.campaign_id)
            match = np.array_equal(
                primary_snap.truths, replica_snap.truths
            )
            print(
                f"  replica claims={replica_snap.claims_ingested}, "
                f"truths bitwise "
                f"{'equal to primary' if match else 'DIFFER'}"
            )

            print("\n== crash the primary, promote the standby ==")
            spent_before = service.ledger.to_records()
            # Abandon the primary: the sender stops shipping, nothing
            # else is shut down cleanly.
            sender.close()
            report = replica.promote()
            promoted = replica.snapshot(gen.campaign_id)
            status = replica.status()
        recovered = RecoveryManager(primary_dir).recover()
        try:
            crashed = recovered.service.snapshot(gen.campaign_id)
            print(
                f"  promoted in {report['seconds']*1e3:.1f} ms at "
                f"LSN {report['watermark_lsn']}"
            )
            print(
                f"  truths bitwise "
                f"{'equal' if np.array_equal(promoted.truths, crashed.truths) else 'DIFFER'}"
                f" to the crashed primary's recovered state"
            )
            same_budget = sorted(
                (r["user_id"], r["epsilon"]) for r in spent_before
            ) == sorted(
                (r["user_id"], r["epsilon"])
                for r in status["ledger"]["records"]
            )
            print(
                f"  spent budget "
                f"{'preserved' if same_budget else 'LOST'} across the "
                f"promotion ({len(status['ledger']['records'])} users)"
            )
        finally:
            if recovered.durability is not None:
                recovered.durability.close()
    finally:
        service.close()
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
