"""Private crowd labeling — the categorical extension.

The paper handles continuous sensing data and points to its KDD'18
companion for categorical tasks.  This example runs that setting: a
labelling campaign (e.g. "which of 4 road-surface conditions is shown?")
where every worker's labels are protected by k-ary randomized response
before submission, and the server recovers the true labels with
weighted voting.

Run:  python examples/crowd_labeling.py
"""


from repro.privacy.randomized_response import (
    PrivatePreferenceRandomizedResponse,
    RandomizedResponseMechanism,
    keep_probability,
)
from repro.truthdiscovery.categorical import (
    AccuracyEM,
    MajorityVoting,
    WeightedVoting,
    generate_categorical_dataset,
)

SEED = 31
NUM_WORKERS, NUM_TASKS, NUM_CATEGORIES = 200, 120, 4


def error(method, claims, truths) -> float:
    return float((method.fit(claims).truths != truths).mean())


def main() -> None:
    claims, truths, accuracies = generate_categorical_dataset(
        NUM_WORKERS,
        NUM_TASKS,
        NUM_CATEGORIES,
        accuracy_low=0.55,
        accuracy_high=0.95,
        random_state=SEED,
    )
    print(
        f"{NUM_WORKERS} workers (accuracy {accuracies.min():.2f}-"
        f"{accuracies.max():.2f}), {NUM_TASKS} tasks, "
        f"{NUM_CATEGORIES} categories"
    )

    print("\nclean data (no privacy):")
    for method in (MajorityVoting(), WeightedVoting(), AccuracyEM()):
        print(f"  {method.name:16s} error {error(method, claims, truths):.3f}")

    for epsilon in (2.0, 1.0, 0.5):
        mech = RandomizedResponseMechanism(epsilon)
        perturbed = mech.perturb(claims, random_state=SEED)
        keep = keep_probability(epsilon, NUM_CATEGORIES)
        print(
            f"\nrandomized response, eps={epsilon} "
            f"(keep prob {keep:.2f}, flip rate {perturbed.flip_rate:.2f}):"
        )
        for method in (MajorityVoting(), WeightedVoting(), AccuracyEM()):
            print(
                f"  {method.name:16s} error "
                f"{error(method, perturbed.perturbed, truths):.3f}"
            )

    # The private-preference variant: each worker samples their own
    # epsilon; the server knows only the distribution.
    mech = PrivatePreferenceRandomizedResponse(epsilon_floor=0.8, rate=1.0)
    perturbed = mech.perturb(claims, random_state=SEED)
    print(
        f"\nprivate-preference RR (floor 0.8, mean eps "
        f"{perturbed.epsilons.mean():.2f}): guarantee {mech.guarantee(0.05)}"
    )
    for method in (MajorityVoting(), WeightedVoting()):
        print(
            f"  {method.name:16s} error "
            f"{error(method, perturbed.perturbed, truths):.3f}"
        )
    print(
        "\nnote: chance error would be "
        f"{1 - 1 / NUM_CATEGORIES:.2f}; weighted methods stay far below it "
        "even under heavy flipping."
    )


if __name__ == "__main__":
    main()
