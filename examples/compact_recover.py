"""Async-commit durability, log compaction, and crash recovery.

The write-ahead log guarantees a crashed truth server comes back
bit-for-bit — but an append-only log grows forever, and synchronous
group commit taxes the ingest thread.  This demo walks the PR-5
additions end to end:

1. a campaign streams claims through a service whose WAL runs in
   ``async_commit`` mode: a background writer thread group-commits
   staged records, the durable-ack watermark (``durable_lsn``) trails
   the appends, and every pump acknowledges durability without paying
   fdatasync latency inline;
2. ``compact()`` rewrites the log down to its live records — the
   post-checkpoint suffix, the registration, and nothing else — behind
   an atomic temp-dir + rename + directory-fsync swap, reclaiming
   almost all of the log's disk footprint;
3. the process "crashes"; ``RecoveryManager`` rebuilds the service from
   the checkpoint plus the compacted log, and the recovered truths are
   *bit-for-bit* the ones the doomed service held;
4. for good measure, a compaction is crashed mid-swap at an injected
   fault point and recovery still comes back bitwise — the swap rolls
   forward or back, never half-way.

Run:  PYTHONPATH=src python examples/compact_recover.py
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro.durable import (
    CompactionInterrupted,
    DurabilityConfig,
    DurabilityManager,
    RecoveryManager,
    compact_directory,
)
from repro.service import (
    IngestService,
    LoadGenerator,
    ServiceConfig,
    Topology,
)

CHUNK = 512


def wal_bytes(directory: Path) -> int:
    return sum(
        p.stat().st_size
        for p in directory.rglob("wal-*.seg")
    )


def main() -> None:
    directory = Path(tempfile.mkdtemp(prefix="repro-compact-demo-"))
    try:
        gen = LoadGenerator(
            "city-noise",
            num_users=300,
            num_objects=80,
            noise_std=0.5,
            random_state=2020,
        )

        # -- phase 1: async-commit ingest -------------------------------
        manager = DurabilityManager(
            DurabilityConfig(
                directory=directory,
                fsync="batch",
                async_commit=True,  # background writer + durable-ack
                checkpoint_every_claims=25_000,
            )
        )
        service = IngestService(
            ServiceConfig(num_shards=2, max_batch=CHUNK),
            topology=Topology.in_process(durability=manager),
        )
        service.register_campaign(
            gen.campaign_id,
            gen.object_ids,
            max_users=gen.num_users,
            user_ids=gen.user_ids,
        )
        for chunk in gen.column_chunks(80_000, chunk_size=CHUNK):
            service.submit_columns(
                chunk.campaign_id,
                chunk.user_slots,
                chunk.object_slots,
                chunk.values,
            )
            service.pump()
        service.flush()
        doomed = service.snapshot(gen.campaign_id)
        stats = service.stats
        print("ingested:            ", doomed.summary())
        print(
            f"WAL appends:          {stats.wal_appends} records in "
            f"{stats.wal_commit_groups} background group commits "
            f"(durable-lsn lag at last pump: {stats.wal_durable_lag})"
        )

        # -- phase 2: claim-granular compaction -------------------------
        before = wal_bytes(directory)
        report = manager.compact()  # checkpoint, then rewrite live records
        print(
            f"compaction:           {report.records_before} -> "
            f"{report.records_after} records, {before:,} -> "
            f"{wal_bytes(directory):,} WAL bytes "
            f"({report.bytes_reclaimed:,} reclaimed)"
        )

        # -- phase 3: crash + recovery ----------------------------------
        del service, manager  # no close: the process just dies
        print("\n*** crash: service process killed ***\n")
        recovered = RecoveryManager(directory).recover()
        print("recovery:            ", recovered.report.summary())
        snapshot = recovered.service.snapshot(gen.campaign_id)
        identical = np.array_equal(doomed.truths, snapshot.truths)
        print(f"truths bit-for-bit identical after compaction: {identical}")

        # -- phase 4: a compaction crash mid-swap is survivable ---------
        try:
            compact_directory(directory, fault="after-rename")
        except CompactionInterrupted as exc:
            print(f"\ninjected mid-swap crash: {exc}")
        re_recovered = RecoveryManager(directory).recover()
        again = re_recovered.service.snapshot(gen.campaign_id)
        survived = np.array_equal(doomed.truths, again.truths)
        print(f"truths bit-for-bit identical after torn compaction: "
              f"{survived}")
    finally:
        shutil.rmtree(directory, ignore_errors=True)


if __name__ == "__main__":
    main()
