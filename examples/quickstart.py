"""Quickstart: privacy-preserving truth discovery in ~40 lines.

Generates a synthetic crowd sensing campaign (the paper's Section 5.1
setup), runs Algorithm 2 — each user perturbs locally with private
Gaussian noise, the server aggregates with CRH — and reports how little
the aggregate moved despite the injected noise.

Run:  python examples/quickstart.py
"""

from repro import PrivateTruthDiscovery
from repro.datasets import generate_synthetic
from repro.metrics import mae

SEED = 7


def main() -> None:
    # A campaign: 150 users (error variances ~ Exp(lambda1)), 30 objects.
    dataset = generate_synthetic(
        num_users=150, num_objects=30, lambda1=4.0, random_state=SEED
    )
    print(f"dataset: {dataset.claims}")

    # The server releases lambda2 = 0.5 => mean |noise| per claim = 1.0,
    # which is on the order of the claims' own spread: heavy perturbation.
    pipeline = PrivateTruthDiscovery(method="crh", lambda2=0.5)
    evaluation = pipeline.evaluate_utility(dataset.claims, random_state=SEED)

    print(f"average |added noise| : {evaluation.average_absolute_noise:.3f}")
    print(f"MAE original vs private aggregate : {evaluation.mae:.3f}")
    print(f"=> utility loss is {evaluation.mae / evaluation.average_absolute_noise:.1%} of the noise")

    # Both aggregates stay close to the hidden ground truth.
    print(
        "ground-truth MAE: "
        f"original={mae(dataset.ground_truth, evaluation.original.truths):.3f}  "
        f"private={mae(dataset.ground_truth, evaluation.private.truths):.3f}"
    )

    # Weight self-correction: the noisiest user loses influence.
    import numpy as np

    noisiest = int(np.argmax(evaluation.private.perturbation.noise_variances))
    print(
        f"noisiest user (#{noisiest}): weight "
        f"{evaluation.original.weights[noisiest]:.2f} -> "
        f"{evaluation.private.discovery.weights[noisiest]:.2f} after perturbation"
    )


if __name__ == "__main__":
    main()
