"""Streaming private truth discovery — continuous sensing.

Crowd sensing rarely stops after one round: readings arrive in batches
as users move through the city.  This example runs the streaming CRH
engine over a live stream of *locally perturbed* traffic-speed reports,
with a mid-stream regime change (an incident halves speeds on two road
segments) that the exponential forgetting tracks automatically.

Run:  python examples/streaming_monitoring.py
"""

import numpy as np

from repro.truthdiscovery.streaming import ClaimBatch, StreamingCRH

SEED = 41
NUM_USERS, NUM_SEGMENTS = 60, 8
LAMBDA2 = 1.0  # server-released perturbation parameter
BATCHES, PER_BATCH = 40, 120
INCIDENT_AT = 20  # batch index where segment speeds change


def main() -> None:
    rng = np.random.default_rng(SEED)
    speeds = rng.uniform(30.0, 90.0, NUM_SEGMENTS)  # km/h per segment
    post_incident = speeds.copy()
    post_incident[:2] *= 0.5  # crash slows segments 0 and 1

    # Each user samples their private noise variance ONCE (Algorithm 2
    # line 3) and reuses it for the whole stream.
    private_variances = rng.exponential(1.0 / LAMBDA2, size=NUM_USERS)
    user_error = rng.uniform(0.5, 3.0, size=NUM_USERS)  # sensor quality

    stream = StreamingCRH(
        num_users=NUM_USERS, num_objects=NUM_SEGMENTS, decay=0.8
    )

    print(
        f"{NUM_USERS} drivers reporting {NUM_SEGMENTS} segments; "
        f"mean |noise| = {1 / np.sqrt(2 * LAMBDA2):.2f} km/h per report"
    )
    print(f"{'batch':>5}  {'MAE vs live truth (km/h)':>26}")
    for b in range(BATCHES):
        truth_now = speeds if b < INCIDENT_AT else post_incident
        users = rng.integers(0, NUM_USERS, PER_BATCH)
        segments = rng.integers(0, NUM_SEGMENTS, PER_BATCH)
        readings = (
            truth_now[segments]
            + rng.normal(0.0, user_error[users])  # sensing error
            + rng.normal(0.0, np.sqrt(private_variances[users]))  # privacy
        )
        stream.ingest(
            ClaimBatch(users=users, objects=segments, values=readings)
        )
        if b % 5 == 4 or b in (INCIDENT_AT - 1, INCIDENT_AT):
            mae = float(np.abs(stream.truths - truth_now).mean())
            marker = "  <- incident!" if b == INCIDENT_AT else ""
            print(f"{b + 1:>5}  {mae:>26.2f}{marker}")

    final_mae = float(np.abs(stream.truths - post_incident).mean())
    print(f"\nfinal MAE vs post-incident truth: {final_mae:.2f} km/h")
    slow = sorted(np.argsort(stream.truths)[:2].tolist())
    slow_truth = sorted(np.argsort(post_incident)[:2].tolist())
    print(
        f"slowest segments per the private stream: {slow} "
        f"(ground truth: {slow_truth})"
    )
    noisy_driver = int(np.argmax(private_variances))
    print(
        f"driver with the largest private variance (#{noisy_driver}, "
        f"{private_variances[noisy_driver]:.1f}): weight "
        f"{stream.weights[noisy_driver]:.2f} vs population mean 1.00"
    )


if __name__ == "__main__":
    main()
