"""Planning a deployment with the Section 4 theory.

Given a data-quality estimate (lambda1), target utility (alpha, beta)
and target privacy (epsilon, delta), this example walks the Theorem 4.9
trade-off: compute the feasible noise-level window, pick a noise level,
translate it into the server hyper-parameter lambda2, and then verify
the promised utility empirically on a fresh synthetic campaign.

Run:  python examples/privacy_budget_planner.py
"""

import numpy as np

from repro import PrivateTruthDiscovery
from repro.datasets import generate_synthetic
from repro.theory import (
    alpha_threshold,
    choose_noise_level,
    lambda2_for_noise_level,
    matched_lambda1,
    noise_level_window,
)

SEED = 17
LAMBDA1 = 4.0  # estimated data quality: mean error variance 0.25
NUM_USERS, NUM_OBJECTS = 300, 30
BETA = 0.2
EPSILON, DELTA = 1.0, 0.3


def main() -> None:
    # Theorem 4.3's quantifier: alpha must exceed the achievable floor.
    floor = alpha_threshold(LAMBDA1, c=1.0)
    alpha = 1.25 * floor
    print(f"alpha floor at c=1: {floor:.3f}; planning with alpha = {alpha:.3f}")

    window = noise_level_window(
        lambda1=LAMBDA1,
        alpha=alpha,
        beta=BETA,
        num_users=NUM_USERS,
        epsilon=EPSILON,
        delta=DELTA,
    )
    print(
        f"noise-level window for ({alpha:.2f}, {BETA})-utility and "
        f"({EPSILON}, {DELTA})-LDP: [{window.c_min:.3f}, {window.c_max:.3f}] "
        f"(feasible: {window.feasible})"
    )

    c = choose_noise_level(window)
    lambda2 = lambda2_for_noise_level(LAMBDA1, c)
    print(
        f"chosen noise level c = {c:.2f} -> lambda2 = {lambda2:.4f} "
        f"(mean noise variance {1 / lambda2:.2f})"
    )

    # Empirical verification of (alpha, beta)-utility.
    dataset = generate_synthetic(
        num_users=NUM_USERS, num_objects=NUM_OBJECTS, lambda1=LAMBDA1,
        random_state=SEED,
    )
    pipeline = PrivateTruthDiscovery(method="crh", lambda2=lambda2)
    maes = np.array(
        [
            pipeline.evaluate_utility(dataset.claims, random_state=s).mae
            for s in range(20)
        ]
    )
    exceed = float((maes >= alpha).mean())
    print(
        f"empirical check over 20 runs: mean MAE {maes.mean():.3f}, "
        f"Pr[MAE >= alpha] = {exceed:.2f} (guarantee: <= {BETA})"
    )

    # How good would the data have to be for a *much* stricter target?
    strict_eps = 0.2
    knife_edge = matched_lambda1(alpha, BETA, NUM_USERS, strict_eps, DELTA)
    print(
        f"\nfor epsilon = {strict_eps} the window closes at "
        f"lambda1 = {knife_edge:.3f}: any data quality above that keeps "
        "both guarantees simultaneously achievable (Eq. 19)."
    )


if __name__ == "__main__":
    main()
