"""Durable ingestion: crash a running campaign, recover it, finish it.

The ingestion service normally keeps all campaign state in memory — a
crash would lose every in-flight campaign.  This demo attaches the
``repro.durable`` write-ahead log and walks the full failure story:

1. a campaign streams claims through a WAL-attached service, with a
   privacy-budget ledger charging every submission and an automatic
   checkpoint partway through;
2. the process "crashes" mid-stream — the service object is abandoned
   with claims still flowing, nothing is shut down cleanly;
3. ``RecoveryManager`` rebuilds the service from the latest checkpoint
   plus the log suffix: truths, contributor weights, and spent budget
   all come back, and the recovered truths are *bit-for-bit* the ones
   an uncrashed service would hold;
4. the recovered service keeps serving: the rest of the stream goes in
   and the campaign finishes as if nothing happened.

Run:  PYTHONPATH=src python examples/durable_service.py
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro.durable import DurabilityConfig, DurabilityManager, RecoveryManager
from repro.privacy.ldp import LDPGuarantee
from repro.service import (
    BudgetLedger,
    IngestService,
    LoadGenerator,
    ServiceConfig,
    Topology,
)

CHUNK = 512


def build_service(directory: Path) -> tuple[IngestService, DurabilityManager]:
    manager = DurabilityManager(
        DurabilityConfig(
            directory=directory,
            fsync="batch",  # group commit at every pump
            checkpoint_every_claims=20_000,
        )
    )
    service = IngestService(
        ServiceConfig(num_shards=2, max_batch=CHUNK),
        ledger=BudgetLedger(epsilon_cap=50.0),
        topology=Topology.in_process(durability=manager),
    )
    return service, manager


def feed(service: IngestService, chunks) -> None:
    for chunk in chunks:
        service.submit_columns(
            chunk.campaign_id,
            chunk.user_slots,
            chunk.object_slots,
            chunk.values,
        )
        service.pump()


def main() -> None:
    directory = Path(tempfile.mkdtemp(prefix="repro-durable-demo-"))
    try:
        gen = LoadGenerator(
            "noise-map",
            num_users=250,
            num_objects=60,
            noise_std=0.4,
            random_state=2020,
        )
        chunks = list(gen.column_chunks(60_000, chunk_size=CHUNK))
        crash_at = len(chunks) // 2

        # -- phase 1: a durable campaign takes traffic ------------------
        service, manager = build_service(directory)
        service.register_campaign(
            gen.campaign_id,
            gen.object_ids,
            max_users=gen.num_users,
            user_ids=gen.user_ids,
            cost=LDPGuarantee(epsilon=0.001, delta=0.0),
        )
        feed(service, chunks[:crash_at])
        doomed = service.snapshot(gen.campaign_id)
        print("before the crash:   ", doomed.summary())
        print(
            f"durability so far:    {manager.claims_logged:,} claims in "
            f"{manager.batches_logged} logged batches, "
            f"{manager.checkpoints_written} checkpoint(s)"
        )

        # -- phase 2: the crash ----------------------------------------
        # No flush, no close — the process just dies.  Everything the
        # WAL group-committed survives; the in-memory service is gone.
        del service, manager
        print("\n*** crash: service process killed mid-stream ***\n")

        # -- phase 3: recovery -----------------------------------------
        recovered = RecoveryManager(directory).recover(resume=True)
        print("recovery:            ", recovered.report.summary())
        snapshot = recovered.service.snapshot(gen.campaign_id)
        print("after recovery:      ", snapshot.summary())
        identical = np.array_equal(doomed.truths, snapshot.truths)
        print(f"truths bit-for-bit identical to the doomed service: "
              f"{identical}")
        spent = recovered.service.ledger.spent("user0")
        print(f"user0's recovered privacy spend: {spent}")

        # -- phase 4: the campaign finishes on the recovered service ----
        feed(recovered.service, chunks[crash_at:])
        recovered.service.flush()
        final = recovered.service.snapshot(gen.campaign_id)
        print("\nafter finishing:     ", final.summary())
        rmse = float(
            np.sqrt(np.mean((final.truths - gen.truths) ** 2))
        )
        print(f"RMSE vs ground truth: {rmse:.4f}")
        recovered.durability.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)


if __name__ == "__main__":
    main()
