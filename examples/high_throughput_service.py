"""High-throughput ingestion: the service layer end to end.

A city-scale air-quality campaign: hundreds of users stream perturbed
claims into the sharded ingestion service.  The demo shows the pieces
working together:

1. a privacy-budget ledger admission-controls every submission — users
   who exhaust their (epsilon, delta) budget are turned away;
2. claims land in columnar micro-batches and are aggregated
   incrementally, so fresh truths are queryable mid-stream;
3. the bulk columnar path sustains orders of magnitude more claims per
   second than the per-message protocol server (run
   ``python -m repro service-bench`` for the full comparison).

Run:  PYTHONPATH=src python examples/high_throughput_service.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.ldp import LDPGuarantee
from repro.service import (
    BudgetLedger,
    IngestService,
    LoadGenerator,
    ServiceConfig,
)


def main() -> None:
    rng_seed = 2020

    # -- a protocol-shaped campaign under budget admission --------------
    gen = LoadGenerator(
        "air-quality",
        num_users=300,
        num_objects=48,
        claims_per_submission=6,
        noise_std=0.3,
        lambda2=2.0,  # Algorithm-2 perturbation on every claim
        random_state=rng_seed,
    )
    accountant = PrivacyAccountant()
    ledger = BudgetLedger(epsilon_cap=2.0, accountant=accountant)
    service = IngestService(
        ServiceConfig(num_shards=4, max_batch=512), ledger=ledger
    )
    per_submission_cost = LDPGuarantee(epsilon=0.25, delta=0.01)
    service.register_campaign(
        gen.campaign_id,
        gen.object_ids,
        max_users=gen.num_users,
        user_ids=gen.user_ids,
        cost=per_submission_cost,
    )

    submissions = gen.submissions(4000)
    for sub in submissions:
        service.submit(sub)
    service.flush()

    stats = service.stats
    print(
        f"submitted {len(submissions)} submissions: "
        f"{stats.claims_accepted} claims admitted, "
        f"{stats.rejected_budget} claims rejected over budget"
    )
    print(
        f"ledger: {ledger.admitted} admissions, {ledger.denied} denials, "
        f"worst-case composed guarantee {ledger.worst_case()}"
    )

    snap = service.snapshot(gen.campaign_id)
    rmse = float(np.sqrt(np.mean((snap.truths - gen.truths) ** 2)))
    print(snap.summary())
    print(f"truth RMSE vs ground truth (perturbed stream): {rmse:.3f}")

    # -- the bulk columnar hot path --------------------------------------
    bulk_gen = LoadGenerator(
        "bulk-telemetry",
        num_users=500,
        num_objects=64,
        noise_std=0.2,
        random_state=rng_seed + 1,
    )
    bulk_service = IngestService(ServiceConfig(num_shards=4, max_batch=2048))
    bulk_service.register_campaign(
        bulk_gen.campaign_id,
        bulk_gen.object_ids,
        max_users=bulk_gen.num_users,
        user_ids=bulk_gen.user_ids,
    )
    chunks = list(bulk_gen.column_chunks(100_000, chunk_size=2048))

    start = time.perf_counter()
    for chunk in chunks:
        bulk_service.submit_columns(
            chunk.campaign_id, chunk.user_slots, chunk.object_slots,
            chunk.values,
        )
    bulk_service.flush()
    elapsed = time.perf_counter() - start

    accepted = bulk_service.stats.claims_accepted
    lats = bulk_service.batch_latencies()
    print(
        f"bulk path: {accepted:,} claims in {elapsed:.3f}s "
        f"({accepted / elapsed:,.0f} claims/s across "
        f"{bulk_service.num_shards} shards)"
    )
    print(
        f"micro-batch latency: p50 {np.percentile(lats, 50) * 1e3:.3f} ms, "
        f"p99 {np.percentile(lats, 99) * 1e3:.3f} ms"
    )


if __name__ == "__main__":
    main()
