"""Multi-node shard fabric: the ingestion service over real sockets.

``workers=N`` moves shard aggregation into subprocesses behind pipes;
``hosts=N`` goes one step further and talks to ``repro serve-shard``
subprocesses over TCP — the same frame protocol, but each shard host is
now an independently deployable process that could live on another
machine.  The demo shows:

1. the same service API — register, submit, pump, snapshot — with 2
   socket shard hosts behind 4 shards, launched through the real CLI
   entrypoint;
2. truths that are *bitwise identical* to a single-process run over the
   same traffic (aggregation state is a pure function of the batch
   sequence, wherever — and over whatever transport — it runs);
3. supervised failover: SIGKILL a shard host mid-stream and the
   supervisor respawns it, replays its journal from the last
   checkpoint, and the final truths are still bit-for-bit identical;
4. online rebalancing: re-home a live shard from one host to another
   mid-stream without dropping a claim.

Run:  PYTHONPATH=src python examples/distributed_service.py
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np

from repro.service import (
    IngestService,
    LoadGenerator,
    ServiceConfig,
    Topology,
)

NUM_CAMPAIGNS = 3
CLAIMS_PER_CAMPAIGN = 4_000


def build_traffic():
    generators = []
    per_campaign = []
    for c in range(NUM_CAMPAIGNS):
        gen = LoadGenerator(
            f"district-{c}",
            num_users=60,
            num_objects=24,
            noise_std=0.3,
            random_state=2020 + c,
        )
        generators.append(gen)
        per_campaign.append(
            list(gen.column_chunks(CLAIMS_PER_CAMPAIGN, chunk_size=512))
        )
    chunks = [c for group in zip(*per_campaign) for c in group]
    return generators, chunks


def run(generators, chunks, *, hosts: int, midstream=None) -> dict:
    service = IngestService(
        ServiceConfig(num_shards=4, max_batch=1024),
        topology=Topology.fabric(hosts) if hosts else Topology.in_process(),
    )
    with service:
        for gen in generators:
            service.register_campaign(
                gen.campaign_id,
                gen.object_ids,
                max_users=gen.num_users,
                user_ids=gen.user_ids,
            )
        start = time.perf_counter()
        for i, chunk in enumerate(chunks):
            service.submit_columns(
                chunk.campaign_id,
                chunk.user_slots,
                chunk.object_slots,
                chunk.values,
            )
            if i % 8 == 7:
                service.pump()
            if midstream is not None and i == len(chunks) // 2:
                midstream(service)
                midstream = None
        service.flush()
        service.sync_workers()
        elapsed = time.perf_counter() - start
        snapshots = {
            gen.campaign_id: service.snapshot(gen.campaign_id)
            for gen in generators
        }
        stats = service.fabric_stats()
    label = f"{hosts} socket host(s)" if hosts else "in-process"
    total = sum(s.claims_ingested for s in snapshots.values())
    print(
        f"  {label:<17} {total:,} claims in {elapsed * 1e3:7.1f} ms "
        f"({total / elapsed:,.0f} claims/s)"
    )
    return snapshots, stats


def assert_bitwise(generators, expected, got, what):
    for gen in generators:
        a = expected[gen.campaign_id].truths
        b = got[gen.campaign_id].truths
        assert np.array_equal(a, b), f"{gen.campaign_id} diverged!"
    print(f"  truths identical bit-for-bit ({what})")


def main() -> None:
    generators, chunks = build_traffic()

    print("== same traffic, in-process vs over TCP shard hosts ==")
    single, _ = run(generators, chunks, hosts=0)
    fabric, stats = run(generators, chunks, hosts=2)
    placement = ", ".join(
        f"host {e['host']}: shards [{e['lo']}, {e['hi']})"
        for e in stats["placement"]
    )
    print(f"  placement: {placement}")
    assert_bitwise(generators, single, fabric, "sockets vs in-process")

    print("\n== kill a shard host mid-stream; the supervisor heals it ==")

    def crash(service):
        victim = service.worker_pool.handles[0]
        print(f"  SIGKILL shard host pid {victim.process.pid}")
        os.kill(victim.process.pid, signal.SIGKILL)
        victim.process.join(10.0)

    healed, stats = run(generators, chunks, hosts=2, midstream=crash)
    supervision = stats["supervision"]
    print(
        f"  supervisor: {supervision['restarts']} restart(s), "
        f"recovered in {supervision['last_failover_seconds']:.2f} s"
    )
    assert_bitwise(generators, single, healed, "after failover + replay")

    print("\n== re-home a live shard between hosts mid-stream ==")

    def rebalance(service):
        shard = service.shard_of(generators[0].campaign_id)
        source = service.worker_pool.placement.owner_of(shard)
        target = 1 - source
        moved = service.rebalance_shard(shard, target)
        print(
            f"  moved shard {shard} (host {source} -> {target}), "
            f"{moved} campaign(s) shipped live"
        )

    moved, _ = run(generators, chunks, hosts=2, midstream=rebalance)
    assert_bitwise(generators, single, moved, "after online rebalancing")

    print("\ndone: one service API, from one process to a shard fabric.")


if __name__ == "__main__":
    main()
