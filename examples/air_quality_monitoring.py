"""Air quality monitoring with unreliable and adversarial sensors.

The paper's introduction motivates truth discovery with applications
such as air quality monitoring, where "some users provide correct and
useful information while others may submit noisy or fake information
... or even the intent to deceive and get rewards".  This example
builds that scenario: a city-wide PM2.5 campaign where

* most participants carry decent consumer sensors,
* a fraction carry miscalibrated (biased) hardware, and
* a small group reports inflated readings on purpose.

It then compares naive averaging, the median, and private CRH — showing
that weighted aggregation keeps the city map accurate even while every
honest participant's readings are perturbed for privacy.

Run:  python examples/air_quality_monitoring.py
"""

import numpy as np

from repro import PrivateTruthDiscovery
from repro.datasets.synthetic import generate_with_variances
from repro.metrics import mae
from repro.truthdiscovery import MeanAggregator, MedianAggregator

SEED = 23
NUM_STATIONS = 60  # monitoring micro-zones (objects)
HONEST, MISCALIBRATED, ADVERSARIAL = 120, 25, 15


def build_campaign(rng: np.random.Generator):
    """PM2.5 truth per zone, plus three user populations."""
    truths = rng.uniform(8.0, 80.0, NUM_STATIONS)  # ug/m3
    variances = np.concatenate(
        [
            rng.exponential(4.0, HONEST),  # decent sensors
            rng.exponential(25.0, MISCALIBRATED),  # poor sensors
            rng.exponential(4.0, ADVERSARIAL),  # good sensors, bad intent
        ]
    )
    dataset = generate_with_variances(
        variances, num_objects=NUM_STATIONS, truths=truths, random_state=SEED
    )
    values = dataset.claims.values.copy()
    # Miscalibrated devices: multiplicative drift.
    drift = rng.uniform(0.7, 1.4, MISCALIBRATED)
    sl = slice(HONEST, HONEST + MISCALIBRATED)
    values[sl] = values[sl] * drift[:, None]
    # Adversaries: inflate readings to trigger pollution alerts.
    values[HONEST + MISCALIBRATED :] += rng.uniform(30.0, 60.0)
    return dataset.claims.with_values(values), truths


def main() -> None:
    rng = np.random.default_rng(SEED)
    claims, truths = build_campaign(rng)
    print(
        f"campaign: {claims.num_users} participants "
        f"({HONEST} honest / {MISCALIBRATED} miscalibrated / "
        f"{ADVERSARIAL} adversarial), {claims.num_objects} zones"
    )

    # Private pipeline: heavy noise (mean |noise| ~ 5 ug/m3 per reading).
    pipeline = PrivateTruthDiscovery(method="crh", lambda2=0.02)
    outcome = pipeline.run(claims, random_state=SEED)
    print(
        f"average |added noise| = "
        f"{outcome.average_absolute_noise:.1f} ug/m3 per reading"
    )

    results = {
        "naive mean (no privacy)": MeanAggregator().fit(claims).truths,
        "median (no privacy)": MedianAggregator().fit(claims).truths,
        "private CRH (with noise)": outcome.truths,
    }
    print("\nground-truth MAE by aggregator (ug/m3):")
    for label, estimate in results.items():
        print(f"  {label:26s} {mae(truths, estimate):6.2f}")

    # Show that the adversaries were down-weighted.
    w = outcome.weights
    print(
        "\nmean weight by population: "
        f"honest {w[:HONEST].mean():.2f}, "
        f"miscalibrated {w[HONEST:HONEST + MISCALIBRATED].mean():.2f}, "
        f"adversarial {w[HONEST + MISCALIBRATED:].mean():.2f}"
    )


if __name__ == "__main__":
    main()
