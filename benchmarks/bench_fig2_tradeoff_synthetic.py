"""Figure 2 — utility-privacy trade-off on synthetic data (CRH).

Regenerates both panels (MAE vs epsilon, average added noise vs epsilon,
one curve per delta in {0.2, 0.3, 0.4, 0.5}) and asserts the paper's
qualitative claims: noise falls with epsilon and MAE stays well below
the added noise at the strongest-privacy point.
"""

from repro.experiments import run_experiment
from repro.experiments.figures.common import check_tradeoff_shape


def test_fig2_tradeoff_synthetic_crh(benchmark, profile, base_seed, record_figure):
    result = benchmark.pedantic(
        lambda: run_experiment("fig2", profile, base_seed=base_seed),
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    problems = check_tradeoff_shape(result)
    assert problems == [], problems
