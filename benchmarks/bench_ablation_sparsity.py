"""Ablation — sparse observation matrices.

Real campaigns are sparse; this bench sweeps the missing rate at fixed
noise and checks graceful degradation (no cliff) of the private
aggregate, exercising the masked code paths at experiment scale.
"""

from repro.experiments import run_experiment


def test_ablation_sparsity(benchmark, profile, base_seed, record_figure):
    result = benchmark.pedantic(
        lambda: run_experiment("ablation-sparsity", profile, base_seed=base_seed),
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    panel = result.panels[0]
    utility = panel.series_by_label("vs unperturbed").y
    # Graceful: even at 80% missing, utility MAE stays bounded (< the
    # 0.5 injected noise) rather than collapsing.
    assert max(utility) < 0.5
