"""Bench-regression gate: compare a fresh bench JSON against a baseline.

CI runs the smoke benchmarks (``repro service-bench --smoke`` /
``repro durable-bench --smoke``) on every PR and feeds the fresh JSON
through this script next to the committed ``results/BENCH_*_smoke.json``
baselines.  A throughput metric that drops below
``baseline * (1 - tolerance)`` — or a quality metric that degrades past
its bound — fails the job, so a PR that halves the hot path can no
longer land silently.

Metric classes:

* ``higher`` — throughput-style: fresh must be at least
  ``baseline * (1 - tolerance)``;
* ``lower`` — cost/error-style: fresh must be at most
  ``max(baseline * (1 + tolerance), floor)``.  The floor keeps
  near-zero baselines (an RMSE of 1e-9) from turning float noise into
  failures — only degradation past an absolute bound matters;
* ``at_least`` — absolute ratio bound: fresh must be at least
  ``floor``, independent of the baseline.  For metrics that are a
  ratio of two single timing samples (the streaming-vs-full read
  speedup), a baseline-relative bound would gate on runner jitter;
  the absolute floor only trips when the structural relationship
  inverts;
* ``flag`` — boolean invariants (recovered truths bitwise-equal,
  multi-process truths bitwise-equal): any ``False`` fails regardless
  of tolerance.

Metrics missing from either file are reported and skipped (smoke and
full runs do not share every section), but comparing two files with
*no* common metric is an error — that means the wrong baseline was
wired up.

Exit codes: 0 all compared metrics pass, 1 regression, 2 usage error.

Usage::

    python benchmarks/check_regression.py --kind service \
        --baseline results/BENCH_service_smoke.json \
        --fresh /tmp/fresh.json [--tolerance 0.4]
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Optional, Sequence

#: Default relative tolerance: CI runners are noisy, shared, and slower
#: than dev machines; 40% catches "halved the hot path" while riding
#: out scheduler jitter.
DEFAULT_TOLERANCE = 0.40


@dataclass(frozen=True)
class Metric:
    """One comparable value inside a bench report."""

    path: str
    direction: str  # "higher" | "lower" | "flag"
    floor: float = 0.0  # absolute bound for "lower" metrics


SERVICE_METRICS = (
    Metric("bulk.claims_per_sec", "higher"),
    Metric("bulk_workers.claims_per_sec", "higher"),
    Metric("submissions.claims_per_sec", "higher"),
    # The agreement RMSEs are machine-independent: degradation past 1e-3
    # means the streaming aggregation itself changed, not the runner.
    Metric("streaming_vs_batch_rmse", "lower", floor=1e-3),
    Metric("workers_truths_match_bitwise", "flag"),
    # Socket shard fabric (--hosts): throughput over real sockets, the
    # clean-run bitwise invariant, and the kill-one-host failover run.
    Metric("bulk_hosts.claims_per_sec", "higher"),
    Metric("hosts_truths_match_bitwise", "flag"),
    Metric("failover.truths_match_bitwise", "flag"),
    # Recovery = respawn a shard host + replay its journal.  The smoke
    # run recovers in ~1-2 s; the 30 s floor (the bound is
    # max(baseline * (1 + tolerance), floor), so the floor governs
    # here) only trips when failover degrades to something a caller
    # would actually notice, not on runner jitter.
    Metric("failover.recovery_seconds", "lower", floor=30.0),
    # Stage-latency gates from the telemetry histograms.  Both are
    # "lower" with generous absolute floors (the bound is
    # max(baseline * (1 + tolerance), floor)): micro-batch flushes are
    # tens of microseconds and group commits a few milliseconds on any
    # healthy runner, so only an order-of-magnitude pipeline stall —
    # not fsync jitter — trips these.
    Metric("bulk.batch_flush_p99_ms", "lower", floor=250.0),
    Metric("durable.durable_ack_p99_ms", "lower", floor=2000.0),
    # WAL-shipping replication (--replicas).  Replica snapshot reads
    # must at least keep pace with dirty primary reads — serving reads
    # off the standby is the whole point of the read-replica path —
    # and a promoted standby must be bit-for-bit the primary at the
    # replicated watermark with the spent budget intact.  The fan-out
    # gate is a same-run ratio of two timed read loops, so it takes an
    # absolute floor rather than a baseline-relative bound.
    Metric("replication.replica_reads_per_sec", "higher"),
    Metric("replication.read_fanout_vs_primary", "at_least", floor=1.0),
    Metric("replication.replica_truths_match_bitwise", "flag"),
    Metric("replication.promotion_truths_match_bitwise", "flag"),
    Metric("replication.budget_spent_matches", "flag"),
) + tuple(
    metric
    for method in ("crh", "gtm", "catd")
    for metric in (
        # Hard invariant per streaming backend: its truths must keep
        # matching the batch refit on dense data.
        Metric(
            f"methods.{method}.streaming_vs_batch_rmse", "lower", floor=1e-3
        ),
        # The whole point of the streaming backends: snapshot reads
        # must stay decisively cheaper than an O(total-claims) full
        # refit.  Timing ratios gate against an absolute floor, not
        # the baseline (runner jitter dwarfs a relative bound), and on
        # the *mean* speedup — num_reads + 1 samples per backend —
        # rather than the single-sample final read, so one scheduler
        # stall on a millisecond-scale read cannot fail the gate.
        Metric(f"methods.{method}.read_speedup_mean", "at_least", floor=1.5),
    )
)

DURABILITY_METRICS = (
    Metric("unlogged.claims_per_sec", "higher"),
    Metric("logged.never.claims_per_sec", "higher"),
    Metric("logged.batch.claims_per_sec", "higher"),
    Metric("logged.always.claims_per_sec", "higher"),
    Metric("logged_async.never.claims_per_sec", "higher"),
    Metric("logged_async.batch.claims_per_sec", "higher"),
    Metric("logged_async.always.claims_per_sec", "higher"),
    Metric("recovery.replay_only.claims_per_sec", "higher"),
    # ~12 B/claim today (u16 slots); alarm only past 20 B/claim so an
    # encoding-width regression trips but jitter cannot.
    Metric("logged.batch.bytes_per_claim", "lower", floor=20.0),
    # Logged-throughput retention floors per fsync mode.  Each is a
    # ratio of two same-run, same-machine measurements, so an absolute
    # floor gates the structural relationship (how much of the
    # unlogged rate survives logging) rather than runner speed; the
    # floors sit far below dev-box values because CI smoke runs are
    # tiny and 1-2 vCPU runners leave the background writer no core.
    Metric("logged.never.retention_vs_unlogged", "at_least", floor=0.30),
    Metric("logged.batch.retention_vs_unlogged", "at_least", floor=0.20),
    Metric(
        "logged_async.never.retention_vs_unlogged", "at_least", floor=0.30
    ),
    Metric(
        "logged_async.batch.retention_vs_unlogged", "at_least", floor=0.25
    ),
    Metric(
        "logged_async.always.retention_vs_unlogged", "at_least", floor=0.15
    ),
    # The durable-ack headline: grouped background syncs must stay
    # ahead of one synchronous fdatasync per frame.  Full runs sit
    # well above 2x; the floor is sized for smoke workloads, where a
    # handful of records leaves grouping little to amortise.
    Metric(
        "logged_async.always.speedup_vs_sync_always", "at_least", floor=1.1
    ),
    # Hard bitwise-recovery invariants: replay-only, checkpoint+suffix,
    # the async-commit log, and the post-compaction log must all
    # rebuild the live service's truths exactly.
    Metric("recovery.replay_only.truths_match_bitwise", "flag"),
    Metric("recovery.checkpointed.truths_match_bitwise", "flag"),
    Metric("recovery.async_commit.truths_match_bitwise", "flag"),
    Metric("compaction.recovery.truths_match_bitwise", "flag"),
    # Compaction must actually reclaim space on a checkpointed log.
    Metric("compaction.shrunk", "flag"),
)

CHAOS_METRICS = (
    # Self-healing failover ceilings from the chaos drill
    # (``repro chaos-drill --smoke``).  Detection is bounded by
    # interval * misses (0.2s * 3 in the drill) plus probe timeouts,
    # and promotion by one standby replay; both floors sit an order of
    # magnitude above healthy values (≈2.4s / ≈1s) so only a watchdog
    # that has actually stopped meeting its SLO trips the gate, not a
    # loaded runner.  The bound is max(baseline*(1+tol), floor), so
    # the floor governs while baselines stay small.
    Metric("watchdog.detection_seconds_max", "lower", floor=10.0),
    Metric("watchdog.promotion_seconds_max", "lower", floor=15.0),
    Metric("watchdog.failover_wall_seconds_max", "lower", floor=30.0),
    # Hard invariants over every drill: the watchdog (not an operator)
    # promoted, the healed truths are bitwise the dead primary's WAL
    # replayed to the watermark, and spent budget stayed spent.
    Metric("invariants.auto_promoted", "flag"),
    Metric("invariants.truths_match_bitwise", "flag"),
    Metric("invariants.budget_spent_matches", "flag"),
    # Degraded-mode drills (ISSUE-10).  Host-loss re-homes are journal
    # replays onto a survivor — healthy runs finish in well under a
    # second, so the 20s floor only trips a structural stall.  The
    # flags are hard: a partitioned watchdog fleet must promote
    # exactly once (fencing), re-homed truths must be bitwise the
    # uncrashed run's, and the budget ledger must survive untouched.
    Metric("rehome.rehome_seconds_max", "lower", floor=20.0),
    Metric("invariants.no_double_promotion", "flag"),
    Metric("invariants.stale_promote_refused", "flag"),
    Metric("invariants.rehome_truths_match_bitwise", "flag"),
    Metric("invariants.rehome_budget_matches", "flag"),
    Metric("invariants.wal_replay_matches", "flag"),
)

KINDS = {
    "service": SERVICE_METRICS,
    "durability": DURABILITY_METRICS,
    "chaos": CHAOS_METRICS,
}


def lookup(report: dict, path: str):
    """Resolve a dotted path inside a nested dict (None when absent)."""
    node = report
    for key in path.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


@dataclass(frozen=True)
class Comparison:
    """Outcome of comparing one metric."""

    metric: Metric
    baseline: object
    fresh: object
    ok: Optional[bool]  # None = skipped
    note: str = ""


def compare_metric(
    metric: Metric, baseline: dict, fresh: dict, tolerance: float
) -> Comparison:
    """Compare one metric between two reports."""
    base_value = lookup(baseline, metric.path)
    fresh_value = lookup(fresh, metric.path)
    if base_value is None or fresh_value is None:
        side = "baseline" if base_value is None else "fresh report"
        return Comparison(
            metric, base_value, fresh_value, None,
            f"missing from {side}; skipped",
        )
    if metric.direction == "flag":
        ok = bool(fresh_value)
        return Comparison(
            metric, base_value, fresh_value, ok,
            "" if ok else "invariant is False",
        )
    base_value = float(base_value)
    fresh_value = float(fresh_value)
    if metric.direction == "higher":
        if base_value <= 0.0:
            return Comparison(
                metric, base_value, fresh_value, None,
                "baseline is not positive; skipped",
            )
        bound = base_value * (1.0 - tolerance)
        ok = fresh_value >= bound
        note = "" if ok else (
            f"{fresh_value:,.0f} < {bound:,.0f} "
            f"(= baseline {base_value:,.0f} - {tolerance:.0%})"
        )
        return Comparison(metric, base_value, fresh_value, ok, note)
    if metric.direction == "lower":
        bound = max(base_value * (1.0 + tolerance), metric.floor)
        ok = fresh_value <= bound
        note = "" if ok else (
            f"{fresh_value:g} > {bound:g} "
            f"(= max(baseline {base_value:g} + {tolerance:.0%}, "
            f"floor {metric.floor:g}))"
        )
        return Comparison(metric, base_value, fresh_value, ok, note)
    if metric.direction == "at_least":
        ok = fresh_value >= metric.floor
        note = "" if ok else (
            f"{fresh_value:g} < absolute floor {metric.floor:g}"
        )
        return Comparison(metric, base_value, fresh_value, ok, note)
    raise ValueError(f"unknown metric direction {metric.direction!r}")


def check_regression(
    baseline: dict,
    fresh: dict,
    *,
    kind: str,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[Comparison]:
    """Compare every known metric; raises ValueError on bad inputs."""
    if kind not in KINDS:
        raise ValueError(
            f"kind must be one of {sorted(KINDS)}, got {kind!r}"
        )
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(
            f"tolerance must be in [0, 1), got {tolerance}"
        )
    results = [
        compare_metric(metric, baseline, fresh, tolerance)
        for metric in KINDS[kind]
    ]
    if all(c.ok is None for c in results):
        raise ValueError(
            "no metric exists in both reports — wrong baseline for "
            f"kind {kind!r}?"
        )
    return results


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when a fresh bench report regresses vs a "
        "committed baseline",
    )
    parser.add_argument(
        "--kind", required=True, choices=sorted(KINDS),
        help="which bench report layout to compare",
    )
    parser.add_argument(
        "--baseline", required=True, help="committed baseline JSON path"
    )
    parser.add_argument(
        "--fresh", required=True, help="freshly measured JSON path"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed relative drop/degradation (default "
        f"{DEFAULT_TOLERANCE:.0%}, sized for CI-runner noise)",
    )
    args = parser.parse_args(argv)

    reports = []
    for label, path in (("baseline", args.baseline), ("fresh", args.fresh)):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                reports.append(json.load(fh))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read {label} report {path}: {exc}",
                  file=sys.stderr)
            return 2
    try:
        results = check_regression(
            reports[0], reports[1], kind=args.kind, tolerance=args.tolerance
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    failed = 0
    for comparison in results:
        metric = comparison.metric
        if comparison.ok is None:
            status = "SKIP"
        elif comparison.ok:
            status = "ok"
        else:
            status = "FAIL"
            failed += 1
        detail = f"  [{comparison.note}]" if comparison.note else ""
        print(
            f"{status:>4}  {metric.path:<45} "
            f"baseline={comparison.baseline!r:>16} "
            f"fresh={comparison.fresh!r:>16}{detail}"
        )
    if failed:
        print(
            f"{failed} metric(s) regressed beyond {args.tolerance:.0%} "
            f"tolerance",
            file=sys.stderr,
        )
        return 1
    print(f"no regression beyond {args.tolerance:.0%} tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
