"""Extension bench — Monte Carlo validation of Theorem 4.3.

For a grid of noise levels, compares the empirical probability that the
aggregate moves by at least alpha against the theorem's explicit
Chebyshev bound.  The theorem holds iff every empirical point sits at or
below the bound.
"""

from repro.experiments import run_experiment


def test_theorem43_bound_holds(benchmark, profile, base_seed, record_figure):
    result = benchmark.pedantic(
        lambda: run_experiment("ext-theory-check", profile, base_seed=base_seed),
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    panel = result.panels[0]
    empirical = panel.series_by_label("empirical").y
    bound = panel.series_by_label("theorem bound").y
    for c, emp, thm in zip(panel.series[0].x, empirical, bound):
        assert emp <= thm + 1e-9, (
            f"c={c}: empirical failure probability {emp:.3f} exceeds the "
            f"Theorem 4.3 bound {thm:.3f}"
        )
