"""Figure 8 — efficiency study (running time vs noise level).

Expected shape: truth discovery time on perturbed data sits slightly
above the original-data baseline and stays roughly flat as the noise
level varies — perturbation does not change the cost profile of the
iterative procedure.
"""

from repro.experiments import run_experiment


def test_fig8_efficiency(benchmark, profile, base_seed, record_figure):
    result = benchmark.pedantic(
        lambda: run_experiment("fig8", profile, base_seed=base_seed),
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    panel = result.panels[0]
    perturbed = panel.series_by_label("perturbed").y
    # Flat-ness: no runaway growth across the noise grid (allow generous
    # slack for scheduler jitter at millisecond scales).
    assert max(perturbed) < 20 * max(min(perturbed), 1e-6), (
        "running time should not blow up with noise level"
    )
