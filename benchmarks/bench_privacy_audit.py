"""Privacy audit — empirical attackers vs the mechanism's theory.

Runs the distinguishing game of :mod:`repro.privacy.attacks` across
noise levels and checks that the optimal (marginal likelihood-ratio)
attacker's accuracy matches the closed-form Laplace-marginal prediction
— i.e. that the mechanism leaks exactly what its pure-epsilon marginal
analysis says, and no more.
"""

import math

import pytest

from repro.experiments import run_experiment
from repro.experiments.extensions import AUDIT_GAP, AUDIT_LAMBDAS
from repro.privacy.ldp import marginal_laplace_epsilon


def test_privacy_audit(benchmark, profile, base_seed, record_figure):
    result = benchmark.pedantic(
        lambda: run_experiment("ext-privacy-audit", profile, base_seed=base_seed),
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    panel = result.panels[0]
    measured = panel.series_by_label("marginal-lr").y
    predicted = panel.series_by_label("theory").y
    for lam, acc, theory in zip(AUDIT_LAMBDAS, measured, predicted):
        assert acc == pytest.approx(theory, abs=0.03), (
            f"lambda2={lam}: attacker accuracy {acc:.3f} vs theory "
            f"{theory:.3f}"
        )
        # Hard cap from the pure-epsilon Laplace marginal view.
        eps = marginal_laplace_epsilon(lam, AUDIT_GAP)
        cap = 0.5 + (1.0 - math.exp(-eps / 2.0)) / 2.0
        assert acc <= cap + 0.03
