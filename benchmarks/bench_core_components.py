"""Micro-benchmarks of the core building blocks.

Classic pytest-benchmark timing (repeated rounds) of the operations the
figures are built from: one CRH/GTM/CATD fit, one perturbation pass, and
one end-to-end pipeline run at the paper's synthetic scale (150 x 30).
"""

import pytest

from repro.core.mechanism import PrivateTruthDiscovery
from repro.datasets.synthetic import generate_synthetic
from repro.privacy.mechanisms import ExponentialVarianceGaussianMechanism
from repro.truthdiscovery.registry import create_method


@pytest.fixture(scope="module")
def paper_scale_claims():
    return generate_synthetic(
        num_users=150, num_objects=30, lambda1=4.0, random_state=0
    ).claims


@pytest.mark.parametrize("method_name", ["crh", "gtm", "catd", "mean", "median"])
def test_method_fit(benchmark, paper_scale_claims, method_name):
    benchmark(lambda: create_method(method_name).fit(paper_scale_claims))


def test_perturbation_pass(benchmark, paper_scale_claims):
    mechanism = ExponentialVarianceGaussianMechanism(lambda2=1.0)
    seeds = iter(range(10**9))
    benchmark(
        lambda: mechanism.perturb(paper_scale_claims, random_state=next(seeds))
    )


def test_full_pipeline(benchmark, paper_scale_claims):
    pipeline = PrivateTruthDiscovery(method="crh", lambda2=1.0)
    seeds = iter(range(10**9))
    benchmark(
        lambda: pipeline.run(paper_scale_claims, random_state=next(seeds))
    )


def test_large_matrix_fit(benchmark):
    claims = generate_synthetic(
        num_users=500, num_objects=500, lambda1=4.0, random_state=1
    ).claims
    benchmark.pedantic(
        lambda: create_method("crh").fit(claims), rounds=3, iterations=1
    )
