"""Ablation — aggregation methods under perturbation.

Backs Section 3.2's claim that weighted aggregation "provides better
accuracy than traditional aggregation methods, such as mean or median":
ground-truth error of each method on perturbed data from a population
with a biased minority.
"""

from repro.experiments import run_experiment


def test_ablation_methods(benchmark, profile, base_seed, record_figure):
    result = benchmark.pedantic(
        lambda: run_experiment("ablation-methods", profile, base_seed=base_seed),
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    panel = result.panels[0]
    crh = sum(panel.series_by_label("crh").y)
    mean = sum(panel.series_by_label("mean").y)
    assert crh < mean, (
        "weighted aggregation (CRH) should beat plain averaging under "
        "perturbation with a biased minority"
    )
