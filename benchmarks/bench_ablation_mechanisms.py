"""Ablation — perturbation mechanisms at matched expected |noise|.

Compares the paper's exponential-variance Gaussian against the
fixed-variance Gaussian and Laplace baselines.  All three feed the same
CRH aggregation; the figure shows how much original-vs-perturbed MAE
each injects at the same average noise magnitude.
"""

from repro.experiments import run_experiment


def test_ablation_mechanisms(benchmark, profile, base_seed, record_figure):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "ablation-mechanisms", profile, base_seed=base_seed
        ),
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    panel = result.panels[0]
    assert {s.label for s in panel.series} == {
        "exp-gaussian",
        "fixed-gaussian",
        "laplace",
    }
    # All mechanisms must keep MAE below the injected noise magnitude:
    # weighted aggregation absorbs noise regardless of its shape.
    for series in panel.series:
        for target, mae in zip(series.x, series.y):
            assert mae < target, (
                f"{series.label}: MAE {mae:.3f} not below noise {target:.3f}"
            )
