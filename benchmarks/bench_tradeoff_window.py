"""Extension bench — Theorem 4.9's feasible window over data quality.

Regenerates the c_min/c_max bound curves and checks the structural
facts: the privacy bound decreases in lambda1, the utility bound
increases, and the independently solved Eq. 19 knife edge sits exactly
where the curves cross.
"""

from repro.experiments import run_experiment


def test_tradeoff_window(benchmark, profile, base_seed, record_figure):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "ext-tradeoff-window", profile, base_seed=base_seed
        ),
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    panel = result.panels[0]
    c_min = panel.series_by_label("c_min (privacy, Thm 4.8)").y
    c_max = panel.series_by_label("c_max (utility, Thm 4.3)").y
    xs = panel.series[0].x
    assert all(a > b for a, b in zip(c_min, c_min[1:])), (
        "privacy bound must decrease with data quality"
    )
    assert all(a < b for a, b in zip(c_max, c_max[1:])), (
        "utility bound must increase with data quality"
    )
    knife = float(result.metadata["knife_edge_lambda1"])
    # On either side of the knife edge the window flips open/closed.
    for x, lo, hi in zip(xs, c_min, c_max):
        if x < knife * 0.95:
            assert lo > hi, f"window should be closed at lambda1={x}"
        if x > knife * 1.05:
            assert lo < hi, f"window should be open at lambda1={x}"
