"""Figure 5 — utility-privacy trade-off with GTM (method generality).

Same sweep as Figure 2 but aggregating with the Gaussian Truth Model;
the paper's point is that the mechanism's pattern carries over to any
continuous-data truth discovery method.
"""

from repro.experiments import run_experiment
from repro.experiments.figures.common import check_tradeoff_shape


def test_fig5_tradeoff_synthetic_gtm(benchmark, profile, base_seed, record_figure):
    result = benchmark.pedantic(
        lambda: run_experiment("fig5", profile, base_seed=base_seed),
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    problems = check_tradeoff_shape(result)
    assert problems == [], problems
