"""CI smoke: SIGKILL the primary mid-stream, promote the standby.

The harshest replication scenario, run for real with processes:

1. launch one ``repro standby`` subprocess;
2. launch a *primary driver* child (this script re-exec'd with
   ``--run-primary``) that builds a durable ``IngestService`` with a
   budget ledger, ships its WAL to the standby, serves ``/metrics``,
   and streams claims indefinitely;
3. scrape the primary's live replication telemetry mid-stream
   (``repro_replication_*`` families, via ``scrape_check``);
4. ``SIGKILL`` the primary — no flush, no close, no goodbye;
5. promote the standby over :class:`ReplicaReadClient` and assert the
   promoted truths are *bitwise equal* to an independent replay of the
   dead primary's WAL at the replicated watermark, and that every
   spent privacy-budget record survived.

Exit codes: 0 all invariants hold, 1 an invariant failed, 2 setup
error.

Usage::

    PYTHONPATH=src python benchmarks/replication_smoke.py [--chunks 64]
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

CHUNK = 256
NUM_USERS = 60
NUM_OBJECTS = 24
SEED = 97
CAMPAIGN = "smoke-replicated"

#: Replication families the live primary must expose mid-stream.
#: (Lag gauges are asserted present separately: a caught-up standby
#: legitimately reports zero lag, and the scrape gate requires
#: non-zero activity.)
ACTIVE_FAMILIES = (
    "repro_replication_connected",
    "repro_replication_records_shipped_total",
    "repro_replication_bytes_shipped_total",
    "repro_replication_ship_seconds",
)
LAG_FAMILIES = (
    "repro_replication_lag_lsn",
    "repro_replication_lag_seconds",
)


def make_generator():
    from repro.service.loadgen import LoadGenerator

    return LoadGenerator(
        CAMPAIGN,
        num_users=NUM_USERS,
        num_objects=NUM_OBJECTS,
        random_state=SEED,
    )


# ----------------------------------------------------------------------
# Child: the primary that is going to die.
def run_primary(args) -> int:
    from repro.durable import DurabilityConfig, DurabilityManager
    from repro.obs.exposition import MetricsServer
    from repro.privacy.ldp import LDPGuarantee
    from repro.replication.sender import ReplicationSender
    from repro.service.ingest import IngestService, ServiceConfig
    from repro.service.ledger import BudgetLedger
    from repro.service.topology import Topology

    manager = DurabilityManager(
        DurabilityConfig(directory=args.dir, fsync="batch")
    )
    service = IngestService(
        ServiceConfig(num_shards=2, max_batch=CHUNK),
        ledger=BudgetLedger(epsilon_cap=1e6),
        topology=Topology.in_process(durability=manager),
    )
    sender = ReplicationSender([("127.0.0.1", args.standby_port)])
    manager.attach_replication(sender)
    metrics = MetricsServer(port=args.metrics_port)
    metrics.set_provider(service.metrics_snapshot)
    print(f"METRICS {metrics.url}", flush=True)

    gen = make_generator()
    service.register_campaign(
        gen.campaign_id,
        gen.object_ids,
        max_users=NUM_USERS,
        user_ids=gen.user_ids,
        cost=LDPGuarantee(epsilon=1e-4, delta=0.0),
    )
    # Stream slowly enough that the parent reliably kills us
    # mid-stream; a real primary would not sleep, but a real primary
    # is not scheduled for execution either.
    for i, chunk in enumerate(
        gen.column_chunks(args.chunks * CHUNK, chunk_size=CHUNK)
    ):
        service.submit_columns(
            chunk.campaign_id,
            chunk.user_slots,
            chunk.object_slots,
            chunk.values,
        )
        service.pump()
        if i == 4:
            print("STREAMING", flush=True)
        time.sleep(0.05)
    # Only reached if the parent never killed us — that is a failure
    # of the harness, not of replication.
    print("STREAM-EXHAUSTED", flush=True)
    service.close()
    return 0


# ----------------------------------------------------------------------
# Parent: orchestrate, kill, promote, verify.
def replay_primary_prefix(directory: Path, up_to_lsn: int):
    """Independently rebuild the dead primary's state at ``up_to_lsn``.

    Same record-application path the standby used
    (:class:`RecordApplier`), driven straight off the dead primary's
    segments — an arbiter that shares no process with either side of
    the replication stream.
    """
    from repro.durable import records as rec
    from repro.durable.recovery import RecordApplier
    from repro.durable.wal import read_wal
    from repro.service.ingest import IngestService, ServiceConfig
    from repro.service.ledger import BudgetLedger

    service = None
    applier = None
    for record in read_wal(directory).records:
        if record.lsn > up_to_lsn:
            break
        if record.rtype == rec.CONFIG:
            if service is None:
                body = record.decode()
                caps = body.get("ledger")
                service = IngestService(
                    ServiceConfig(**body["service_config"]),
                    ledger=(
                        None
                        if caps is None
                        else BudgetLedger(
                            caps["epsilon_cap"],
                            delta_cap=caps["delta_cap"],
                        )
                    ),
                )
                applier = RecordApplier(service)
            continue
        applier.apply(record)
    if service is None:
        raise RuntimeError(f"no CONFIG record in {directory}")
    return service


def ledger_key(records):
    return sorted(
        (r["user_id"], r["epsilon"], r["delta"]) for r in records
    )


def check(ok: bool, label: str, failures: list) -> None:
    print(f"  {'ok' if ok else 'FAIL':>4}  {label}")
    if not ok:
        failures.append(label)


def run_smoke(args) -> int:
    import scrape_check

    from repro.obs.exposition import try_scrape
    from repro.replication.client import ReplicaReadClient
    from repro.replication.pool import launch_standby

    root = Path(tempfile.mkdtemp(prefix="repro-repl-smoke-"))
    primary_dir = root / "wal"
    standby_dir = root / "standby"
    failures: list = []

    print("== launching standby + doomed primary ==")
    standby_proc, standby_port = launch_standby(standby_dir)
    child = subprocess.Popen(
        [
            sys.executable,
            os.path.abspath(__file__),
            "--run-primary",
            "--dir",
            str(primary_dir),
            "--standby-port",
            str(standby_port),
            "--metrics-port",
            str(args.metrics_port),
            "--chunks",
            str(args.chunks),
        ],
        env={**os.environ},
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        metrics_url = None
        deadline = time.monotonic() + 120.0
        for line in child.stdout:
            line = line.strip()
            if line.startswith("METRICS "):
                metrics_url = line.split(" ", 1)[1]
            if line == "STREAMING":
                break
            if time.monotonic() > deadline:
                print("primary never started streaming", file=sys.stderr)
                return 2
        if metrics_url is None:
            print("primary never announced /metrics", file=sys.stderr)
            return 2

        print("\n== mid-stream telemetry ==")
        scrape_rc = scrape_check.check_endpoint(
            metrics_url, ACTIVE_FAMILIES, retries=60, interval=0.25
        )
        check(scrape_rc == 0, "replication families live and non-zero",
              failures)
        snapshot = try_scrape(metrics_url)
        names = set() if snapshot is None else snapshot.names()
        for family in LAG_FAMILIES:
            check(family in names, f"{family} gauge exposed", failures)

        # Let the stream run a little longer, then pull the plug.
        with ReplicaReadClient(("127.0.0.1", standby_port)) as client:
            deadline = time.monotonic() + 60.0
            while client.status()["durable_lsn"] < 40:
                if time.monotonic() > deadline:
                    print("standby never caught records", file=sys.stderr)
                    return 2
                time.sleep(0.05)

            print("\n== SIGKILL the primary mid-stream ==")
            os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=30.0)
            print(f"  primary pid {child.pid} killed "
                  f"(returncode {child.returncode})")

            print("\n== promote the standby ==")
            report = client.promote()
            watermark = report["watermark_lsn"]
            promoted = client.snapshot(CAMPAIGN)
            status = client.status()
        print(f"  promoted at replicated watermark LSN {watermark} "
              f"in {report['seconds'] * 1e3:.1f} ms")

        print("\n== invariants ==")
        arbiter = replay_primary_prefix(primary_dir, watermark)
        crashed = arbiter.snapshot(CAMPAIGN)
        check(
            promoted.truths.tobytes() == crashed.truths.tobytes()
            and np.all(np.isfinite(promoted.truths)),
            "promoted truths bitwise-equal dead primary @ watermark",
            failures,
        )
        check(
            promoted.claims_ingested == crashed.claims_ingested
            and promoted.claims_ingested > 0,
            f"claims preserved ({promoted.claims_ingested})",
            failures,
        )
        check(
            promoted.weights_by_user == crashed.weights_by_user,
            "user weights bitwise-equal",
            failures,
        )
        spent = status["ledger"]["records"]
        check(
            len(spent) > 0
            and ledger_key(spent)
            == ledger_key(arbiter.ledger.to_records()),
            f"spent budget preserved ({len(spent)} users)",
            failures,
        )
        check(status["promoted"] is True, "standby reports promoted",
              failures)

        if failures:
            print(f"\n{len(failures)} invariant(s) FAILED",
                  file=sys.stderr)
            return 1
        print("\nreplication smoke: all invariants hold")
        return 0
    finally:
        if child.poll() is None:
            child.kill()
            child.wait()
        if child.stdout is not None:
            child.stdout.close()
        standby_proc.terminate()
        standby_proc.join(10.0)
        if standby_proc.is_alive():  # pragma: no cover - last resort
            standby_proc.kill()
            standby_proc.join(2.0)
        standby_proc.release()
        import shutil

        shutil.rmtree(root, ignore_errors=True)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="kill-the-primary replication smoke test"
    )
    parser.add_argument(
        "--chunks", type=int, default=256,
        help="chunks the primary would stream if allowed to live",
    )
    parser.add_argument(
        "--metrics-port", type=int, default=9311,
        help="port of the doomed primary's /metrics endpoint",
    )
    parser.add_argument(
        "--run-primary", action="store_true", help=argparse.SUPPRESS
    )
    parser.add_argument("--dir", default=None, help=argparse.SUPPRESS)
    parser.add_argument(
        "--standby-port", type=int, default=0, help=argparse.SUPPRESS
    )
    args = parser.parse_args(argv)
    if args.run_primary:
        return run_primary(args)
    return run_smoke(args)


if __name__ == "__main__":
    sys.exit(main())
