"""Method generality — Figure 2's sweep under CATD.

The paper demonstrates the mechanism with CRH (Fig. 2) and GTM (Fig. 5)
and claims it works with *any* continuous-data truth discovery method;
this bench extends the evidence with CATD.
"""

from repro.experiments import run_experiment
from repro.experiments.figures.common import check_tradeoff_shape


def test_fig2_under_catd(benchmark, profile, base_seed, record_figure):
    result = benchmark.pedantic(
        lambda: run_experiment("fig2-catd", profile, base_seed=base_seed),
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    problems = check_tradeoff_shape(result)
    assert problems == [], problems
