"""Scalability — running time vs number of objects.

Section 5.3 (citing the CRH paper) asserts truth discovery running time
grows linearly in the number of objects at fixed iteration count.  This
bench regenerates the scaling curve and checks for near-linear growth.
"""

from repro.experiments import run_experiment


def test_scaling_in_objects(benchmark, profile, base_seed, record_figure):
    result = benchmark.pedantic(
        lambda: run_experiment("ablation-scaling", profile, base_seed=base_seed),
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    series = result.panels[0].series[0]
    xs, ys = series.x, series.y
    # Near-linear: time ratio should not wildly exceed the size ratio.
    size_ratio = xs[-1] / xs[0]
    time_ratio = ys[-1] / max(ys[0], 1e-9)
    assert time_ratio < 5 * size_ratio, (
        f"scaling looks super-linear: {time_ratio:.1f}x time for "
        f"{size_ratio:.1f}x objects"
    )
