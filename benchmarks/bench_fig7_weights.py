"""Figure 7 — weight comparison (true vs estimated, original vs perturbed).

Asserts the two observations the paper draws from this figure:
estimated weights track true weights (population-level correlation), and
the user who sampled the largest noise variance is down-weighted on the
perturbed data relative to the original data.
"""

from repro.experiments import run_experiment


def test_fig7_weight_comparison(benchmark, profile, base_seed, record_figure):
    result = benchmark.pedantic(
        lambda: run_experiment("fig7", profile, base_seed=base_seed),
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    assert float(result.metadata["pearson_original"]) > 0.5
    assert float(result.metadata["pearson_perturbed"]) > 0.5
    w_orig = float(result.metadata["noisiest_user_weight_original"])
    w_pert = float(result.metadata["noisiest_user_weight_perturbed"])
    assert w_pert < w_orig, (
        "the noisiest user must lose weight after perturbation"
    )
