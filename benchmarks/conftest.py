"""Shared fixtures for the benchmark harness.

Each ``bench_figN`` module regenerates one figure of the paper.  The
``record_figure`` fixture persists every regenerated figure under
``results/`` (ASCII render + markdown tables) so benchmark runs leave an
auditable artifact, and prints the render for ``-s`` runs.

Profile selection: set ``REPRO_PROFILE=full`` for paper-quality sweeps
(minutes); the default ``quick`` profile keeps the full sweep structure
at CI-friendly cost (seconds per figure).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.reporting import figure_markdown

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def profile() -> str:
    """Experiment profile name, overridable via REPRO_PROFILE."""
    return os.environ.get("REPRO_PROFILE", "quick")


@pytest.fixture(scope="session")
def base_seed() -> int:
    """Base seed, overridable via REPRO_SEED."""
    return int(os.environ.get("REPRO_SEED", "2020"))


@pytest.fixture
def record_figure():
    """Persist and print a regenerated figure."""

    def _record(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{result.figure_id}.txt").write_text(
            result.render() + "\n"
        )
        (RESULTS_DIR / f"{result.figure_id}.md").write_text(
            figure_markdown(result) + "\n"
        )
        print()
        print(result.render())

    return _record
