"""Durable ingestion cost and recovery — the ISSUE-2 acceptance benchmark.

Measures write-ahead-logged bulk ingest against the unlogged PR-1
baseline for every fsync policy, plus crash-recovery speed (full replay
and checkpoint + suffix), and persists the summary as
``results/BENCH_durability.json``.

Targets (single process, 4 shards, tmpfs-or-better disk):

* WAL-on bulk ingest under ``fsync=batch`` retains >= 50% of the
  unlogged throughput;
* recovery replays at >= 100k claims/sec;
* recovered truths match the live run's bit-for-bit.

Run directly (the file name keeps it out of the default tier-1
collection):  ``PYTHONPATH=src python -m pytest benchmarks/bench_durability.py -s``
"""

import json
from pathlib import Path

from repro.durable import format_durability_summary, run_durability_bench

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def test_durability(benchmark):
    report = benchmark.pedantic(
        lambda: run_durability_bench(),
        rounds=1,
        iterations=1,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_durability.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    print()
    print(format_durability_summary(report))

    batch = report["logged"]["batch"]
    assert batch["retention_vs_unlogged"] >= 0.5, (
        f"write-ahead logging too expensive: fsync=batch retains only "
        f"{batch['retention_vs_unlogged']:.0%} of unlogged throughput"
    )
    for kind, metrics in report["recovery"].items():
        assert metrics["truths_match_bitwise"], (
            f"{kind} recovery diverged from the live run"
        )
    replay = report["recovery"]["replay_only"]
    assert replay["claims_per_sec"] >= 100_000, (
        f"recovery too slow: {replay['claims_per_sec']:,.0f} claims/s"
    )
