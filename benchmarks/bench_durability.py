"""Durable ingestion cost and recovery — the ISSUE-2/ISSUE-5 benchmark.

Measures write-ahead-logged bulk ingest against the unlogged PR-1
baseline for every fsync policy in both commit modes (synchronous and
``async_commit`` with its background writer + durable-ack watermark),
plus claim-granular log compaction and crash-recovery speed (full
replay, checkpoint + suffix, async-commit log, compacted log), and
persists the summary as ``results/BENCH_durability.json``.

Targets (single process, 4 shards; the async ratios assume at least a
spare core for the writer thread — a 1-CPU container serialises its
CPU share and lands lower, recorded via ``config.available_cpus``):

* WAL-on bulk ingest under ``fsync=batch`` retains >= 50% of the
  unlogged throughput, and async commit beats synchronous commit;
* durable-ack ``always`` (async) beats per-frame-sync ``always``;
* compaction shrinks a checkpointed log's bytes and records;
* recovery replays at >= 100k claims/sec;
* every recovered service's truths match the live run's bit-for-bit.

Run directly (the file name keeps it out of the default tier-1
collection):  ``PYTHONPATH=src python -m pytest benchmarks/bench_durability.py -s``
"""

import json
from pathlib import Path

from repro.durable import format_durability_summary, run_durability_bench

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def test_durability(benchmark):
    report = benchmark.pedantic(
        lambda: run_durability_bench(),
        rounds=1,
        iterations=1,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_durability.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    print()
    print(format_durability_summary(report))

    batch = report["logged"]["batch"]
    assert batch["retention_vs_unlogged"] >= 0.5, (
        f"write-ahead logging too expensive: fsync=batch retains only "
        f"{batch['retention_vs_unlogged']:.0%} of unlogged throughput"
    )
    async_batch = report["logged_async"]["batch"]
    assert (
        async_batch["claims_per_sec"] >= batch["claims_per_sec"]
    ), "async commit slower than synchronous commit under fsync=batch"
    assert (
        report["logged_async"]["always"]["speedup_vs_sync_always"] >= 1.5
    ), "durable-ack always did not beat per-frame sync"
    compaction = report["compaction"]
    assert compaction["shrunk"], "compaction reclaimed nothing"
    assert compaction["recovery"]["truths_match_bitwise"], (
        "post-compaction recovery diverged from the live run"
    )
    for kind, metrics in report["recovery"].items():
        assert metrics["truths_match_bitwise"], (
            f"{kind} recovery diverged from the live run"
        )
    replay = report["recovery"]["replay_only"]
    assert replay["claims_per_sec"] >= 100_000, (
        f"recovery too slow: {replay['claims_per_sec']:,.0f} claims/s"
    )
