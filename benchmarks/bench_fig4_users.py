"""Figure 4 — effect of S (number of users).

Expected shape: average added noise is flat in S (users perturb
independently) while MAE falls with S (better weight estimation with
more evidence).
"""

import numpy as np

from repro.experiments import run_experiment


def test_fig4_effect_of_users(benchmark, profile, base_seed, record_figure):
    result = benchmark.pedantic(
        lambda: run_experiment("fig4", profile, base_seed=base_seed),
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    noise = result.panel("(b) Average of Added Noise").series[0].y
    mae = result.panel("(a) MAE").series[0].y
    spread = (max(noise) - min(noise)) / float(np.mean(noise))
    assert spread < 0.35, f"noise should be flat in S (spread {spread:.2f})"
    assert mae[-1] < mae[0], "MAE must fall as users are added"
