"""Figure 6 — utility-privacy trade-off on the indoor floorplan dataset.

Runs the Figure 2 sweep on the floorplan simulator (the stand-in for the
paper's 247-user real deployment; see DESIGN.md substitutions).
"""

from repro.experiments import run_experiment
from repro.experiments.figures.common import check_tradeoff_shape


def test_fig6_tradeoff_floorplan(benchmark, profile, base_seed, record_figure):
    result = benchmark.pedantic(
        lambda: run_experiment("fig6", profile, base_seed=base_seed),
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    problems = check_tradeoff_shape(result)
    assert problems == [], problems
