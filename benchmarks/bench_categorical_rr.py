"""Extension bench — categorical truth discovery under randomized response.

The categorical analogue of Figure 2: sweep the randomized-response
epsilon and measure label error of majority voting vs weighted voting vs
accuracy-EM on perturbed labels.  Expected shape: error falls as epsilon
grows; weighted methods dominate majority voting throughout.
"""

from repro.experiments import run_experiment


def test_categorical_randomized_response(benchmark, profile, base_seed, record_figure):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "ext-categorical-rr", profile, base_seed=base_seed
        ),
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    panel = result.panels[0]
    for series in panel.series:
        assert series.y[-1] <= series.y[0] + 1e-9, (
            f"{series.label} error did not fall with epsilon"
        )
    weighted = sum(panel.series_by_label("weighted-voting").y)
    majority = sum(panel.series_by_label("majority").y)
    assert weighted <= majority + 1e-9
