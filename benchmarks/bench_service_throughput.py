"""Ingestion-service throughput — the ISSUE-1/ISSUE-3 acceptance benchmark.

Measures the service's bulk columnar path (in-process and behind a
2-worker shard pool), the per-submission path, and the classic
per-message ``AggregationServer`` baseline, plus the streaming-vs-batch
agreement RMSE, and persists the summary as
``results/BENCH_service.json``.

Targets (4 shards):

* bulk path >= 100k claims/sec single-process;
* bulk path >= 10x the per-message baseline;
* multi-process truths bitwise equal to the single-process run;
* with >= 2 CPUs available, the 2-worker pool out-pumps the single
  process (on a 1-CPU runner the comparison is reported but not
  asserted — there is nothing to run the workers in parallel on);
* streaming truths within 1e-3 RMSE of a full CRH refit on the same
  dense data.

Run directly (the file name keeps it out of the default tier-1
collection):  ``PYTHONPATH=src python -m pytest benchmarks/bench_service_throughput.py -s``
"""

import json
from pathlib import Path

from repro.service.bench import format_summary, run_service_bench

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def test_service_throughput(benchmark):
    report = benchmark.pedantic(
        lambda: run_service_bench(workers=2),
        rounds=1,
        iterations=1,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_service.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    print()
    print(format_summary(report))

    assert report["bulk"]["claims_per_sec"] >= 100_000, (
        f"bulk ingestion too slow: "
        f"{report['bulk']['claims_per_sec']:,.0f} claims/s"
    )
    assert report["speedup_bulk_vs_baseline"] >= 10.0, (
        f"bulk path only {report['speedup_bulk_vs_baseline']:.1f}x "
        f"the per-message baseline"
    )
    assert report["workers_truths_match_bitwise"], (
        "multi-process truths diverged from the single-process run"
    )
    if report["available_cpus"] >= 2:
        assert report["speedup_workers_vs_single"] > 1.0, (
            f"2-worker pool slower than single-process on "
            f"{report['available_cpus']} CPUs: "
            f"{report['speedup_workers_vs_single']:.2f}x"
        )
    assert report["streaming_vs_batch_rmse"] <= 1e-3, (
        f"streaming diverged from batch CRH: "
        f"RMSE {report['streaming_vs_batch_rmse']:.2e}"
    )
