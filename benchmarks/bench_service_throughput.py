"""Ingestion-service throughput — the ISSUE-1 acceptance benchmark.

Measures the service's bulk columnar path and per-submission path
against the classic per-message ``AggregationServer``, plus the
streaming-vs-batch agreement RMSE, and persists the summary as
``results/BENCH_service.json``.

Targets (single process, 4 shards):

* bulk path >= 100k claims/sec;
* bulk path >= 10x the per-message baseline;
* streaming truths within 1e-3 RMSE of a full CRH refit on the same
  dense data.

Run directly (the file name keeps it out of the default tier-1
collection):  ``PYTHONPATH=src python -m pytest benchmarks/bench_service_throughput.py -s``
"""

import json
from pathlib import Path

from repro.service.bench import format_summary, run_service_bench

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def test_service_throughput(benchmark):
    report = benchmark.pedantic(
        lambda: run_service_bench(),
        rounds=1,
        iterations=1,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_service.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    print()
    print(format_summary(report))

    assert report["bulk"]["claims_per_sec"] >= 100_000, (
        f"bulk ingestion too slow: "
        f"{report['bulk']['claims_per_sec']:,.0f} claims/s"
    )
    assert report["speedup_bulk_vs_baseline"] >= 10.0, (
        f"bulk path only {report['speedup_bulk_vs_baseline']:.1f}x "
        f"the per-message baseline"
    )
    assert report["streaming_vs_batch_rmse"] <= 1e-3, (
        f"streaming diverged from batch CRH: "
        f"RMSE {report['streaming_vs_batch_rmse']:.2e}"
    )
