"""Figure 3 — effect of lambda1 (original-data error distribution).

Expected shape: both the average added noise and the MAE decrease as
lambda1 grows (higher-quality data needs less noise for the same privacy
and loses less utility).
"""

from repro.experiments import run_experiment


def test_fig3_effect_of_lambda1(benchmark, profile, base_seed, record_figure):
    result = benchmark.pedantic(
        lambda: run_experiment("fig3", profile, base_seed=base_seed),
        rounds=1,
        iterations=1,
    )
    record_figure(result)
    noise = result.panel("(b) Average of Added Noise").series[0].y
    mae = result.panel("(a) MAE").series[0].y
    assert all(a > b for a, b in zip(noise, noise[1:])), (
        "added noise must decrease with lambda1"
    )
    assert mae[-1] < mae[0], "MAE must fall as data quality improves"
