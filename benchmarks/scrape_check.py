"""CI helper: scrape a live metrics endpoint and assert it is healthy.

Polls a running ``/metrics`` endpoint (as served by
``repro service-bench --metrics-port ...`` or any
:class:`repro.obs.MetricsServer`) until every required metric family is
present *and* carries a non-zero value, or the retry budget runs out.
CI backgrounds the bench, runs this against the advertised port, and
fails the job if the live telemetry surface ever goes dark::

    python -m repro.cli service-bench --smoke --metrics-port 9109 ... &
    python benchmarks/scrape_check.py http://127.0.0.1:9109/metrics

Exit codes: 0 healthy, 1 families missing/zero after all retries,
2 usage error.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.obs.exposition import try_scrape

#: Families every instrumented service run must populate: admission,
#: per-shard acceptance, processing, and the two hot-path latency
#: histograms.  Histograms count observations; counters their value.
DEFAULT_FAMILIES = (
    "repro_submissions_total",
    "repro_claims_accepted_total",
    "repro_claims_processed_total",
    "repro_batch_flush_seconds",
    "repro_queue_wait_seconds",
)


def family_activity(snapshot, family: str) -> float:
    """Total activity of a family: counter/gauge sum or histogram count."""
    total = sum(
        value
        for (name, _), value in snapshot.counters.items()
        if name == family
    )
    total += sum(
        value
        for (name, _), value in snapshot.gauges.items()
        if name == family
    )
    total += sum(
        hist["count"]
        for (name, _), hist in snapshot.histograms.items()
        if name == family
    )
    return total


def check_endpoint(
    url: str,
    families: Sequence[str],
    *,
    retries: int = 60,
    interval: float = 0.5,
) -> int:
    """Poll until every family is present and non-zero; 0 on success."""
    last_missing: list = list(families)
    connected = False
    for _ in range(max(retries, 1)):
        snapshot = try_scrape(url)
        if snapshot is None:
            time.sleep(interval)
            continue
        connected = True
        last_missing = [
            family
            for family in families
            if family_activity(snapshot, family) <= 0
        ]
        if not last_missing:
            print(f"scrape ok: {url}")
            for family in families:
                print(
                    f"  {family:<42} "
                    f"{family_activity(snapshot, family):g}"
                )
            extra = sorted(snapshot.names() - set(families))
            print(f"  (+{len(extra)} other families live)")
            return 0
        time.sleep(interval)
    if not connected:
        print(f"never reached {url}", file=sys.stderr)
    else:
        print(
            f"families missing or zero after {retries} scrapes: "
            f"{', '.join(last_missing)}",
            file=sys.stderr,
        )
    return 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="assert a live metrics endpoint serves non-zero "
        "telemetry families",
    )
    parser.add_argument("url", help="metrics endpoint URL")
    parser.add_argument(
        "--families",
        default=",".join(DEFAULT_FAMILIES),
        help="comma-separated required family names "
        "(default: the core service families)",
    )
    parser.add_argument(
        "--retries", type=int, default=60,
        help="scrape attempts before giving up (default 60)",
    )
    parser.add_argument(
        "--interval", type=float, default=0.5,
        help="seconds between attempts (default 0.5)",
    )
    args = parser.parse_args(argv)
    families = [f for f in args.families.split(",") if f]
    if not families:
        print("no families to check", file=sys.stderr)
        return 2
    return check_endpoint(
        args.url, families, retries=args.retries, interval=args.interval
    )


if __name__ == "__main__":
    sys.exit(main())
