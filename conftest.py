"""Repo-level pytest configuration.

Registers the ``slow`` marker and gates it behind ``--runslow`` (or
``REPRO_RUN_SLOW=1``) so the tier-1 suite stays fast: heavy service /
throughput tests opt in with ``@pytest.mark.slow`` and are skipped by
default.
"""

from __future__ import annotations

import os

import pytest


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run tests marked 'slow' (heavy service/throughput tests)",
    )


def pytest_configure(config) -> None:
    config.addinivalue_line(
        "markers",
        "slow: heavy test, skipped unless --runslow or REPRO_RUN_SLOW=1",
    )


def pytest_collection_modifyitems(config, items) -> None:
    if config.getoption("--runslow") or os.environ.get("REPRO_RUN_SLOW") == "1":
        return
    skip_slow = pytest.mark.skip(
        reason="slow test: pass --runslow (or set REPRO_RUN_SLOW=1)"
    )
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
